"""Pluggable execution backends for the reference retrieval engine.

The paper's section-4.1 analysis argues that linear-search retrieval is the
hot path of the allocation manager; this module provides interchangeable
execution strategies for that path:

* :class:`NaiveBackend` -- the original pure-Python loop over
  :meth:`RetrievalEngine.score`, one implementation at a time.  It is the
  golden reference: every other backend must reproduce its rankings,
  similarities and :class:`~repro.core.retrieval.RetrievalStatistics`
  bit for bit (error *ordering* in doubly-erroneous batches is the one
  documented exception -- see :meth:`VectorizedBackend.retrieve_batch`).
* :class:`VectorizedBackend` -- a software-vectorization data point for the
  section-4.1 cost argument.  The case base is pre-compiled into per-function
  -type NumPy attribute matrices with the paper's ``1 / (1 + dmax)``
  reciprocals baked in (exactly the supplemental-list trick of the hardware
  unit, Fig. 4 right), and whole *batches* of requests are evaluated as
  matrix operations.

Bit-identical equivalence is achieved by mirroring the scalar arithmetic of
:class:`~repro.core.similarity.LocalSimilarity` and
:class:`~repro.core.amalgamation.WeightedSum` operation for operation: the
local similarity is ``1 - d * (1 / (1 + dmax))`` in both paths (IEEE-754
double ops are correctly rounded, so element-wise NumPy arithmetic matches the
scalar interpreter arithmetic exactly) and the weighted sum accumulates the
attribute columns in ascending attribute-ID order, just like the scalar
``sum()``.

Matrices are cached on the backend and keyed to
:attr:`~repro.core.case_base.CaseBase.revision`; any structural mutation of
the case base (including the revise/retain steps of :mod:`repro.core.learning`,
which go through :meth:`CaseBase.replace_implementation` /
:meth:`CaseBase.add_implementation`) bumps the revision and invalidates the
cache automatically.  Mutating an :class:`Implementation`'s attribute dict in
place bypasses the revision counter -- the same caveat that applies to the
hardware unit's memory images -- and requires an explicit
:meth:`RetrievalBackend.invalidate`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .amalgamation import AmalgamationFunction, WeightedSum
from .case_base import Implementation
from .exceptions import RetrievalError
from .request import FunctionRequest
from .similarity import LocalSimilarity, ManhattanDistance

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .retrieval import (
        RetrievalEngine,
        RetrievalResult,
        RetrievalStatistics,
        ScoredImplementation,
    )


_RESULT_TYPES: Optional[Tuple[type, type, type]] = None


def _result_types():
    """Late import of the result dataclasses (retrieval.py imports this module).

    The tuple is cached after the first call: result construction happens per
    request (and per ranked entry) on the serving hot path, where a repeated
    module-import lookup is measurable.
    """
    global _RESULT_TYPES
    if _RESULT_TYPES is None:
        from .retrieval import RetrievalResult, RetrievalStatistics, ScoredImplementation

        _RESULT_TYPES = (RetrievalResult, RetrievalStatistics, ScoredImplementation)
    return _RESULT_TYPES


def _check_n(n: int) -> None:
    """Shared n-best argument validation (identical across all backends)."""
    if n <= 0:
        raise RetrievalError(f"n must be positive, got {n}")


def _check_threshold(threshold: float) -> None:
    """Shared threshold argument validation (identical across all backends)."""
    if not 0.0 <= threshold <= 1.0:
        raise RetrievalError(f"threshold must lie within [0, 1], got {threshold}")


class RetrievalBackend:
    """Execution strategy behind :class:`~repro.core.retrieval.RetrievalEngine`.

    A backend is bound to exactly one engine via :meth:`attach` and implements
    :meth:`score_all`; the retrieval modes (`best`, `n-best`, threshold,
    combined, batch) are provided here in terms of ``score_all`` so that every
    backend shares identical result semantics, validation messages and
    statistics accounting.  Backends may override the mode methods with faster
    equivalent implementations (see :class:`VectorizedBackend`).
    """

    name = "abstract"

    def __init__(self) -> None:
        self.engine: Optional["RetrievalEngine"] = None

    def attach(self, engine: "RetrievalEngine") -> "RetrievalBackend":
        """Bind this backend to its engine (called by the engine constructor)."""
        if self.engine is not None and self.engine is not engine:
            raise RetrievalError(
                f"backend {self.name!r} is already attached to another engine"
            )
        self.engine = engine
        return self

    def invalidate(self) -> None:
        """Drop any precomputed state derived from the case base."""

    # -- scoring -----------------------------------------------------------------

    def score_all(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> List["ScoredImplementation"]:
        """Score every implementation variant of the requested function type."""
        raise NotImplementedError

    # -- retrieval modes ----------------------------------------------------------

    def retrieve_best(self, request: FunctionRequest) -> "RetrievalResult":
        """Return the single most similar implementation (paper Fig. 6)."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        best = None
        for entry in scored:
            if best is None or entry.similarity > best.similarity:
                best = entry
                statistics.best_updates += 1
        ranked = [best] if best is not None else []
        return RetrievalResult(request.type_id, ranked, statistics)

    def retrieve_n_best(self, request: FunctionRequest, n: int) -> "RetrievalResult":
        """Return the ``n`` most similar implementations (section 5 extension)."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        _check_n(n)
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        ranked = sorted(
            scored,
            key=lambda entry: (-entry.similarity, entry.implementation_id),
        )[:n]
        statistics.best_updates += len(ranked)
        return RetrievalResult(request.type_id, ranked, statistics)

    def retrieve_above_threshold(
        self, request: FunctionRequest, threshold: float
    ) -> "RetrievalResult":
        """Return all implementations whose similarity reaches ``threshold``."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        _check_threshold(threshold)
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        ranked = sorted(
            (entry for entry in scored if entry.similarity >= threshold),
            key=lambda entry: (-entry.similarity, entry.implementation_id),
        )
        statistics.best_updates += len(ranked)
        return RetrievalResult(request.type_id, ranked, statistics, threshold=threshold)

    def retrieve(
        self,
        request: FunctionRequest,
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> "RetrievalResult":
        """Combined entry point: optional n-best cut and threshold rejection."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        if n is None and threshold is None:
            return self.retrieve_best(request)
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        ranked = sorted(
            scored, key=lambda entry: (-entry.similarity, entry.implementation_id)
        )
        if threshold is not None:
            _check_threshold(threshold)
            ranked = [entry for entry in ranked if entry.similarity >= threshold]
        if n is not None:
            _check_n(n)
            ranked = ranked[:n]
        statistics.best_updates += len(ranked)
        return RetrievalResult(request.type_id, ranked, statistics, threshold=threshold)

    def retrieve_batch(
        self,
        requests: Sequence[FunctionRequest],
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> List["RetrievalResult"]:
        """Evaluate many requests; result ``i`` belongs to request ``i``.

        The semantics per request are exactly those of :meth:`retrieve` (so
        ``n=None, threshold=None`` degrades to most-similar retrieval).
        """
        return [
            self.retrieve(request, n=n, threshold=threshold) for request in requests
        ]


class NaiveBackend(RetrievalBackend):
    """The original per-implementation Python loop (the golden algorithm)."""

    name = "naive"

    def score_all(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> List["ScoredImplementation"]:
        engine = self.engine
        function_type = engine.case_base.get_type(request.type_id)
        if len(function_type) == 0:
            raise RetrievalError(
                f"function type {request.type_id} has no implementation variants"
            )
        return [
            engine.score(request, implementation, statistics)
            for implementation in function_type.sorted_implementations()
        ]


class _TypeMatrices:
    """Columnar encoding of one function type's implementation variants."""

    __slots__ = ("implementations", "impl_ids", "columns", "values", "present")

    def __init__(self, implementations: List[Implementation]) -> None:
        self.implementations = implementations
        self.impl_ids = np.array(
            [implementation.implementation_id for implementation in implementations],
            dtype=np.int64,
        )
        attribute_ids = sorted(
            {
                attribute_id
                for implementation in implementations
                for attribute_id in implementation.attributes
            }
        )
        self.columns: Dict[int, int] = {
            attribute_id: column for column, attribute_id in enumerate(attribute_ids)
        }
        shape = (len(implementations), len(attribute_ids))
        self.values = np.zeros(shape, dtype=np.float64)
        self.present = np.zeros(shape, dtype=bool)
        for row, implementation in enumerate(implementations):
            for attribute_id, value in implementation.attributes.items():
                column = self.columns[attribute_id]
                self.values[row, column] = float(value)
                self.present[row, column] = True


class VectorizedBackend(RetrievalBackend):
    """Batch-capable NumPy execution of the golden retrieval algorithm.

    The backend supports engines configured with the paper's similarity
    machinery -- :class:`WeightedSum` amalgamation and the plain
    :class:`LocalSimilarity` over :class:`ManhattanDistance` -- which is what
    the hardware unit implements.  :meth:`supports` reports compatibility;
    the engine transparently falls back to :class:`NaiveBackend` for custom
    metrics or amalgamations.
    """

    name = "vectorized"

    def __init__(self) -> None:
        super().__init__()
        self._cache: Dict[int, _TypeMatrices] = {}
        self._reciprocals: Dict[int, float] = {}
        self._revision = -1

    # -- compatibility -----------------------------------------------------------

    @classmethod
    def supports(cls, engine: "RetrievalEngine") -> bool:
        """Whether the engine's similarity configuration can be vectorized."""
        return (
            type(engine.amalgamation) is WeightedSum
            and type(engine.local_similarity) is LocalSimilarity
            and type(engine.local_similarity.metric) is ManhattanDistance
        )

    # -- cache management --------------------------------------------------------

    def invalidate(self) -> None:
        self._cache.clear()
        self._reciprocals.clear()
        self._revision = -1

    def _matrices_for(self, type_id: int) -> _TypeMatrices:
        case_base = self.engine.case_base
        if self._revision != case_base.revision:
            self.invalidate()
            self._revision = case_base.revision
        matrices = self._cache.get(type_id)
        if matrices is None:
            function_type = case_base.get_type(type_id)
            matrices = _TypeMatrices(function_type.sorted_implementations())
            self._cache[type_id] = matrices
        return matrices

    def _reciprocal(self, attribute_id: int) -> float:
        """The cached ``1 / (1 + dmax)`` constant of one attribute type."""
        reciprocal = self._reciprocals.get(attribute_id)
        if reciprocal is None:
            bound = self.engine.local_similarity.bounds.get(attribute_id)
            reciprocal = bound.reciprocal
            self._reciprocals[attribute_id] = reciprocal
        return reciprocal

    # -- the vectorized kernel ----------------------------------------------------

    def _validate(self, request: FunctionRequest) -> _TypeMatrices:
        """Mirror the error behaviour of the naive scoring path."""
        matrices = self._matrices_for(request.type_id)
        if len(matrices.implementations) == 0:
            raise RetrievalError(
                f"function type {request.type_id} has no implementation variants"
            )
        if len(request) == 0:
            raise RetrievalError("cannot score a request without constraining attributes")
        return matrices

    def _normalised_weights(self, request: FunctionRequest) -> List[float]:
        """Exactly :meth:`WeightedSum.combine`'s weight normalisation.

        Delegates to the canonical implementation so the vectorized path can
        never drift from the golden arithmetic (or its error message).
        """
        return AmalgamationFunction._normalised_weights(
            [attribute.weight for attribute in request.sorted_attributes()]
        )

    def _similarity_rows(
        self,
        matrices: _TypeMatrices,
        attribute_ids: Tuple[int, ...],
        request_values: np.ndarray,
        weight_rows: np.ndarray,
    ) -> Tuple[np.ndarray, int, int]:
        """Global similarities for a group of same-signature requests.

        ``request_values`` and ``weight_rows`` are ``(B, A)`` arrays; the
        return value is the ``(B, I)`` global-similarity matrix plus the
        per-request ``(missing, compared)`` attribute counts (identical for
        every request in the group, because the signature is shared).
        """
        local = self.engine.local_similarity
        missing_similarity = local.missing_similarity
        batch_size = request_values.shape[0]
        implementation_count = len(matrices.implementations)
        accumulator = np.zeros((batch_size, implementation_count), dtype=np.float64)
        missing_count = 0
        for column_index, attribute_id in enumerate(attribute_ids):
            column = matrices.columns.get(attribute_id)
            present = matrices.present[:, column] if column is not None else None
            if present is None or not present.any():
                similarity_column = np.full(
                    (batch_size, implementation_count), missing_similarity
                )
                missing_count += implementation_count
            else:
                reciprocal = self._reciprocal(attribute_id)
                distances = np.abs(
                    request_values[:, column_index, None]
                    - matrices.values[None, :, column]
                )
                similarity_column = 1.0 - distances * reciprocal
                if local.clamp:
                    np.clip(similarity_column, 0.0, 1.0, out=similarity_column)
                absent = ~present
                if absent.any():
                    similarity_column[:, absent] = missing_similarity
                    missing_count += int(np.count_nonzero(absent))
            accumulator += weight_rows[:, column_index, None] * similarity_column
        compared_count = implementation_count * len(attribute_ids) - missing_count
        return accumulator, missing_count, compared_count

    def _evaluate_one(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> Tuple[_TypeMatrices, np.ndarray]:
        """Similarity row for one request, with statistics accounting."""
        matrices = self._validate(request)
        attribute_ids = tuple(request.attribute_ids())
        request_values = np.array(
            [[float(attribute.value) for attribute in request.sorted_attributes()]],
            dtype=np.float64,
        )
        weight_rows = np.array([self._normalised_weights(request)], dtype=np.float64)
        similarities, missing, compared = self._similarity_rows(
            matrices, attribute_ids, request_values, weight_rows
        )
        self._account(statistics, matrices, attribute_ids, missing, compared)
        return matrices, similarities[0]

    @staticmethod
    def _account(
        statistics: "RetrievalStatistics",
        matrices: _TypeMatrices,
        attribute_ids: Tuple[int, ...],
        missing: int,
        compared: int,
    ) -> None:
        """Book the same algorithmic-effort counters the naive loop accumulates."""
        implementation_count = len(matrices.implementations)
        statistics.implementations_visited += implementation_count
        statistics.attributes_requested += implementation_count * len(attribute_ids)
        statistics.attribute_lookups += implementation_count * len(attribute_ids)
        statistics.missing_attributes += missing
        statistics.attribute_compares += compared
        statistics.multiplications += compared

    # -- result construction -------------------------------------------------------

    def _scored(
        self,
        request: FunctionRequest,
        matrices: _TypeMatrices,
        similarities: np.ndarray,
        index: int,
    ) -> "ScoredImplementation":
        _, _, ScoredImplementation = _result_types()
        return ScoredImplementation(
            type_id=request.type_id,
            implementation=matrices.implementations[index],
            similarity=float(similarities[index]),
        )

    @staticmethod
    def _ranking_order(matrices: _TypeMatrices, similarities: np.ndarray) -> np.ndarray:
        """Indices sorted by descending similarity, ascending implementation ID."""
        return np.lexsort((matrices.impl_ids, -similarities))

    def _best_result(
        self,
        request: FunctionRequest,
        matrices: _TypeMatrices,
        similarities: np.ndarray,
        statistics: "RetrievalStatistics",
    ) -> "RetrievalResult":
        RetrievalResult, _, _ = _result_types()
        # The hardware's strict S > S_best update rule: count prefix maxima so
        # the best_updates counter matches the sequential scan exactly.
        running = np.maximum.accumulate(similarities)
        statistics.best_updates += 1 + int(
            np.count_nonzero(similarities[1:] > running[:-1])
        )
        best_index = int(np.argmax(similarities))
        ranked = [self._scored(request, matrices, similarities, best_index)]
        return RetrievalResult(request.type_id, ranked, statistics)

    def _ranked_result(
        self,
        request: FunctionRequest,
        matrices: _TypeMatrices,
        similarities: np.ndarray,
        statistics: "RetrievalStatistics",
        *,
        n: Optional[int],
        threshold: Optional[float],
        record_threshold: Optional[float],
        order: Optional[np.ndarray] = None,
    ) -> "RetrievalResult":
        """Build a ranked result; ``order`` may carry a precomputed ranking.

        ``retrieve_batch`` computes the ranking orders of a whole signature
        group in one stable ``argsort`` call (identical to the per-request
        lexsort because ``matrices.impl_ids`` ascends with the row index) and
        passes each row in via ``order``.
        """
        RetrievalResult, _, _ = _result_types()
        if order is None:
            order = self._ranking_order(matrices, similarities)
        if threshold is not None:
            order = order[similarities[order] >= threshold]
        if n is not None:
            order = order[:n]
        ranked = [
            self._scored(request, matrices, similarities, int(index)) for index in order
        ]
        statistics.best_updates += len(ranked)
        return RetrievalResult(
            request.type_id, ranked, statistics, threshold=record_threshold
        )

    # -- RetrievalBackend interface -------------------------------------------------

    def score_all(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> List["ScoredImplementation"]:
        matrices, similarities = self._evaluate_one(request, statistics)
        return [
            self._scored(request, matrices, similarities, index)
            for index in range(len(matrices.implementations))
        ]

    def retrieve_best(self, request: FunctionRequest) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        statistics = RetrievalStatistics()
        matrices, similarities = self._evaluate_one(request, statistics)
        return self._best_result(request, matrices, similarities, statistics)

    def retrieve_n_best(self, request: FunctionRequest, n: int) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        _check_n(n)
        statistics = RetrievalStatistics()
        matrices, similarities = self._evaluate_one(request, statistics)
        return self._ranked_result(
            request, matrices, similarities, statistics,
            n=n, threshold=None, record_threshold=None,
        )

    def retrieve_above_threshold(
        self, request: FunctionRequest, threshold: float
    ) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        _check_threshold(threshold)
        statistics = RetrievalStatistics()
        matrices, similarities = self._evaluate_one(request, statistics)
        return self._ranked_result(
            request, matrices, similarities, statistics,
            n=None, threshold=threshold, record_threshold=threshold,
        )

    def retrieve(
        self,
        request: FunctionRequest,
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        if n is None and threshold is None:
            return self.retrieve_best(request)
        statistics = RetrievalStatistics()
        matrices, similarities = self._evaluate_one(request, statistics)
        # Validation order mirrors the naive combined entry point (arguments
        # are checked only after scoring).
        if threshold is not None:
            _check_threshold(threshold)
        if n is not None:
            _check_n(n)
        return self._ranked_result(
            request, matrices, similarities, statistics,
            n=n, threshold=threshold, record_threshold=threshold,
        )

    def retrieve_batch(
        self,
        requests: Sequence[FunctionRequest],
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> List["RetrievalResult"]:
        """Grouped matrix evaluation of a whole request batch.

        Requests sharing a ``(type_id, constrained-attribute-set)`` signature
        are stacked into one ``(B, A)`` value matrix and evaluated against the
        type's ``(I, A)`` case matrix in a single broadcast pass; weights may
        differ freely within a group.

        Error-ordering caveat: scoring errors only detectable inside the
        kernel (e.g. a constrained attribute missing from the bounds table)
        surface during group evaluation, *after* the mode-argument checks --
        whereas the sequential naive loop scores request 0 completely before
        validating ``n``/``threshold``.  For batches that are erroneous in
        both ways at once the two backends may therefore raise different
        (equally valid) ``RetrievalError``\\ s.
        """
        _, RetrievalStatistics, _ = _result_types()
        requests = list(requests)
        # Validate in request order: request 0's structural and weight checks,
        # then the mode arguments, then the remaining requests.  (Scoring
        # errors only detectable inside the kernel -- e.g. a bounds-table gap
        # -- surface later, during group evaluation.)
        groups: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
        matrices_by_request: List[_TypeMatrices] = []
        weights_by_request: List[List[float]] = []
        for index, request in enumerate(requests):
            matrices = self._validate(request)
            weights_by_request.append(self._normalised_weights(request))
            if index == 0:
                if threshold is not None:
                    _check_threshold(threshold)
                if n is not None:
                    _check_n(n)
            matrices_by_request.append(matrices)
            key = (request.type_id, tuple(request.attribute_ids()))
            groups.setdefault(key, []).append(index)
        results: List[Optional["RetrievalResult"]] = [None] * len(requests)
        for (type_id, attribute_ids), member_indices in groups.items():
            matrices = matrices_by_request[member_indices[0]]
            request_values = np.array(
                [
                    [
                        float(attribute.value)
                        for attribute in requests[index].sorted_attributes()
                    ]
                    for index in member_indices
                ],
                dtype=np.float64,
            )
            weight_rows = np.array(
                [weights_by_request[index] for index in member_indices],
                dtype=np.float64,
            )
            similarity_rows, missing, compared = self._similarity_rows(
                matrices, attribute_ids, request_values, weight_rows
            )
            if n is None and threshold is None:
                orders = None
            else:
                # One stable sort for the whole group: descending similarity
                # with ties in row-index order, which is ascending
                # implementation ID by construction -- exactly the
                # per-request lexsort of :meth:`_ranking_order`.
                orders = np.argsort(-similarity_rows, axis=1, kind="stable")
            for row, index in enumerate(member_indices):
                request = requests[index]
                statistics = RetrievalStatistics()
                self._account(statistics, matrices, attribute_ids, missing, compared)
                similarities = similarity_rows[row]
                if orders is None:
                    results[index] = self._best_result(
                        request, matrices, similarities, statistics
                    )
                else:
                    results[index] = self._ranked_result(
                        request, matrices, similarities, statistics,
                        n=n, threshold=threshold, record_threshold=threshold,
                        order=orders[row],
                    )
        return results


#: Registry of constructable backend names (used by the engine, manager and CLI).
BACKENDS = {
    NaiveBackend.name: NaiveBackend,
    "reference": NaiveBackend,
    VectorizedBackend.name: VectorizedBackend,
}


def get_retrieval_backend(name: str) -> RetrievalBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = BACKENDS[name]
    except KeyError as exc:
        raise RetrievalError(
            f"unknown retrieval backend {name!r}; known: {sorted(BACKENDS)}"
        ) from exc
    return factory()


def resolve_backend(
    spec: Union[str, RetrievalBackend, None], engine: "RetrievalEngine"
) -> RetrievalBackend:
    """Turn a backend spec (name, instance or ``None``) into an attached backend.

    A ``"vectorized"`` request against an engine whose similarity configuration
    the vectorized kernel cannot reproduce (custom amalgamation, metric or
    local-similarity subclass) transparently falls back to the naive backend,
    so callers may select vectorization unconditionally.
    """
    if spec is None:
        spec = NaiveBackend.name
    backend = get_retrieval_backend(spec) if isinstance(spec, str) else spec
    if isinstance(backend, VectorizedBackend) and not VectorizedBackend.supports(engine):
        backend = NaiveBackend()
    return backend.attach(engine)
