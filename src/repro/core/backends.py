"""Pluggable execution backends for the reference retrieval engine.

The paper's section-4.1 analysis argues that linear-search retrieval is the
hot path of the allocation manager; this module provides interchangeable
execution strategies for that path:

* :class:`NaiveBackend` -- the original pure-Python loop over
  :meth:`RetrievalEngine.score`, one implementation at a time.  It is the
  golden reference: every other backend must reproduce its rankings,
  similarities and :class:`~repro.core.retrieval.RetrievalStatistics`
  bit for bit (error *ordering* in doubly-erroneous batches is the one
  documented exception -- see :meth:`VectorizedBackend.retrieve_batch`).
* :class:`VectorizedBackend` -- a software-vectorization data point for the
  section-4.1 cost argument.  The case base is pre-compiled into per-function
  -type NumPy attribute matrices with the paper's ``1 / (1 + dmax)``
  reciprocals baked in (exactly the supplemental-list trick of the hardware
  unit, Fig. 4 right), and whole *batches* of requests are evaluated as
  matrix operations.

Bit-identical equivalence is achieved by mirroring the scalar arithmetic of
:class:`~repro.core.similarity.LocalSimilarity` and
:class:`~repro.core.amalgamation.WeightedSum` operation for operation: the
local similarity is ``1 - d * (1 / (1 + dmax))`` in both paths (IEEE-754
double ops are correctly rounded, so element-wise NumPy arithmetic matches the
scalar interpreter arithmetic exactly) and the weighted sum accumulates the
attribute columns in ascending attribute-ID order, just like the scalar
``sum()``.

Matrices are cached on the backend behind a shared
:class:`~repro.core.caching.RevisionTrackedCache`: any structural mutation of
the case base (including the revise/retain steps of :mod:`repro.core.learning`,
which go through :meth:`CaseBase.replace_implementation` /
:meth:`CaseBase.add_implementation`) bumps the revision, and the backend
consumes the case base's :class:`~repro.core.deltas.DeltaLog` to patch only
the touched per-type matrices in place (append/remove/rewrite rows); a full
rebuild happens only when the log window was truncated or a delta cannot be
absorbed (e.g. a brand-new attribute column).  Mutating an
:class:`Implementation`'s attribute dict in place bypasses the revision
counter -- the same caveat that applies to the hardware unit's memory images
-- and requires an explicit :meth:`RetrievalBackend.invalidate`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .amalgamation import WeightedSum
from .caching import RevisionTrackedCache
from .case_base import Implementation
from .deltas import DeltaSummary, NetImplementationEvent
from .exceptions import RetrievalError
from .request import FunctionRequest
from .similarity import LocalSimilarity, ManhattanDistance

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .retrieval import (
        RetrievalEngine,
        RetrievalResult,
        RetrievalStatistics,
        ScoredImplementation,
    )


_RESULT_TYPES: Optional[Tuple[type, type, type]] = None


def _result_types():
    """Late import of the result dataclasses (retrieval.py imports this module).

    The tuple is cached after the first call: result construction happens per
    request (and per ranked entry) on the serving hot path, where a repeated
    module-import lookup is measurable.
    """
    global _RESULT_TYPES
    if _RESULT_TYPES is None:
        from .retrieval import RetrievalResult, RetrievalStatistics, ScoredImplementation

        _RESULT_TYPES = (RetrievalResult, RetrievalStatistics, ScoredImplementation)
    return _RESULT_TYPES


def _check_n(n: int) -> None:
    """Shared n-best argument validation (identical across all backends)."""
    if n <= 0:
        raise RetrievalError(f"n must be positive, got {n}")


def _check_threshold(threshold: float) -> None:
    """Shared threshold argument validation (identical across all backends)."""
    if not 0.0 <= threshold <= 1.0:
        raise RetrievalError(f"threshold must lie within [0, 1], got {threshold}")


class RetrievalBackend:
    """Execution strategy behind :class:`~repro.core.retrieval.RetrievalEngine`.

    A backend is bound to exactly one engine via :meth:`attach` and implements
    :meth:`score_all`; the retrieval modes (`best`, `n-best`, threshold,
    combined, batch) are provided here in terms of ``score_all`` so that every
    backend shares identical result semantics, validation messages and
    statistics accounting.  Backends may override the mode methods with faster
    equivalent implementations (see :class:`VectorizedBackend`).
    """

    name = "abstract"

    def __init__(self) -> None:
        self.engine: Optional["RetrievalEngine"] = None

    def attach(self, engine: "RetrievalEngine") -> "RetrievalBackend":
        """Bind this backend to its engine (called by the engine constructor)."""
        if self.engine is not None and self.engine is not engine:
            raise RetrievalError(
                f"backend {self.name!r} is already attached to another engine"
            )
        self.engine = engine
        return self

    def invalidate(self) -> None:
        """Drop any precomputed state derived from the case base."""

    # -- scoring -----------------------------------------------------------------

    def score_all(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> List["ScoredImplementation"]:
        """Score every implementation variant of the requested function type."""
        raise NotImplementedError

    # -- retrieval modes ----------------------------------------------------------

    def retrieve_best(self, request: FunctionRequest) -> "RetrievalResult":
        """Return the single most similar implementation (paper Fig. 6)."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        best = None
        for entry in scored:
            if best is None or entry.similarity > best.similarity:
                best = entry
                statistics.best_updates += 1
        ranked = [best] if best is not None else []
        return RetrievalResult(request.type_id, ranked, statistics)

    def retrieve_n_best(self, request: FunctionRequest, n: int) -> "RetrievalResult":
        """Return the ``n`` most similar implementations (section 5 extension)."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        _check_n(n)
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        ranked = sorted(
            scored,
            key=lambda entry: (-entry.similarity, entry.implementation_id),
        )[:n]
        statistics.best_updates += len(ranked)
        return RetrievalResult(request.type_id, ranked, statistics)

    def retrieve_above_threshold(
        self, request: FunctionRequest, threshold: float
    ) -> "RetrievalResult":
        """Return all implementations whose similarity reaches ``threshold``."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        _check_threshold(threshold)
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        ranked = sorted(
            (entry for entry in scored if entry.similarity >= threshold),
            key=lambda entry: (-entry.similarity, entry.implementation_id),
        )
        statistics.best_updates += len(ranked)
        return RetrievalResult(request.type_id, ranked, statistics, threshold=threshold)

    def retrieve(
        self,
        request: FunctionRequest,
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> "RetrievalResult":
        """Combined entry point: optional n-best cut and threshold rejection."""
        RetrievalResult, RetrievalStatistics, _ = _result_types()
        if n is None and threshold is None:
            return self.retrieve_best(request)
        statistics = RetrievalStatistics()
        scored = self.score_all(request, statistics)
        ranked = sorted(
            scored, key=lambda entry: (-entry.similarity, entry.implementation_id)
        )
        if threshold is not None:
            _check_threshold(threshold)
            ranked = [entry for entry in ranked if entry.similarity >= threshold]
        if n is not None:
            _check_n(n)
            ranked = ranked[:n]
        statistics.best_updates += len(ranked)
        return RetrievalResult(request.type_id, ranked, statistics, threshold=threshold)

    def retrieve_batch(
        self,
        requests: Sequence[FunctionRequest],
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> List["RetrievalResult"]:
        """Evaluate many requests; result ``i`` belongs to request ``i``.

        The semantics per request are exactly those of :meth:`retrieve` (so
        ``n=None, threshold=None`` degrades to most-similar retrieval).
        """
        return [
            self.retrieve(request, n=n, threshold=threshold) for request in requests
        ]


class NaiveBackend(RetrievalBackend):
    """The original per-implementation Python loop (the golden algorithm)."""

    name = "naive"

    def score_all(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> List["ScoredImplementation"]:
        engine = self.engine
        function_type = engine.case_base.get_type(request.type_id)
        if len(function_type) == 0:
            raise RetrievalError(
                f"function type {request.type_id} has no implementation variants"
            )
        return [
            engine.score(request, implementation, statistics)
            for implementation in function_type.sorted_implementations()
        ]


class _TypeMatrices:
    """Columnar encoding of one function type's implementation variants."""

    __slots__ = (
        "implementations",
        "impl_ids",
        "columns",
        "values",
        "present",
        "column_all_absent",
        "column_absent_rows",
        "kernels",
        "block_stats",
    )

    #: Signature-kernel cache entries kept per type (cleared wholesale beyond).
    KERNEL_CACHE_CAPACITY = 128

    #: Rows per pre-filter block: the bounds screen summarises (and prunes)
    #: the matrices in runs of this many consecutive rows.
    BLOCK_ROWS = 1024

    def __init__(self, implementations: List[Implementation]) -> None:
        self.implementations = implementations
        self.impl_ids = np.array(
            [implementation.implementation_id for implementation in implementations],
            dtype=np.int64,
        )
        attribute_ids = sorted(
            {
                attribute_id
                for implementation in implementations
                for attribute_id in implementation.attributes
            }
        )
        self.columns: Dict[int, int] = {
            attribute_id: column for column, attribute_id in enumerate(attribute_ids)
        }
        shape = (len(implementations), len(attribute_ids))
        self.values = np.zeros(shape, dtype=np.float64)
        self.present = np.zeros(shape, dtype=bool)
        for row, implementation in enumerate(implementations):
            for attribute_id, value in implementation.attributes.items():
                column = self.columns[attribute_id]
                self.values[row, column] = float(value)
                self.present[row, column] = True
        self._refresh_column_stats()

    @classmethod
    def from_arrays(
        cls,
        implementations: List[Implementation],
        columns: Dict[int, int],
        impl_ids: np.ndarray,
        values: np.ndarray,
        present: np.ndarray,
    ) -> "_TypeMatrices":
        """Build from pre-encoded arrays (the shared-memory construction path).

        The arrays may be zero-copy views over a
        :class:`multiprocessing.shared_memory.SharedMemory` buffer exported by
        another process: nothing is copied here, only the derived column
        statistics are recomputed.  Row ``i`` must describe
        ``implementations[i]`` with rows ascending by implementation ID --
        exactly what :meth:`__init__` would have produced from the same
        variant list.  Shape-changing delta events later migrate the arrays
        to private memory naturally (``np.concatenate`` allocates fresh
        arrays); in-place row rewrites patch the shared buffer, which the
        single-writer worker protocol makes safe.
        """
        matrices = cls.__new__(cls)
        matrices.implementations = list(implementations)
        matrices.impl_ids = impl_ids
        matrices.columns = dict(columns)
        matrices.values = values
        matrices.present = present
        matrices._refresh_column_stats()
        return matrices

    def _refresh_column_stats(self) -> None:
        """Per-column absence summaries, hoisted off the retrieval hot path.

        The kernel needs, per constrained attribute, whether the column is
        entirely absent and which rows miss it; computing both here (and
        after every row patch) replaces three small-array NumPy calls per
        attribute per retrieval.
        """
        row_count = self.present.shape[0]
        self.column_all_absent: List[bool] = []
        self.column_absent_rows: List[Optional[np.ndarray]] = []
        for column in range(self.present.shape[1]):
            absent = np.flatnonzero(~self.present[:, column])
            self.column_all_absent.append(len(absent) == row_count)
            self.column_absent_rows.append(absent if len(absent) else None)
        #: Per-signature gathered kernels (see ``_signature_kernel``); any
        #: content change drops them with the rest of the derived state.
        self.kernels: Dict[Tuple[int, ...], Tuple] = {}
        #: Per-block column summaries for the bounds pre-filter, computed
        #: lazily (they share the kernels' drop-on-content-change lifecycle).
        self.block_stats: Optional[Tuple] = None

    def block_summaries(self) -> Tuple:
        """Per-block per-column summaries backing the bounds pre-filter.

        Returns ``(starts, block_min, block_max, any_present, any_absent)``:
        block ``b`` covers rows ``starts[b] .. starts[b] + BLOCK_ROWS`` and
        the ``(B, C)`` arrays give, per block and column, the min/max over
        *present* cells (``+inf``/``-inf`` when none are) and whether the
        block holds any present / any absent cell in that column.
        """
        if self.block_stats is None:
            row_count, column_count = self.values.shape
            starts = np.arange(0, max(row_count, 1), self.BLOCK_ROWS, dtype=np.intp)
            if row_count == 0:
                shape = (len(starts), column_count)
                self.block_stats = (
                    starts,
                    np.zeros(shape, dtype=np.float64),
                    np.zeros(shape, dtype=np.float64),
                    np.zeros(shape, dtype=bool),
                    np.zeros(shape, dtype=bool),
                )
            else:
                masked_min = np.where(self.present, self.values, np.inf)
                masked_max = np.where(self.present, self.values, -np.inf)
                block_min = np.minimum.reduceat(masked_min, starts, axis=0)
                block_max = np.maximum.reduceat(masked_max, starts, axis=0)
                present_counts = np.add.reduceat(
                    self.present.astype(np.int64), starts, axis=0
                )
                lengths = np.diff(np.append(starts, row_count))
                any_present = present_counts > 0
                any_absent = present_counts < lengths[:, None]
                self.block_stats = (starts, block_min, block_max, any_present, any_absent)
        return self.block_stats

    # -- incremental row patching (delta application) ----------------------------

    def _row(self, implementation: Implementation):
        """Encode one implementation as ``(values, present)`` rows.

        Returns ``None`` when the implementation describes an attribute this
        matrix has no column for -- the caller then rebuilds the type's
        matrices from scratch (a fresh build would allocate the column).
        A column left entirely absent by removals behaves exactly like a
        fresh build without it (the kernel's missing-attribute path), so
        columns are never shrunk in place.
        """
        values = np.zeros(len(self.columns), dtype=np.float64)
        present = np.zeros(len(self.columns), dtype=bool)
        for attribute_id, value in implementation.attributes.items():
            column = self.columns.get(attribute_id)
            if column is None:
                return None
            values[column] = float(value)
            present[column] = True
        return values, present

    def _index_of(self, implementation_id: int) -> Optional[int]:
        """Row index of one implementation ID (rows ascend by ID)."""
        index = int(np.searchsorted(self.impl_ids, implementation_id))
        if index >= len(self.impl_ids) or self.impl_ids[index] != implementation_id:
            return None
        return index

    def apply_event(self, event: "NetImplementationEvent") -> bool:
        """Absorb one net delta event in place; ``False`` asks for a rebuild."""
        if event.kind == NetImplementationEvent.REMOVED:
            index = self._index_of(event.implementation_id)
            if index is None:
                return False
            del self.implementations[index]
            self.impl_ids = np.concatenate([self.impl_ids[:index], self.impl_ids[index + 1:]])
            self.values = np.concatenate([self.values[:index], self.values[index + 1:]])
            self.present = np.concatenate([self.present[:index], self.present[index + 1:]])
            self._refresh_column_stats()
            return True
        implementation = event.implementation
        if implementation is None:
            return False
        row = self._row(implementation)
        if row is None:
            return False
        values, present = row
        if event.kind == NetImplementationEvent.ADDED:
            index = int(np.searchsorted(self.impl_ids, implementation.implementation_id))
            self.implementations.insert(index, implementation)
            self.impl_ids = np.concatenate([
                self.impl_ids[:index],
                np.array([implementation.implementation_id], dtype=np.int64),
                self.impl_ids[index:],
            ])
            self.values = np.concatenate(
                [self.values[:index], values[None, :], self.values[index:]]
            )
            self.present = np.concatenate(
                [self.present[:index], present[None, :], self.present[index:]]
            )
            self._refresh_column_stats()
            return True
        index = self._index_of(implementation.implementation_id)
        if index is None:
            return False
        self.implementations[index] = implementation
        self.values[index] = values
        self.present[index] = present
        self._refresh_column_stats()
        return True


class VectorizedBackend(RetrievalBackend):
    """Batch-capable NumPy execution of the golden retrieval algorithm.

    The backend supports engines configured with the paper's similarity
    machinery -- :class:`WeightedSum` amalgamation and the plain
    :class:`LocalSimilarity` over :class:`ManhattanDistance` -- which is what
    the hardware unit implements.  :meth:`supports` reports compatibility;
    the engine transparently falls back to :class:`NaiveBackend` for custom
    metrics or amalgamations.
    """

    name = "vectorized"

    #: Smallest implementation count worth screening: below a few blocks the
    #: bound computation costs more than the full evaluation it would save,
    #: so the pre-filter transparently falls through to the plain kernel.
    PREFILTER_MIN_ROWS = 4096

    def __init__(self) -> None:
        super().__init__()
        self._cache: Dict[int, _TypeMatrices] = {}
        self._reciprocals: Dict[int, float] = {}
        self._tracker: Optional[RevisionTrackedCache] = None
        #: Pre-filter effectiveness counters (plain ints; the serving layer
        #: folds them into its metrics registry).
        self.prefilter_requests = 0
        self.prefilter_rows_total = 0
        self.prefilter_rows_pruned = 0

    # -- compatibility -----------------------------------------------------------

    @classmethod
    def supports(cls, engine: "RetrievalEngine") -> bool:
        """Whether the engine's similarity configuration can be vectorized."""
        return (
            type(engine.amalgamation) is WeightedSum
            and type(engine.local_similarity) is LocalSimilarity
            and type(engine.local_similarity.metric) is ManhattanDistance
        )

    # -- cache management --------------------------------------------------------

    def invalidate(self) -> None:
        self._cache.clear()
        self._reciprocals.clear()
        if self._tracker is not None:
            self._tracker.invalidate()

    def _rebuild(self) -> None:
        """Full-rebuild fallback: drop everything, repopulate lazily."""
        self._cache.clear()
        self._reciprocals.clear()

    def _apply_deltas(self, summary: DeltaSummary) -> bool:
        """Patch the per-type matrices from one compacted delta window.

        The engine's bounds snapshot (and hence every ``1/(1+dmax)``
        reciprocal) is fixed at engine construction, so even the
        ``BOUNDS_CHANGED`` delta leaves the cached reciprocals valid -- a
        full rebuild would recompute identical values from the same
        ``local_similarity.bounds`` object.  Types are only patched when
        already materialised; untouched (or dropped) types rebuild lazily on
        their next use, touching exactly the types the window named.
        """
        for type_id in summary.reset_types:
            self._cache.pop(type_id, None)
        for type_id, events in summary.impl_events.items():
            matrices = self._cache.get(type_id)
            if matrices is None:
                continue
            for event in events.values():
                if not matrices.apply_event(event):
                    self._cache.pop(type_id, None)
                    break
        return True

    def adopt_matrices(self, cache: Dict[int, _TypeMatrices]) -> None:
        """Seed the per-type matrix cache wholesale (the shared-memory path).

        A worker process that received pre-built matrices (e.g. zero-copy
        views over a shared-memory export, see
        :meth:`_TypeMatrices.from_arrays`) installs them here instead of
        re-encoding every implementation row.  The tracker is marked current
        so the first ``ensure_current`` does not wipe the seeded state with a
        full rebuild; later case-base mutations still patch it incrementally
        through the normal delta window machinery.
        """
        self._cache = dict(cache)
        self._reciprocals.clear()
        self.tracker.mark_current()

    @property
    def tracker(self) -> RevisionTrackedCache:
        """The backend's delta subscription (bound lazily to the engine)."""
        if self._tracker is None or self._tracker.case_base is not self.engine.case_base:
            self._tracker = RevisionTrackedCache(
                self.engine.case_base,
                rebuild=self._rebuild,
                apply=self._apply_deltas,
            )
        return self._tracker

    def _matrices_for(self, type_id: int, *, current: bool = False) -> _TypeMatrices:
        """Per-type matrices; ``current=True`` when the caller already ran
        :meth:`RevisionTrackedCache.ensure_current` for the whole batch."""
        case_base = self.engine.case_base
        if not current:
            self.tracker.ensure_current()
        matrices = self._cache.get(type_id)
        if matrices is None:
            function_type = case_base.get_type(type_id)
            matrices = _TypeMatrices(function_type.sorted_implementations())
            self._cache[type_id] = matrices
        return matrices

    def _reciprocal(self, attribute_id: int) -> float:
        """The cached ``1 / (1 + dmax)`` constant of one attribute type."""
        reciprocal = self._reciprocals.get(attribute_id)
        if reciprocal is None:
            bound = self.engine.local_similarity.bounds.get(attribute_id)
            reciprocal = bound.reciprocal
            self._reciprocals[attribute_id] = reciprocal
        return reciprocal

    # -- the vectorized kernel ----------------------------------------------------

    def _validate(self, request: FunctionRequest, *, current: bool = False) -> _TypeMatrices:
        """Mirror the error behaviour of the naive scoring path."""
        matrices = self._matrices_for(request.type_id, current=current)
        if len(matrices.implementations) == 0:
            raise RetrievalError(
                f"function type {request.type_id} has no implementation variants"
            )
        if len(request) == 0:
            raise RetrievalError("cannot score a request without constraining attributes")
        return matrices

    def _signature_kernel(
        self, matrices: _TypeMatrices, attribute_ids: Tuple[int, ...]
    ) -> Tuple:
        """Gathered kernel inputs for one ``(type, constrained-IDs)`` signature.

        Serving traffic repeats a few hot signatures, so the per-signature
        column gather -- the ``(I, A)`` case-value sub-matrix, the ``(A,)``
        reciprocal vector and the flattened absent-cell index pairs -- is
        cached on the type's matrices (and dropped with them on any content
        change).  Missing columns gather zeros; their cells are in the absent
        index set, so the placeholder arithmetic is overwritten before use.
        """
        kernel = matrices.kernels.get(attribute_ids)
        if kernel is not None:
            return kernel
        implementation_count = len(matrices.implementations)
        width = len(attribute_ids)
        sub_values = np.zeros((implementation_count, width), dtype=np.float64)
        reciprocals = np.zeros(width, dtype=np.float64)
        absent_row_parts: List[np.ndarray] = []
        absent_column_parts: List[np.ndarray] = []
        for column_index, attribute_id in enumerate(attribute_ids):
            column = matrices.columns.get(attribute_id)
            if column is None or matrices.column_all_absent[column]:
                absent_row_parts.append(np.arange(implementation_count, dtype=np.intp))
                absent_column_parts.append(
                    np.full(implementation_count, column_index, dtype=np.intp)
                )
                continue
            sub_values[:, column_index] = matrices.values[:, column]
            reciprocals[column_index] = self._reciprocal(attribute_id)
            absent_rows = matrices.column_absent_rows[column]
            if absent_rows is not None:
                absent_row_parts.append(absent_rows.astype(np.intp))
                absent_column_parts.append(
                    np.full(len(absent_rows), column_index, dtype=np.intp)
                )
        if absent_row_parts:
            absent_rows_index = np.concatenate(absent_row_parts)
            absent_columns_index = np.concatenate(absent_column_parts)
        else:
            absent_rows_index = absent_columns_index = None
        missing_count = 0 if absent_rows_index is None else int(len(absent_rows_index))
        kernel = (sub_values, reciprocals, absent_rows_index, absent_columns_index, missing_count)
        if len(matrices.kernels) >= _TypeMatrices.KERNEL_CACHE_CAPACITY:
            matrices.kernels.clear()
        matrices.kernels[attribute_ids] = kernel
        return kernel

    def _similarity_rows(
        self,
        matrices: _TypeMatrices,
        attribute_ids: Tuple[int, ...],
        request_values: np.ndarray,
        weight_rows: np.ndarray,
    ) -> Tuple[np.ndarray, int, int]:
        """Global similarities for a group of same-signature requests.

        ``request_values`` and ``weight_rows`` are ``(B, A)`` arrays; the
        return value is the ``(B, I)`` global-similarity matrix plus the
        per-request ``(missing, compared)`` attribute counts (identical for
        every request in the group, because the signature is shared).

        The arithmetic is the golden scalar computation, operation for
        operation: element-wise ``1 - d * (1/(1+dmax))`` (one tensor op over
        all attributes at once is bit-identical to the per-column form),
        clamped, missing cells forced to ``missing_similarity``, and the
        weighted sum folded column by column in ascending attribute-ID order
        exactly like the scalar ``sum()``.
        """
        local = self.engine.local_similarity
        batch_size = request_values.shape[0]
        implementation_count = len(matrices.implementations)
        sub_values, reciprocals, absent_rows_index, absent_columns_index, missing_count = (
            self._signature_kernel(matrices, attribute_ids)
        )
        similarities = np.abs(request_values[:, None, :] - sub_values[None, :, :])
        similarities *= reciprocals
        np.subtract(1.0, similarities, out=similarities)
        if local.clamp:
            # clip == minimum(maximum(x, 0), 1); direct ufunc calls skip the
            # np.clip dispatch overhead that dominates single-request batches.
            np.maximum(similarities, 0.0, out=similarities)
            np.minimum(similarities, 1.0, out=similarities)
        if absent_rows_index is not None:
            similarities[:, absent_rows_index, absent_columns_index] = (
                local.missing_similarity
            )
        # One element-wise multiply for all weights at once, then a strictly
        # sequential fold over the attribute columns in ascending-ID order --
        # the same additions, in the same order, as the scalar ``sum()``.
        similarities *= weight_rows[:, None, :]
        accumulator = np.zeros((batch_size, implementation_count), dtype=np.float64)
        for column_index in range(len(attribute_ids)):
            accumulator += similarities[:, :, column_index]
        compared_count = implementation_count * len(attribute_ids) - missing_count
        return accumulator, missing_count, compared_count

    # -- the bounds pre-filter (two-stage exact retrieval) -------------------------
    #
    # The screen computes, per block of ``_TypeMatrices.BLOCK_ROWS`` rows, a
    # rigorous IEEE-754 upper bound on every row's global similarity, using
    # the *same* operation sequence as the exact kernel (interval distance ->
    # ``d * (1/(1+dmax))`` -> ``1 - x`` -> clamp -> missing-similarity ->
    # weight -> ascending-attribute-ID fold).  Correctly-rounded double ops
    # are monotone, so each step preserves "bound >= every cell", and blocks
    # whose bound falls strictly below the acceptance cut can be skipped
    # without evaluating a single row.  Surviving rows then run through the
    # ordinary kernel arithmetic -- per-row the identical op sequence on the
    # identical operands -- which is what makes the pruned path bit-identical
    # (rankings, similarity doubles, statistics) to the full scan; strict
    # ``bound < cut`` pruning keeps ties (broken by ascending implementation
    # ID) intact.  Statistics stay exact because the vectorized path books
    # them analytically from the full matrix shape, not from evaluated rows.

    def _prefilter_active(self) -> bool:
        """Whether the engine asked for the bounds screen."""
        engine = self.engine
        return engine is not None and getattr(engine, "prefilter", "off") == "bounds"

    def _block_upper_bounds(
        self,
        matrices: _TypeMatrices,
        attribute_ids: Tuple[int, ...],
        values: Tuple[float, ...],
        weights: Tuple[float, ...],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(starts, bounds)``: a per-block upper bound on the row similarities.

        Weights are guaranteed non-negative (``RequestAttribute`` rejects
        negative weights), so multiplying a per-cell upper bound by the
        weight keeps it an upper bound.
        """
        local = self.engine.local_similarity
        starts, block_min, block_max, any_present, any_absent = matrices.block_summaries()
        upper = np.zeros(len(starts), dtype=np.float64)
        for column_index, attribute_id in enumerate(attribute_ids):
            weight = weights[column_index]
            column = matrices.columns.get(attribute_id)
            if column is None or matrices.column_all_absent[column]:
                # Every cell takes the missing-similarity placeholder exactly.
                upper += local.missing_similarity * weight
                continue
            value = values[column_index]
            # Min distance from the request value to the block's [min, max]
            # interval: 0 inside, else the gap -- computed with the same
            # subtractions the kernel's |v - value_i| resolves to at the
            # interval endpoints, so rounding keeps the bound rigorous.
            distance = np.maximum(block_min[:, column] - value, value - block_max[:, column])
            np.maximum(distance, 0.0, out=distance)
            column_upper = 1.0 - distance * self._reciprocal(attribute_id)
            if local.clamp:
                np.maximum(column_upper, 0.0, out=column_upper)
                np.minimum(column_upper, 1.0, out=column_upper)
            # Blocks with no present cell in this column contribute only
            # missing-similarity placeholders; the interval bound is vacuous.
            column_upper[~any_present[:, column]] = -np.inf
            absent = any_absent[:, column]
            if absent.any():
                np.maximum(
                    column_upper, local.missing_similarity, out=column_upper, where=absent
                )
            upper += column_upper * weight
        return starts, upper

    def _similarity_rows_subset(
        self,
        matrices: _TypeMatrices,
        attribute_ids: Tuple[int, ...],
        request_values: np.ndarray,
        weight_rows: np.ndarray,
        rows: np.ndarray,
    ) -> np.ndarray:
        """Exact similarities for a row subset: :meth:`_similarity_rows`
        restricted to ``rows`` -- per row the identical operation sequence on
        the identical operands, hence bit-identical to the full evaluation."""
        local = self.engine.local_similarity
        sub_values, reciprocals, absent_rows_index, absent_columns_index, _ = (
            self._signature_kernel(matrices, attribute_ids)
        )
        similarities = np.abs(request_values[:, None, :] - sub_values[rows][None, :, :])
        similarities *= reciprocals
        np.subtract(1.0, similarities, out=similarities)
        if local.clamp:
            np.maximum(similarities, 0.0, out=similarities)
            np.minimum(similarities, 1.0, out=similarities)
        if absent_rows_index is not None:
            # Re-map the kernel's full-matrix absent-cell pairs onto the subset.
            positions = np.full(len(matrices.implementations), -1, dtype=np.intp)
            positions[rows] = np.arange(len(rows), dtype=np.intp)
            subset_rows = positions[absent_rows_index]
            keep = subset_rows >= 0
            if keep.any():
                similarities[:, subset_rows[keep], absent_columns_index[keep]] = (
                    local.missing_similarity
                )
        similarities *= weight_rows[:, None, :]
        accumulator = np.zeros((request_values.shape[0], len(rows)), dtype=np.float64)
        for column_index in range(len(attribute_ids)):
            accumulator += similarities[:, :, column_index]
        return accumulator

    def _retrieve_pruned(
        self,
        request: FunctionRequest,
        matrices: _TypeMatrices,
        attribute_ids: Tuple[int, ...],
        values: Tuple[float, ...],
        weights: Tuple[float, ...],
        statistics: "RetrievalStatistics",
        *,
        n: Optional[int],
        threshold: Optional[float],
        record_threshold: Optional[float],
    ) -> "RetrievalResult":
        """Two-stage ranked retrieval: screen blocks, evaluate survivors exactly.

        ``n``/``threshold`` must already be validated; best-mode retrieval
        (``n is None and threshold is None``) never reaches this path because
        its ``best_updates`` counter is defined over the full scan order.
        """
        RetrievalResult, _, _ = _result_types()
        implementation_count = len(matrices.implementations)
        _, _, _, _, missing_count = self._signature_kernel(matrices, attribute_ids)
        compared = implementation_count * len(attribute_ids) - missing_count
        self._account(statistics, matrices, attribute_ids, missing_count, compared)
        request_values = np.array([values], dtype=np.float64)
        weight_rows = np.array([weights], dtype=np.float64)
        starts, upper = self._block_upper_bounds(matrices, attribute_ids, values, weights)
        block = matrices.BLOCK_ROWS

        def block_rows(index: int) -> np.ndarray:
            start = int(starts[index])
            return np.arange(
                start, min(start + block, implementation_count), dtype=np.intp
            )

        # Stage 1: threshold screening -- a block bounded strictly below the
        # threshold cannot contribute a row reaching it.
        kept = (
            np.flatnonzero(upper >= threshold)
            if threshold is not None
            else np.arange(len(starts), dtype=np.intp)
        )
        rows_parts: List[np.ndarray] = []
        sims_parts: List[np.ndarray] = []
        if n is not None and len(kept):
            # Stage 2 (n-best): evaluate blocks in descending-bound order
            # until >= n rows are scored; the n-th best qualifying exact
            # similarity then prunes every remaining block bounded strictly
            # below it (the final n-th best can only be higher).
            order = kept[np.argsort(-upper[kept], kind="stable")]
            covered = 0
            seed_count = 0
            for block_index in order:
                covered += len(block_rows(int(block_index)))
                seed_count += 1
                if covered >= n:
                    break
            seed_rows = np.concatenate(
                [block_rows(int(index)) for index in order[:seed_count]]
            )
            seed_sims = self._similarity_rows_subset(
                matrices, attribute_ids, request_values, weight_rows, seed_rows
            )[0]
            rows_parts.append(seed_rows)
            sims_parts.append(seed_sims)
            qualifying = (
                seed_sims if threshold is None else seed_sims[seed_sims >= threshold]
            )
            rest = order[seed_count:]
            if len(qualifying) >= n:
                cut = -np.partition(-qualifying, n - 1)[n - 1]
                rest = rest[upper[rest] >= cut]
            if len(rest):
                rest_rows = np.concatenate(
                    [block_rows(int(index)) for index in np.sort(rest)]
                )
                rows_parts.append(rest_rows)
                sims_parts.append(
                    self._similarity_rows_subset(
                        matrices, attribute_ids, request_values, weight_rows, rest_rows
                    )[0]
                )
        elif len(kept):
            survivor_rows = np.concatenate([block_rows(int(index)) for index in kept])
            rows_parts.append(survivor_rows)
            sims_parts.append(
                self._similarity_rows_subset(
                    matrices, attribute_ids, request_values, weight_rows, survivor_rows
                )[0]
            )
        if rows_parts:
            rows = np.concatenate(rows_parts)
            similarities = np.concatenate(sims_parts)
            ascending = np.argsort(rows, kind="stable")
            rows = rows[ascending]
            similarities = similarities[ascending]
        else:
            rows = np.zeros(0, dtype=np.intp)
            similarities = np.zeros(0, dtype=np.float64)
        self.prefilter_requests += 1
        self.prefilter_rows_total += implementation_count
        self.prefilter_rows_pruned += implementation_count - len(rows)
        # Rank the survivors: rows ascend by implementation ID, so a stable
        # descending-similarity sort reproduces the full path's lexsort ties.
        order = np.argsort(-similarities, kind="stable")
        if threshold is not None:
            order = order[similarities[order] >= threshold]
        if n is not None:
            order = order[:n]
        _, _, ScoredImplementation = _result_types()
        ranked = [
            ScoredImplementation(
                type_id=request.type_id,
                implementation=matrices.implementations[int(rows[int(index)])],
                similarity=float(similarities[int(index)]),
            )
            for index in order
        ]
        statistics.best_updates += len(ranked)
        return RetrievalResult(
            request.type_id, ranked, statistics, threshold=record_threshold
        )

    def _evaluate_one(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> Tuple[_TypeMatrices, np.ndarray]:
        """Similarity row for one request, with statistics accounting."""
        matrices = self._validate(request)
        attribute_ids, values, weights = request.kernel_inputs()
        request_values = np.array([values], dtype=np.float64)
        weight_rows = np.array([weights], dtype=np.float64)
        similarities, missing, compared = self._similarity_rows(
            matrices, attribute_ids, request_values, weight_rows
        )
        self._account(statistics, matrices, attribute_ids, missing, compared)
        return matrices, similarities[0]

    @staticmethod
    def _account(
        statistics: "RetrievalStatistics",
        matrices: _TypeMatrices,
        attribute_ids: Tuple[int, ...],
        missing: int,
        compared: int,
    ) -> None:
        """Book the same algorithmic-effort counters the naive loop accumulates."""
        implementation_count = len(matrices.implementations)
        statistics.implementations_visited += implementation_count
        statistics.attributes_requested += implementation_count * len(attribute_ids)
        statistics.attribute_lookups += implementation_count * len(attribute_ids)
        statistics.missing_attributes += missing
        statistics.attribute_compares += compared
        statistics.multiplications += compared

    # -- result construction -------------------------------------------------------

    def _scored(
        self,
        request: FunctionRequest,
        matrices: _TypeMatrices,
        similarities: np.ndarray,
        index: int,
    ) -> "ScoredImplementation":
        _, _, ScoredImplementation = _result_types()
        return ScoredImplementation(
            type_id=request.type_id,
            implementation=matrices.implementations[index],
            similarity=float(similarities[index]),
        )

    @staticmethod
    def _ranking_order(matrices: _TypeMatrices, similarities: np.ndarray) -> np.ndarray:
        """Indices sorted by descending similarity, ascending implementation ID."""
        return np.lexsort((matrices.impl_ids, -similarities))

    def _best_result(
        self,
        request: FunctionRequest,
        matrices: _TypeMatrices,
        similarities: np.ndarray,
        statistics: "RetrievalStatistics",
    ) -> "RetrievalResult":
        RetrievalResult, _, _ = _result_types()
        # The hardware's strict S > S_best update rule: count prefix maxima so
        # the best_updates counter matches the sequential scan exactly.
        running = np.maximum.accumulate(similarities)
        statistics.best_updates += 1 + int(
            np.count_nonzero(similarities[1:] > running[:-1])
        )
        best_index = int(np.argmax(similarities))
        ranked = [self._scored(request, matrices, similarities, best_index)]
        return RetrievalResult(request.type_id, ranked, statistics)

    def _ranked_result(
        self,
        request: FunctionRequest,
        matrices: _TypeMatrices,
        similarities: np.ndarray,
        statistics: "RetrievalStatistics",
        *,
        n: Optional[int],
        threshold: Optional[float],
        record_threshold: Optional[float],
        order: Optional[np.ndarray] = None,
    ) -> "RetrievalResult":
        """Build a ranked result; ``order`` may carry a precomputed ranking.

        ``retrieve_batch`` computes the ranking orders of a whole signature
        group in one stable ``argsort`` call (identical to the per-request
        lexsort because ``matrices.impl_ids`` ascends with the row index) and
        passes each row in via ``order``.
        """
        RetrievalResult, _, _ = _result_types()
        if order is None:
            order = self._ranking_order(matrices, similarities)
        if threshold is not None:
            order = order[similarities[order] >= threshold]
        if n is not None:
            order = order[:n]
        ranked = [
            self._scored(request, matrices, similarities, int(index)) for index in order
        ]
        statistics.best_updates += len(ranked)
        return RetrievalResult(
            request.type_id, ranked, statistics, threshold=record_threshold
        )

    # -- RetrievalBackend interface -------------------------------------------------

    def score_all(
        self, request: FunctionRequest, statistics: "RetrievalStatistics"
    ) -> List["ScoredImplementation"]:
        matrices, similarities = self._evaluate_one(request, statistics)
        return [
            self._scored(request, matrices, similarities, index)
            for index in range(len(matrices.implementations))
        ]

    def retrieve_best(self, request: FunctionRequest) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        statistics = RetrievalStatistics()
        matrices, similarities = self._evaluate_one(request, statistics)
        return self._best_result(request, matrices, similarities, statistics)

    def retrieve_n_best(self, request: FunctionRequest, n: int) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        _check_n(n)
        statistics = RetrievalStatistics()
        if self._prefilter_active():
            matrices = self._validate(request)
            if len(matrices.implementations) >= self.PREFILTER_MIN_ROWS:
                attribute_ids, values, weights = request.kernel_inputs()
                return self._retrieve_pruned(
                    request, matrices, attribute_ids, values, weights, statistics,
                    n=n, threshold=None, record_threshold=None,
                )
        matrices, similarities = self._evaluate_one(request, statistics)
        return self._ranked_result(
            request, matrices, similarities, statistics,
            n=n, threshold=None, record_threshold=None,
        )

    def retrieve_above_threshold(
        self, request: FunctionRequest, threshold: float
    ) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        _check_threshold(threshold)
        statistics = RetrievalStatistics()
        if self._prefilter_active():
            matrices = self._validate(request)
            if len(matrices.implementations) >= self.PREFILTER_MIN_ROWS:
                attribute_ids, values, weights = request.kernel_inputs()
                return self._retrieve_pruned(
                    request, matrices, attribute_ids, values, weights, statistics,
                    n=None, threshold=threshold, record_threshold=threshold,
                )
        matrices, similarities = self._evaluate_one(request, statistics)
        return self._ranked_result(
            request, matrices, similarities, statistics,
            n=None, threshold=threshold, record_threshold=threshold,
        )

    def retrieve(
        self,
        request: FunctionRequest,
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> "RetrievalResult":
        _, RetrievalStatistics, _ = _result_types()
        if n is None and threshold is None:
            return self.retrieve_best(request)
        statistics = RetrievalStatistics()
        if self._prefilter_active():
            matrices = self._validate(request)
            if len(matrices.implementations) >= self.PREFILTER_MIN_ROWS:
                attribute_ids, values, weights = request.kernel_inputs()
                # Surface kernel-level scoring errors (e.g. a bounds-table
                # gap) before the mode-argument checks, mirroring the
                # unpruned path's evaluate-then-validate order.
                self._signature_kernel(matrices, attribute_ids)
                if threshold is not None:
                    _check_threshold(threshold)
                if n is not None:
                    _check_n(n)
                return self._retrieve_pruned(
                    request, matrices, attribute_ids, values, weights, statistics,
                    n=n, threshold=threshold, record_threshold=threshold,
                )
        matrices, similarities = self._evaluate_one(request, statistics)
        # Validation order mirrors the naive combined entry point (arguments
        # are checked only after scoring).
        if threshold is not None:
            _check_threshold(threshold)
        if n is not None:
            _check_n(n)
        return self._ranked_result(
            request, matrices, similarities, statistics,
            n=n, threshold=threshold, record_threshold=threshold,
        )

    def retrieve_batch(
        self,
        requests: Sequence[FunctionRequest],
        *,
        n: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> List["RetrievalResult"]:
        """Grouped matrix evaluation of a whole request batch.

        Requests sharing a ``(type_id, constrained-attribute-set)`` signature
        are stacked into one ``(B, A)`` value matrix and evaluated against the
        type's ``(I, A)`` case matrix in a single broadcast pass; weights may
        differ freely within a group.

        Error-ordering caveat: scoring errors only detectable inside the
        kernel (e.g. a constrained attribute missing from the bounds table)
        surface during group evaluation, *after* the mode-argument checks --
        whereas the sequential naive loop scores request 0 completely before
        validating ``n``/``threshold``.  For batches that are erroneous in
        both ways at once the two backends may therefore raise different
        (equally valid) ``RetrievalError``\\ s.
        """
        _, RetrievalStatistics, _ = _result_types()
        requests = list(requests)
        # Validate in request order: request 0's structural and weight checks,
        # then the mode arguments, then the remaining requests.  (Scoring
        # errors only detectable inside the kernel -- e.g. a bounds-table gap
        # -- surface later, during group evaluation.)
        self.tracker.ensure_current()  # one refresh for the whole batch
        groups: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
        matrices_by_request: List[_TypeMatrices] = []
        kernel_inputs_by_request: List[Tuple] = []
        for index, request in enumerate(requests):
            matrices = self._validate(request, current=True)
            kernel_inputs_by_request.append(request.kernel_inputs())
            if index == 0:
                if threshold is not None:
                    _check_threshold(threshold)
                if n is not None:
                    _check_n(n)
            matrices_by_request.append(matrices)
            key = (request.type_id, kernel_inputs_by_request[index][0])
            groups.setdefault(key, []).append(index)
        results: List[Optional["RetrievalResult"]] = [None] * len(requests)
        prefilter = self._prefilter_active() and not (n is None and threshold is None)
        for (type_id, attribute_ids), member_indices in groups.items():
            matrices = matrices_by_request[member_indices[0]]
            if prefilter and len(matrices.implementations) >= self.PREFILTER_MIN_ROWS:
                # Huge types: per-request block pruning beats the grouped
                # full-matrix broadcast.  Statistics stay the group-constant
                # full-scan counters, booked inside the pruned path.
                for index in member_indices:
                    request = requests[index]
                    statistics = RetrievalStatistics()
                    _, values, weights = kernel_inputs_by_request[index]
                    results[index] = self._retrieve_pruned(
                        request, matrices, attribute_ids, values, weights, statistics,
                        n=n, threshold=threshold, record_threshold=threshold,
                    )
                continue
            request_values = np.array(
                [kernel_inputs_by_request[index][1] for index in member_indices],
                dtype=np.float64,
            )
            weight_rows = np.array(
                [kernel_inputs_by_request[index][2] for index in member_indices],
                dtype=np.float64,
            )
            similarity_rows, missing, compared = self._similarity_rows(
                matrices, attribute_ids, request_values, weight_rows
            )
            if n is None and threshold is None:
                orders = None
            else:
                # One stable sort for the whole group: descending similarity
                # with ties in row-index order, which is ascending
                # implementation ID by construction -- exactly the
                # per-request lexsort of :meth:`_ranking_order`.
                orders = np.argsort(-similarity_rows, axis=1, kind="stable")
            # Group-constant effort counters (see :meth:`_account`), built
            # directly into each request's statistics record.
            implementation_count = len(matrices.implementations)
            attribute_total = implementation_count * len(attribute_ids)
            for row, index in enumerate(member_indices):
                request = requests[index]
                statistics = RetrievalStatistics(
                    implementations_visited=implementation_count,
                    attributes_requested=attribute_total,
                    attribute_lookups=attribute_total,
                    attribute_compares=compared,
                    missing_attributes=missing,
                    multiplications=compared,
                )
                similarities = similarity_rows[row]
                if orders is None:
                    results[index] = self._best_result(
                        request, matrices, similarities, statistics
                    )
                else:
                    results[index] = self._ranked_result(
                        request, matrices, similarities, statistics,
                        n=n, threshold=threshold, record_threshold=threshold,
                        order=orders[row],
                    )
        return results


#: Registry of constructable backend names (used by the engine, manager and CLI).
BACKENDS = {
    NaiveBackend.name: NaiveBackend,
    "reference": NaiveBackend,
    VectorizedBackend.name: VectorizedBackend,
}


def get_retrieval_backend(name: str) -> RetrievalBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = BACKENDS[name]
    except KeyError as exc:
        raise RetrievalError(
            f"unknown retrieval backend {name!r}; known: {sorted(BACKENDS)}"
        ) from exc
    return factory()


def resolve_backend(
    spec: Union[str, RetrievalBackend, None], engine: "RetrievalEngine"
) -> RetrievalBackend:
    """Turn a backend spec (name, instance or ``None``) into an attached backend.

    A ``"vectorized"`` request against an engine whose similarity configuration
    the vectorized kernel cannot reproduce (custom amalgamation, metric or
    local-similarity subclass) transparently falls back to the naive backend,
    so callers may select vectorization unconditionally.
    """
    if spec is None:
        spec = NaiveBackend.name
    backend = get_retrieval_backend(spec) if isinstance(spec, str) else spec
    if isinstance(backend, VectorizedBackend) and not VectorizedBackend.supports(engine):
        backend = NaiveBackend()
    return backend.attach(engine)
