"""Shared revision-tracked caching with incremental delta application.

Before this module, four layers (the vectorized retrieval backend, the cosim
columnar image plus encoded memory images of the hardware/software units, and
the serving shards) each hand-rolled the same pattern::

    self._revision = -1
    ...
    if self._revision != case_base.revision:
        <rebuild everything from scratch>
        self._revision = case_base.revision

:class:`RevisionTrackedCache` centralises that pattern and upgrades it: when
the case base's :class:`~repro.core.deltas.DeltaLog` still covers the window
between the cache's last-seen revision and the current one, the consumer's
``apply`` hook receives a compacted :class:`~repro.core.deltas.DeltaSummary`
and patches its derived state in place -- O(touched types) instead of
O(case base).  The full rebuild remains the fallback for truncated logs,
bounds instability, or any delta the consumer declines to absorb, so
incremental application is always bit-identical with a from-scratch build.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .case_base import CaseBase
    from .deltas import DeltaSummary


class RevisionTrackedCache:
    """One consumer's subscription to a case base's mutation stream.

    Parameters
    ----------
    case_base:
        The case base whose revision counter and delta log drive the cache.
    rebuild:
        Zero-argument callback rebuilding the consumer's derived state from
        scratch (the pre-delta behaviour).
    apply:
        Optional callback receiving a :class:`DeltaSummary` and returning
        ``True`` when the consumer absorbed the window incrementally, or
        ``False`` to request the full rebuild instead.  Without it the cache
        degrades to the plain revision-keyed rebuild pattern.

    The ``rebuild_count`` / ``incremental_count`` counters expose which path
    served each refresh -- tests and benchmarks assert on them so the fast
    path can never silently regress into rebuilding.
    """

    def __init__(
        self,
        case_base: "CaseBase",
        *,
        rebuild: Callable[[], None],
        apply: Optional[Callable[["DeltaSummary"], bool]] = None,
    ) -> None:
        self.case_base = case_base
        self._rebuild = rebuild
        self._apply = apply
        self._revision: Optional[int] = None
        self.rebuild_count = 0
        self.incremental_count = 0

    @property
    def revision(self) -> Optional[int]:
        """Last case-base revision the consumer's state reflects."""
        return self._revision

    @property
    def current(self) -> bool:
        """Whether the consumer's state already reflects the live revision."""
        return self._revision == self.case_base.revision

    def invalidate(self) -> None:
        """Force the next :meth:`ensure_current` onto the full-rebuild path."""
        self._revision = None

    def mark_current(self) -> None:
        """Adopt the live revision without rebuilding.

        For consumers that build their initial state eagerly in their own
        constructor (the retrieval units) rather than on first use.
        """
        self._revision = self.case_base.revision

    def ensure_current(self) -> None:
        """Bring the consumer's derived state up to the live revision."""
        revision = self.case_base.revision
        if revision == self._revision:
            return
        applied = False
        if self._revision is not None and self._apply is not None:
            summary = self.case_base.delta_log.summary_since(self._revision)
            if summary is not None:
                applied = bool(self._apply(summary))
        if applied:
            self.incremental_count += 1
        else:
            self._rebuild()
            self.rebuild_count += 1
        self._revision = revision
