"""Durable delta journal: crash recovery for the serving daemon.

The journal makes PR 6's capture/replay property load-bearing for
durability.  A journal directory holds exactly one *generation* at a time:

* ``snapshot-<g>.json`` -- an enveloped ``journal-snapshot`` document
  (case base, engine state, serving spec, absolute trace/batch frame),
  written atomically (temp file + fsync + rename);
* ``journal-<g>.jsonl`` -- an append-only line-per-record log of
  everything that happened *after* the snapshot: served-trace entries
  (``journal-trace``), learn-event batches (``journal-learn``),
  delta-log windows (``journal-deltas``) and fsync group markers
  (``journal-commit``).

Records are buffered in memory and written + fsynced as one group per
:meth:`DeltaJournal.commit`, each group terminated by a commit marker.
Readers ignore everything after the last marker, so a crash mid-write can
only drop records whose responses were never released to clients (the
daemon commits *before* resolving response futures).  Compaction writes a
new-generation snapshot and deletes the old files; recovery loads the
newest parsable snapshot plus its committed journal tail.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from .exceptions import ReproError

__all__ = ["DeltaJournal", "JournalError", "JournalState", "recover_case_base"]

#: Record kinds a journal line may carry.
JOURNAL_RECORD_KINDS = (
    "journal-trace",
    "journal-learn",
    "journal-deltas",
    "journal-commit",
)


class JournalError(ReproError):
    """The journal is unreadable, inconsistent or does not match the spec."""


@dataclasses.dataclass
class JournalState:
    """What :meth:`DeltaJournal.load` found on disk.

    ``generation`` is ``-1`` when the directory holds no snapshot yet;
    ``records`` contains only *committed* records (commit markers removed,
    any torn tail dropped).
    """

    generation: int = -1
    snapshot: Optional[Dict[str, object]] = None
    records: List[Dict[str, object]] = dataclasses.field(default_factory=list)


class DeltaJournal:
    """Writer for one journal directory (single-writer, fsync-batched)."""

    SNAPSHOT_PREFIX = "snapshot-"
    JOURNAL_PREFIX = "journal-"

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.generation = -1
        self._stream = None
        self._pending: List[Dict[str, object]] = []
        self._records_since_snapshot = 0
        #: Optional ``listener(committed_record_count)`` invoked after each
        #: durable :meth:`commit` (observability hook; never affects bytes).
        self.listener = None

    # -- writing -----------------------------------------------------------------------

    def begin(self, generation: int, snapshot_document: Mapping[str, object]) -> None:
        """Start a new generation: durable snapshot, fresh journal, old files gone.

        The snapshot lands via temp-file + fsync + atomic rename, so a crash
        during compaction leaves either the old generation or the new one
        fully intact -- never a half-written snapshot.  Previous-generation
        files are deleted only after the new snapshot is durable.
        """
        if generation <= self.generation:
            raise JournalError(
                f"journal generations must advance ({generation} <= {self.generation})"
            )
        snapshot_path = self.directory / f"{self.SNAPSHOT_PREFIX}{generation}.json"
        temp_path = snapshot_path.with_suffix(".json.tmp")
        with open(temp_path, "w", encoding="utf-8") as stream:
            json.dump(snapshot_document, stream, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, snapshot_path)
        self._fsync_directory()
        if self._stream is not None:
            self._stream.close()
        self._stream = open(
            self.directory / f"{self.JOURNAL_PREFIX}{generation}.jsonl",
            "w",
            encoding="utf-8",
        )
        self.generation = generation
        self._pending = []
        self._records_since_snapshot = 0
        self._delete_other_generations(keep=generation)

    def append(self, record: Mapping[str, object]) -> None:
        """Buffer one record for the next :meth:`commit` (not yet durable)."""
        if self._stream is None:
            raise JournalError("journal has no open generation; call begin() first")
        self._pending.append(dict(record))

    def commit(self, **marker_fields: object) -> int:
        """Write buffered records plus a commit marker, fsync once, return count.

        The single fsync covers the whole group: either every record in it
        (and its marker) is durable, or a reader treats the group as never
        written.  Safe to call with an empty buffer -- the marker then just
        records progress metadata (batch counter, stamps).
        """
        if self._stream is None:
            raise JournalError("journal has no open generation; call begin() first")
        committed = len(self._pending)
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self._pending
        ]
        marker = {"kind": "journal-commit", "records": committed}
        marker.update(marker_fields)
        lines.append(json.dumps(marker, sort_keys=True, separators=(",", ":")))
        self._stream.write("\n".join(lines) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._pending = []
        self._records_since_snapshot += committed
        if self.listener is not None:
            self.listener(committed)
        return committed

    @property
    def records_since_snapshot(self) -> int:
        """Committed records written since the current generation's snapshot."""
        return self._records_since_snapshot

    def close(self) -> None:
        """Close the journal stream (pending, uncommitted records are dropped)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _fsync_directory(self) -> None:
        # Durability of the rename itself; best-effort where the platform
        # does not support opening directories.
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def _delete_other_generations(self, *, keep: int) -> None:
        for path in self.directory.iterdir():
            name = path.name
            if name in (
                f"{self.SNAPSHOT_PREFIX}{keep}.json",
                f"{self.JOURNAL_PREFIX}{keep}.jsonl",
            ):
                continue
            if name.startswith((self.SNAPSHOT_PREFIX, self.JOURNAL_PREFIX)):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup is benign
                    pass

    # -- reading -----------------------------------------------------------------------

    @classmethod
    def load(cls, directory) -> JournalState:
        """Read the newest durable generation from ``directory``.

        Tolerates exactly the states a crash can produce: a missing journal
        file (crash right after compaction), a torn final line (crash
        mid-write) and records after the last commit marker (crash between
        write and fsync).  Anything else -- garbage mid-file, an unknown
        record kind, no parsable snapshot despite snapshot files existing --
        raises :class:`JournalError`, because silently dropping committed
        records could serve wrong answers.
        """
        directory = Path(directory)
        if not directory.is_dir():
            return JournalState()
        generations = []
        for path in directory.iterdir():
            name = path.name
            if name.startswith(cls.SNAPSHOT_PREFIX) and name.endswith(".json"):
                stem = name[len(cls.SNAPSHOT_PREFIX):-len(".json")]
                if stem.isdigit():
                    generations.append(int(stem))
        if not generations:
            return JournalState()
        generation = max(generations)
        snapshot_path = directory / f"{cls.SNAPSHOT_PREFIX}{generation}.json"
        try:
            with open(snapshot_path, "r", encoding="utf-8") as stream:
                snapshot = json.load(stream)
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"journal snapshot {snapshot_path} is unreadable: {exc}"
            ) from exc
        if not isinstance(snapshot, dict) or snapshot.get("kind") != "journal-snapshot":
            raise JournalError(
                f"{snapshot_path} is not a journal-snapshot document"
            )
        records = cls._read_records(directory / f"{cls.JOURNAL_PREFIX}{generation}.jsonl")
        return JournalState(generation=generation, snapshot=snapshot, records=records)

    @staticmethod
    def _read_records(path: Path) -> List[Dict[str, object]]:
        if not path.exists():
            return []
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        parsed: List[Dict[str, object]] = []
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if position == len(lines) - 1:
                    break  # torn tail from a crash mid-write
                raise JournalError(
                    f"journal {path} is corrupt at line {position + 1}: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise JournalError(
                    f"journal {path} line {position + 1} is not an object"
                )
            if record.get("kind") not in JOURNAL_RECORD_KINDS:
                raise JournalError(
                    f"journal {path} line {position + 1} has unknown kind "
                    f"{record.get('kind')!r}"
                )
            parsed.append(record)
        committed: List[Dict[str, object]] = []
        group: List[Dict[str, object]] = []
        for record in parsed:
            if record["kind"] == "journal-commit":
                committed.extend(group)
                group = []
            else:
                group.append(record)
        # `group` now holds records written but never covered by a commit
        # marker; their responses were never released, so they are dropped.
        return committed


def recover_case_base(state: JournalState):
    """Rebuild the case base from a journal state without a serving engine.

    The daemon's full recovery replays the *trace* through the real engine
    (regenerating learned mutations bit-identically); this helper is the
    engine-free path used by tooling and by the truncation tests: snapshot
    plus the journalled ``journal-deltas`` windows, which outlive the
    bounded in-memory :class:`~repro.core.deltas.DeltaLog`.
    """
    from ..api import schemas
    from .case_base import CaseBase

    if state.snapshot is None:
        raise JournalError("cannot recover a case base: journal has no snapshot")
    case_base = CaseBase.from_dict(state.snapshot["case_base"])
    case_base.delta_log.rebase(case_base.revision)
    for record in state.records:
        if record.get("kind") != "journal-deltas":
            continue
        if record.get("replayable", True) is False:
            raise JournalError(
                "journal window contains a non-replayable delta (bounds change) "
                "without a subsequent snapshot; the journal is incomplete"
            )
        schemas.apply_mutation_events(case_base, record.get("events", []))
    return case_base
