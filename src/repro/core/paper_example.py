"""The worked example of the paper (Fig. 3 and Table 1) as ready-made objects.

The example case base contains two basic function types:

* type 1, "FIR equalizer", with three implementation variants:

  ============== ======== ==================== ============ ==============
  implementation bitwidth processing mode      output mode  sampling rate
  ============== ======== ==================== ============ ==============
  1 (FPGA)        16       integer (0)          surround (2) 44 kSamples/s
  2 (DSP)         16       integer (0)          stereo (1)   44 kSamples/s
  3 (GP proc.)    8        integer (0)          mono (0)     22 kSamples/s
  ============== ======== ==================== ============ ==============

* type 2, "1D-FFT", present in Fig. 3 but not detailed; this module gives it a
  pair of plausible variants so that multi-type retrieval and the memory
  encoders have a second branch to traverse.

The request (Fig. 3, right) asks for type 1 with bitwidth 16, stereo output
and 40 kSamples/s, with equal weights.  The expected global similarities of
Table 1 are 0.85 (FPGA), 0.96 (DSP) and 0.43 (GP processor) with the DSP
variant winning.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .attributes import AttributeSchema, BoundsTable, paper_bounds, paper_schema
from .case_base import CaseBase, DeploymentInfo, ExecutionTarget, Implementation
from .request import FunctionRequest, paper_request

#: Global similarities reported in Table 1 of the paper, keyed by implementation ID.
TABLE1_EXPECTED_SIMILARITIES: Dict[int, float] = {1: 0.85, 2: 0.96, 3: 0.43}

#: The implementation the paper identifies as the best match (DSP variant).
TABLE1_BEST_IMPLEMENTATION_ID = 2

#: dmax values used in Table 1, keyed by attribute ID.
TABLE1_DMAX: Dict[int, int] = {1: 8, 3: 2, 4: 36}

FIR_EQUALIZER_TYPE_ID = 1
FFT_TYPE_ID = 2


def paper_case_base(include_fft: bool = True) -> CaseBase:
    """Build the Fig. 3 case base.

    Parameters
    ----------
    include_fft:
        Also populate the second ("1D-FFT") function type shown in Fig. 3.
        The FFT variants are not described in the paper; they only exist so a
        second tree branch can be traversed and do not affect Table 1.
    """
    schema = paper_schema()
    bounds = paper_bounds()
    case_base = CaseBase(schema=schema, bounds=bounds)

    fir = case_base.add_type(FIR_EQUALIZER_TYPE_ID, name="FIR Equalizer")
    fir.add(
        Implementation(
            implementation_id=1,
            target=ExecutionTarget.FPGA,
            name="FPGA FIR equalizer",
            attributes={1: 16, 2: 0, 3: 2, 4: 44},
            deployment=DeploymentInfo(
                configuration_size_bytes=96_000,
                area_slices=1200,
                power_mw=450.0,
                setup_time_us=2800.0,
            ),
        )
    )
    fir.add(
        Implementation(
            implementation_id=2,
            target=ExecutionTarget.DSP,
            name="DSP FIR equalizer",
            attributes={1: 16, 2: 0, 3: 1, 4: 44},
            deployment=DeploymentInfo(
                configuration_size_bytes=12_000,
                power_mw=300.0,
                load_fraction=0.35,
                setup_time_us=400.0,
            ),
        )
    )
    fir.add(
        Implementation(
            implementation_id=3,
            target=ExecutionTarget.GPP,
            name="Software FIR equalizer",
            attributes={1: 8, 2: 0, 3: 0, 4: 22},
            deployment=DeploymentInfo(
                configuration_size_bytes=4_000,
                power_mw=180.0,
                load_fraction=0.55,
                setup_time_us=120.0,
            ),
        )
    )

    if include_fft:
        fft = case_base.add_type(FFT_TYPE_ID, name="1D-FFT")
        fft.add(
            Implementation(
                implementation_id=1,
                target=ExecutionTarget.FPGA,
                name="FPGA 1D-FFT",
                attributes={1: 16, 2: 0, 4: 44},
                deployment=DeploymentInfo(
                    configuration_size_bytes=110_000,
                    area_slices=1500,
                    power_mw=520.0,
                    setup_time_us=3100.0,
                ),
            )
        )
        fft.add(
            Implementation(
                implementation_id=2,
                target=ExecutionTarget.GPP,
                name="Software 1D-FFT",
                attributes={1: 16, 2: 0, 4: 22},
                deployment=DeploymentInfo(
                    configuration_size_bytes=6_000,
                    power_mw=200.0,
                    load_fraction=0.6,
                    setup_time_us=150.0,
                ),
            )
        )

    return case_base


def paper_example() -> Tuple[CaseBase, FunctionRequest, BoundsTable, AttributeSchema]:
    """Return ``(case_base, request, bounds, schema)`` for the worked example."""
    case_base = paper_case_base()
    return case_base, paper_request(), case_base.bounds, case_base.schema
