"""Structured case-base mutation log (the delta-propagation substrate).

The paper defers "dynamic update mechanisms of Case-Base data structures ...
enabling for a self-learning system" to future work; :mod:`repro.core.learning`
models that revise/retain cycle, but until this module every accelerated
consumer (vectorized backend matrices, the cosim columnar image, the encoded
hardware/software memory images, the serving shards) kept a private cache
keyed to :attr:`~repro.core.case_base.CaseBase.revision` and rebuilt from
scratch on *any* change -- O(case base) per retained case.

This module gives mutations structure so consumers can react proportionally:

* :class:`CaseBaseDelta` -- one typed mutation record (add/remove/replace of a
  function type or implementation variant, or a bounds-table swap), carrying
  the affected objects so consumers never re-diff the tree;
* :class:`DeltaLog` -- the bounded per-case-base log.  :meth:`DeltaLog.since`
  returns the deltas between two revisions, or ``None`` when the window was
  truncated (the subscriber then falls back to a full rebuild);
* :class:`DeltaSummary` -- the compacted per-revision-window view: net
  per-implementation events with type-level churn folded away, which is what
  the incremental cache updates consume;
* :func:`deltas_preserve_derived_bounds` -- the conservative check that a
  delta window provably leaves a *derived* bounds table unchanged (consumers
  whose output depends on the effective bounds fall back to a full rebuild
  when it fails, keeping incremental application bit-identical with a
  from-scratch build).

:class:`~repro.core.caching.RevisionTrackedCache` ties the pieces together
into the shared subscriber protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .attributes import BoundsTable
    from .case_base import FunctionType, Implementation


class DeltaKind(enum.Enum):
    """The structural mutation classes a :class:`CaseBase` can undergo."""

    ADD_TYPE = "add_type"
    REMOVE_TYPE = "remove_type"
    ADD_IMPLEMENTATION = "add_implementation"
    REMOVE_IMPLEMENTATION = "remove_implementation"
    REPLACE_IMPLEMENTATION = "replace_implementation"
    BOUNDS_CHANGED = "bounds_changed"


@dataclass(frozen=True)
class CaseBaseDelta:
    """One structural mutation, stamped with the revision it produced.

    ``implementation`` carries the post-mutation object (add/replace),
    ``previous`` the pre-mutation object (remove/replace), and
    ``function_type`` the affected type object for type-level mutations
    (which may carry implementations: ``add_type`` accepts populated
    :class:`~repro.core.case_base.FunctionType` objects, and ``remove_type``
    drops the whole subtree).  The payloads are references, not copies --
    exactly what the mutators saw -- so logging is O(1).
    """

    revision: int
    kind: DeltaKind
    type_id: int = 0
    implementation_id: int = 0
    implementation: Optional["Implementation"] = None
    previous: Optional["Implementation"] = None
    function_type: Optional["FunctionType"] = None


@dataclass(frozen=True)
class NetImplementationEvent:
    """Net effect of one delta window on a single implementation variant."""

    ADDED = "added"
    REMOVED = "removed"
    REPLACED = "replaced"

    kind: str
    type_id: int
    implementation_id: int
    #: The current implementation object (``None`` for removals).
    implementation: Optional["Implementation"] = None


class DeltaSummary:
    """Compacted view of one delta window (the subscriber-facing shape).

    ``reset_types`` holds function types that saw type-level churn
    (``add_type``/``remove_type``) inside the window -- consumers handle
    those wholesale (drop-and-rebuild the per-type state from the live case
    base).  ``impl_events`` maps the remaining touched types to their net
    per-implementation events, with add/remove ping-pong folded away (an
    implementation added and removed inside the window produces no event).
    """

    def __init__(self, deltas: Sequence[CaseBaseDelta]) -> None:
        self.deltas: Tuple[CaseBaseDelta, ...] = tuple(deltas)
        self.bounds_changed = False
        reset: set = set()
        events: Dict[int, Dict[int, NetImplementationEvent]] = {}
        for delta in self.deltas:
            if delta.kind is DeltaKind.BOUNDS_CHANGED:
                self.bounds_changed = True
                continue
            if delta.kind in (DeltaKind.ADD_TYPE, DeltaKind.REMOVE_TYPE):
                reset.add(delta.type_id)
                events.pop(delta.type_id, None)
                continue
            if delta.type_id in reset:
                # Type-level churn already forces a per-type rebuild; finer
                # events inside the same window add no information.
                continue
            per_type = events.setdefault(delta.type_id, {})
            per_type[delta.implementation_id] = self._fold(
                per_type.get(delta.implementation_id), delta
            )
            if per_type[delta.implementation_id] is None:
                del per_type[delta.implementation_id]
                if not per_type:
                    del events[delta.type_id]
        self.reset_types: FrozenSet[int] = frozenset(reset)
        self.impl_events: Dict[int, Dict[int, NetImplementationEvent]] = events

    @staticmethod
    def _fold(
        prior: Optional[NetImplementationEvent], delta: CaseBaseDelta
    ) -> Optional[NetImplementationEvent]:
        """Fold one more delta into the net event of an implementation."""
        added = NetImplementationEvent.ADDED
        removed = NetImplementationEvent.REMOVED
        replaced = NetImplementationEvent.REPLACED

        def event(kind: str) -> NetImplementationEvent:
            return NetImplementationEvent(
                kind=kind,
                type_id=delta.type_id,
                implementation_id=delta.implementation_id,
                implementation=(delta.implementation if kind != removed else None),
            )

        if delta.kind is DeltaKind.ADD_IMPLEMENTATION:
            # remove + re-add inside one window nets out to a replacement.
            return event(replaced if prior is not None and prior.kind == removed else added)
        if delta.kind is DeltaKind.REMOVE_IMPLEMENTATION:
            if prior is not None and prior.kind == added:
                return None  # added and removed inside the window: no net effect
            return event(removed)
        # REPLACE_IMPLEMENTATION: an add followed by replacements stays an add.
        if prior is not None and prior.kind == added:
            return event(added)
        return event(replaced)

    @property
    def touched_types(self) -> FrozenSet[int]:
        """Every function type whose membership or contents changed."""
        return self.reset_types | frozenset(self.impl_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaSummary(deltas={len(self.deltas)}, "
            f"touched_types={sorted(self.touched_types)}, "
            f"bounds_changed={self.bounds_changed})"
        )


class DeltaLog:
    """Bounded, compactable mutation log attached to one :class:`CaseBase`.

    The log keeps at most ``capacity`` records; older records are truncated
    and :meth:`since` reports the truncation by returning ``None`` so the
    subscriber falls back to a full rebuild.  Revisions are strictly
    increasing, so the log is always sorted by revision.
    """

    DEFAULT_CAPACITY = 512

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"delta-log capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._deltas: List[CaseBaseDelta] = []
        #: The oldest revision :meth:`since` can still serve as a base.
        self._base_revision = 0
        #: Memoised ``(from_revision, to_revision, summary)`` -- all consumers
        #: of one case base typically ask for the same window, so the fold
        #: runs once per revision step instead of once per subscriber.
        self._summary_cache: Optional[Tuple[int, int, "DeltaSummary"]] = None
        #: Synchronous observers invoked with every recorded delta.  Unlike
        #: :meth:`since` polling, a tap sees every delta exactly once even
        #: when the bounded window truncates between polls -- the durability
        #: journal relies on that to never lose a mutation.
        self._taps: List[Callable[[CaseBaseDelta], None]] = []

    def __len__(self) -> int:
        return len(self._deltas)

    @property
    def base_revision(self) -> int:
        """Oldest revision from which the retained window can still replay."""
        return self._base_revision

    def record(self, delta: CaseBaseDelta) -> None:
        """Append one delta, truncating the window beyond the capacity."""
        self._deltas.append(delta)
        if len(self._deltas) > self.capacity:
            overflow = len(self._deltas) - self.capacity
            self._base_revision = self._deltas[overflow - 1].revision
            del self._deltas[:overflow]
        for tap in self._taps:
            tap(delta)

    def attach_tap(self, tap: Callable[[CaseBaseDelta], None]) -> None:
        """Register a synchronous observer called once per recorded delta.

        Taps are delivery guarantees, not views: they fire before the
        caller's mutation returns and are unaffected by window truncation.
        Taps are deliberately *not* carried over by ``CaseBase.copy()``
        (which builds a fresh log), so snapshots never journal twice.
        """
        self._taps.append(tap)

    def detach_tap(self, tap: Callable[[CaseBaseDelta], None]) -> None:
        """Remove a previously attached tap (no-op when absent)."""
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    def since(self, revision: int) -> Optional[Tuple[CaseBaseDelta, ...]]:
        """The deltas applied after ``revision``, or ``None`` when truncated."""
        if revision < self._base_revision:
            return None
        collected: List[CaseBaseDelta] = []
        for delta in reversed(self._deltas):
            if delta.revision <= revision:
                break
            collected.append(delta)
        collected.reverse()
        return tuple(collected)

    def summary_since(self, revision: int) -> Optional[DeltaSummary]:
        """Compacted :class:`DeltaSummary` for the window after ``revision``."""
        last = self._deltas[-1].revision if self._deltas else self._base_revision
        cached = self._summary_cache
        if cached is not None and cached[0] == revision and cached[1] == last:
            return cached[2]
        deltas = self.since(revision)
        if deltas is None:
            return None
        summary = DeltaSummary(deltas)
        self._summary_cache = (revision, last, summary)
        return summary

    def rebase(self, revision: int) -> None:
        """Drop everything and restart the window at ``revision``.

        Used by :meth:`CaseBase.copy` so the snapshot starts with an
        independent (empty) window anchored at the copied revision: mutations
        of either tree after the copy can never leak into the other's log.
        """
        self._deltas.clear()
        self._base_revision = revision
        self._summary_cache = None


def _implementation_values(implementation: "Implementation"):
    """The ``(attribute_id, value)`` pairs of one implementation."""
    return implementation.attributes.items()


def deltas_preserve_derived_bounds(
    deltas: Sequence[CaseBaseDelta], bounds: "BoundsTable"
) -> bool:
    """Whether a delta window provably leaves *derived* bounds unchanged.

    A case base without an explicit bounds table derives one from its
    contents (min/max per attribute), so structural mutations can shift the
    effective ``1/(1+dmax)`` constants of the similarity measure.  This check
    is conservative: additions must stay inside the known ranges, and
    removals must not take away a range endpoint (the removed value might
    have been its unique witness).  Any doubt returns ``False`` and the
    consumer performs the same full rebuild it always did.
    """
    added: List["Implementation"] = []
    removed: List["Implementation"] = []
    for delta in deltas:
        if delta.kind is DeltaKind.BOUNDS_CHANGED:
            return False
        if delta.kind is DeltaKind.ADD_IMPLEMENTATION:
            added.append(delta.implementation)
        elif delta.kind is DeltaKind.REMOVE_IMPLEMENTATION:
            removed.append(delta.previous)
        elif delta.kind is DeltaKind.REPLACE_IMPLEMENTATION:
            added.append(delta.implementation)
            removed.append(delta.previous)
        elif delta.kind in (DeltaKind.ADD_TYPE, DeltaKind.REMOVE_TYPE):
            members = (
                list(delta.function_type.implementations.values())
                if delta.function_type is not None
                else []
            )
            if delta.kind is DeltaKind.ADD_TYPE:
                added.extend(members)
            else:
                removed.extend(members)
    for implementation in added:
        if implementation is None:
            return False
        for attribute_id, value in _implementation_values(implementation):
            if attribute_id not in bounds:
                return False  # a new attribute would grow the derived table
            bound = bounds.get(attribute_id)
            if not bound.lower <= value <= bound.upper:
                return False
    for implementation in removed:
        if implementation is None:
            return False
        for attribute_id, value in _implementation_values(implementation):
            if attribute_id not in bounds:
                return False
            bound = bounds.get(attribute_id)
            if value == bound.lower or value == bound.upper:
                return False  # might have been the unique range witness
    return True
