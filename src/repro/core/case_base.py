"""Case base: the function-implementation tree of the paper (Fig. 3 / Fig. 5).

The case base is a two-level hierarchy:

* level 0 -- *function types*, identified by a global ``IDType`` (FIR equalizer,
  1D-FFT, ...);
* level 1 -- *implementation variants* of each type, identified by an
  implementation ID and annotated with the execution target (FPGA, DSP,
  general-purpose processor, ...), a set of QoS attributes and deployment
  metadata (bitstream / opcode size, reconfiguration time, area, power).

Each implementation corresponds to one *case* in CBR terminology; the attribute
set is the case description and the implementation identity (target plus
configuration data in the repository) is the solution.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .attributes import AttributeBounds, AttributeSchema, BoundsTable, Number
from .deltas import CaseBaseDelta, DeltaKind, DeltaLog
from .exceptions import CaseBaseError, DuplicateEntryError, UnknownFunctionTypeError


class ExecutionTarget(enum.Enum):
    """Where an implementation variant executes (paper Fig. 1 / Fig. 3)."""

    FPGA = "fpga"
    DSP = "dsp"
    GPP = "gpp"
    ASIC = "asic"

    @property
    def is_reconfigurable(self) -> bool:
        """Whether deploying this variant requires FPGA reconfiguration."""
        return self is ExecutionTarget.FPGA

    @property
    def is_software(self) -> bool:
        """Whether the variant runs as a software task on a processor."""
        return self in (ExecutionTarget.GPP, ExecutionTarget.DSP)


@dataclass(frozen=True)
class DeploymentInfo:
    """Deployment metadata for one implementation variant.

    These fields are not used by the similarity computation; they feed the
    feasibility check of the allocation manager and the platform substrate
    (bitstream size determines reconfiguration time, area determines slot
    usage, and so on).
    """

    configuration_size_bytes: int = 0
    area_slices: int = 0
    power_mw: float = 0.0
    load_fraction: float = 0.0
    setup_time_us: float = 0.0

    def __post_init__(self) -> None:
        if self.configuration_size_bytes < 0:
            raise CaseBaseError("configuration size must be non-negative")
        if self.area_slices < 0:
            raise CaseBaseError("area must be non-negative")
        if self.power_mw < 0:
            raise CaseBaseError("power must be non-negative")
        if not 0.0 <= self.load_fraction <= 1.0:
            raise CaseBaseError("load fraction must be within [0, 1]")
        if self.setup_time_us < 0:
            raise CaseBaseError("setup time must be non-negative")


@dataclass
class Implementation:
    """One implementation variant (a *case*) of a basic function type.

    Parameters
    ----------
    implementation_id:
        Unique ID of the variant.  The paper allows system-global or
        type-local IDs; this library treats the ID as local to its function
        type and additionally exposes a global ``(type_id, implementation_id)``
        key through :meth:`CaseBase.global_key`.
    target:
        Execution target of the variant.
    attributes:
        Mapping of attribute ID to value -- the QoS description of the case.
    deployment:
        Optional deployment metadata for feasibility checks.
    name:
        Optional human readable label.
    """

    implementation_id: int
    target: ExecutionTarget
    attributes: Dict[int, Number] = field(default_factory=dict)
    deployment: DeploymentInfo = field(default_factory=DeploymentInfo)
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.implementation_id, int) or self.implementation_id <= 0:
            raise CaseBaseError(
                f"implementation ID must be a positive integer, got {self.implementation_id!r}"
            )
        if self.implementation_id >= 1 << 16:
            raise CaseBaseError(
                f"implementation ID {self.implementation_id} does not fit into 16 bits"
            )
        if not isinstance(self.target, ExecutionTarget):
            raise CaseBaseError(f"target must be an ExecutionTarget, got {self.target!r}")
        for attribute_id in self.attributes:
            if not isinstance(attribute_id, int) or attribute_id <= 0:
                raise CaseBaseError(
                    f"attribute IDs must be positive integers, got {attribute_id!r}"
                )

    def attribute_ids(self) -> List[int]:
        """Attribute IDs present in this implementation, in ascending order.

        The ascending order mirrors the pre-sorted list layout of the hardware
        implementation (Fig. 5) and is relied upon by the memory encoders.
        """
        return sorted(self.attributes)

    def sorted_attributes(self) -> List[Tuple[int, Number]]:
        """``(attribute_id, value)`` pairs pre-sorted by attribute ID."""
        return [(attribute_id, self.attributes[attribute_id]) for attribute_id in self.attribute_ids()]

    def get(self, attribute_id: int) -> Optional[Number]:
        """Value of the given attribute, or ``None`` if not described."""
        return self.attributes.get(attribute_id)

    def with_attributes(self, updates: Mapping[int, Number]) -> "Implementation":
        """Return a copy with some attribute values replaced/added."""
        merged = dict(self.attributes)
        merged.update(updates)
        return Implementation(
            implementation_id=self.implementation_id,
            target=self.target,
            attributes=merged,
            deployment=self.deployment,
            name=self.name,
        )


@dataclass
class FunctionType:
    """One basic function type (level-0 node of the implementation tree)."""

    type_id: int
    name: str = ""
    implementations: Dict[int, Implementation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.type_id, int) or self.type_id <= 0:
            raise CaseBaseError(f"function type ID must be a positive integer, got {self.type_id!r}")
        if self.type_id >= 1 << 16:
            raise CaseBaseError(f"function type ID {self.type_id} does not fit into 16 bits")

    def add(self, implementation: Implementation) -> Implementation:
        """Register an implementation variant; duplicate IDs are rejected."""
        if implementation.implementation_id in self.implementations:
            raise DuplicateEntryError(
                f"function type {self.type_id} already has implementation "
                f"{implementation.implementation_id}"
            )
        self.implementations[implementation.implementation_id] = implementation
        return implementation

    def remove(self, implementation_id: int) -> Implementation:
        """Remove and return an implementation variant."""
        try:
            return self.implementations.pop(implementation_id)
        except KeyError as exc:
            raise CaseBaseError(
                f"function type {self.type_id} has no implementation {implementation_id}"
            ) from exc

    def get(self, implementation_id: int) -> Implementation:
        """Look up an implementation variant by ID."""
        try:
            return self.implementations[implementation_id]
        except KeyError as exc:
            raise CaseBaseError(
                f"function type {self.type_id} has no implementation {implementation_id}"
            ) from exc

    def __contains__(self, implementation_id: int) -> bool:
        return implementation_id in self.implementations

    def __len__(self) -> int:
        return len(self.implementations)

    def __iter__(self) -> Iterator[Implementation]:
        return iter(self.sorted_implementations())

    def sorted_implementations(self) -> List[Implementation]:
        """Implementations pre-sorted by implementation ID (hardware list order)."""
        return [self.implementations[key] for key in sorted(self.implementations)]


class CaseBase:
    """The function-implementation tree (case base) queried by retrieval.

    The case base owns the attribute schema describing the attribute IDs that
    may appear in requests and implementations, and can derive (or be given)
    the design-global bounds table used by the similarity computation.
    """

    def __init__(
        self,
        schema: Optional[AttributeSchema] = None,
        bounds: Optional[BoundsTable] = None,
    ) -> None:
        self._types: Dict[int, FunctionType] = {}
        self.schema = schema if schema is not None else AttributeSchema()
        self._bounds = bounds
        #: Monotonically increasing revision counter.  Any structural change
        #: bumps it; bypass tokens snapshot the revision to detect staleness.
        self.revision = 0
        #: Structured mutation log: every revision bump appends one typed
        #: :class:`~repro.core.deltas.CaseBaseDelta`, letting subscribers
        #: (:class:`~repro.core.caching.RevisionTrackedCache` consumers) patch
        #: their derived state incrementally instead of rebuilding.
        self.delta_log = DeltaLog()

    # -- structure manipulation -------------------------------------------------

    def _touch(self, kind: DeltaKind, **payload: object) -> None:
        self.revision += 1
        self.delta_log.record(CaseBaseDelta(revision=self.revision, kind=kind, **payload))

    def add_type(self, function_type: Union[FunctionType, int], name: str = "") -> FunctionType:
        """Register a function type, given either an object or a bare ID."""
        if isinstance(function_type, int):
            function_type = FunctionType(type_id=function_type, name=name)
        if function_type.type_id in self._types:
            raise DuplicateEntryError(f"function type {function_type.type_id} already exists")
        self._types[function_type.type_id] = function_type
        self._touch(
            DeltaKind.ADD_TYPE,
            type_id=function_type.type_id,
            function_type=function_type,
        )
        return function_type

    def add_implementation(
        self, type_id: int, implementation: Implementation
    ) -> Implementation:
        """Add an implementation variant to an existing function type."""
        function_type = self.get_type(type_id)
        result = function_type.add(implementation)
        self._touch(
            DeltaKind.ADD_IMPLEMENTATION,
            type_id=type_id,
            implementation_id=implementation.implementation_id,
            implementation=implementation,
        )
        return result

    def remove_implementation(self, type_id: int, implementation_id: int) -> Implementation:
        """Remove an implementation variant (dynamic case-base update)."""
        function_type = self.get_type(type_id)
        result = function_type.remove(implementation_id)
        self._touch(
            DeltaKind.REMOVE_IMPLEMENTATION,
            type_id=type_id,
            implementation_id=implementation_id,
            previous=result,
        )
        return result

    def remove_type(self, type_id: int) -> FunctionType:
        """Remove a whole function type and all its implementations."""
        try:
            result = self._types.pop(type_id)
        except KeyError as exc:
            raise UnknownFunctionTypeError(type_id) from exc
        self._touch(DeltaKind.REMOVE_TYPE, type_id=type_id, function_type=result)
        return result

    def replace_implementation(
        self, type_id: int, implementation: Implementation
    ) -> Implementation:
        """Replace an existing implementation variant (used by the revise step)."""
        function_type = self.get_type(type_id)
        if implementation.implementation_id not in function_type:
            raise CaseBaseError(
                f"cannot replace implementation {implementation.implementation_id}: "
                f"not present in type {type_id}"
            )
        previous = function_type.implementations[implementation.implementation_id]
        function_type.implementations[implementation.implementation_id] = implementation
        self._touch(
            DeltaKind.REPLACE_IMPLEMENTATION,
            type_id=type_id,
            implementation_id=implementation.implementation_id,
            implementation=implementation,
            previous=previous,
        )
        return implementation

    # -- lookups ---------------------------------------------------------------

    def get_type(self, type_id: int) -> FunctionType:
        """Look up a function type; raise :class:`UnknownFunctionTypeError` if missing."""
        try:
            return self._types[type_id]
        except KeyError as exc:
            raise UnknownFunctionTypeError(type_id) from exc

    def get_implementation(self, type_id: int, implementation_id: int) -> Implementation:
        """Look up one implementation variant."""
        return self.get_type(type_id).get(implementation_id)

    def __contains__(self, type_id: int) -> bool:
        return type_id in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[FunctionType]:
        return iter(self.sorted_types())

    def sorted_types(self) -> List[FunctionType]:
        """Function types pre-sorted by type ID (hardware list order)."""
        return [self._types[key] for key in sorted(self._types)]

    def type_ids(self) -> List[int]:
        """All function type IDs in ascending order."""
        return sorted(self._types)

    def implementations(self, type_id: int) -> List[Implementation]:
        """All implementation variants of a type, pre-sorted by ID."""
        return self.get_type(type_id).sorted_implementations()

    def all_implementations(self) -> Iterator[Tuple[int, Implementation]]:
        """Iterate over ``(type_id, implementation)`` pairs of the whole tree."""
        for function_type in self.sorted_types():
            for implementation in function_type:
                yield function_type.type_id, implementation

    @staticmethod
    def global_key(type_id: int, implementation_id: int) -> int:
        """A system-global identifier combining type and implementation IDs."""
        return (type_id << 16) | implementation_id

    # -- statistics and bounds ---------------------------------------------------

    def attribute_ids(self) -> List[int]:
        """All attribute IDs appearing anywhere in the case base, ascending."""
        ids = set()
        for _, implementation in self.all_implementations():
            ids.update(implementation.attributes)
        return sorted(ids)

    def count_implementations(self) -> int:
        """Total number of implementation variants across all types."""
        return sum(len(function_type) for function_type in self._types.values())

    def count_attributes(self) -> int:
        """Total number of attribute entries across all implementations."""
        return sum(
            len(implementation.attributes)
            for _, implementation in self.all_implementations()
        )

    def derive_bounds(self, extra_observations: Optional[Mapping[int, Sequence[Number]]] = None) -> BoundsTable:
        """Derive the design-global bounds table from the case-base contents.

        ``extra_observations`` can widen the ranges with values expected in
        requests (the paper determines ``max d`` "at design time from all
        attributes of same type given by the implementation library").
        """
        observations: Dict[int, List[Number]] = {}
        for _, implementation in self.all_implementations():
            for attribute_id, value in implementation.attributes.items():
                observations.setdefault(attribute_id, []).append(value)
        if extra_observations:
            for attribute_id, values in extra_observations.items():
                observations.setdefault(attribute_id, []).extend(values)
        return BoundsTable.from_observations(observations)

    @property
    def bounds(self) -> BoundsTable:
        """The bounds table, deriving one from the contents if not set explicitly."""
        if self._bounds is None:
            return self.derive_bounds()
        return self._bounds

    @bounds.setter
    def bounds(self, table: Optional[BoundsTable]) -> None:
        self._bounds = table
        self._touch(DeltaKind.BOUNDS_CHANGED)

    @property
    def has_explicit_bounds(self) -> bool:
        """Whether the bounds table was set explicitly (vs derived on demand).

        Incremental consumers use this to decide whether structural mutations
        can shift the effective bounds: explicit tables only change through
        the ``bounds`` setter (a logged ``BOUNDS_CHANGED`` delta), while
        derived tables may move with any content change.
        """
        return self._bounds is not None

    # -- validation and (de)serialisation ----------------------------------------

    def validate(self) -> None:
        """Check internal consistency (IDs, schema coverage, bounds coverage)."""
        for function_type in self._types.values():
            for implementation in function_type.implementations.values():
                for attribute_id, value in implementation.attributes.items():
                    if len(self.schema) and attribute_id not in self.schema:
                        raise CaseBaseError(
                            f"implementation {implementation.implementation_id} of type "
                            f"{function_type.type_id} uses attribute {attribute_id} "
                            f"which is not in the schema"
                        )
                    if self._bounds is not None and attribute_id in self._bounds:
                        bound = self._bounds.get(attribute_id)
                        if not bound.contains(value):
                            raise CaseBaseError(
                                f"attribute {attribute_id} value {value} of implementation "
                                f"{implementation.implementation_id} (type {function_type.type_id}) "
                                f"is outside the design-global bounds [{bound.lower}, {bound.upper}]"
                            )

    def copy(self) -> "CaseBase":
        """Deep copy of the case base (schema and bounds objects are shared).

        The snapshot's mutation log starts empty, rebased at the copied
        revision: it stays consistent with the duplicated tree (whose
        implementation objects are fresh deep copies, not the ones referenced
        by the source's delta records) and post-copy mutations of the source
        can never leak deltas into the snapshot -- the staleness-snapshot
        idiom (``case_base.copy()`` before mutating) keeps working.
        """
        duplicate = CaseBase(schema=self.schema, bounds=self._bounds)
        duplicate._types = copy.deepcopy(self._types)
        duplicate.revision = self.revision
        duplicate.delta_log = DeltaLog(capacity=self.delta_log.capacity)
        duplicate.delta_log.rebase(self.revision)
        return duplicate

    def to_dict(self) -> Dict[str, object]:
        """Serialise the tree into plain dictionaries (for tooling and tests).

        The attribute schema and -- when explicitly set -- the design-global
        bounds table are included so that a deserialised case base reproduces
        identical similarity values.
        """
        schema_entries = [
            {
                "attribute_id": attribute_type.attribute_id,
                "name": attribute_type.name,
                "unit": attribute_type.unit,
                "symbols": list(attribute_type.symbols),
                "higher_is_better": attribute_type.higher_is_better,
                "description": attribute_type.description,
            }
            for attribute_type in self.schema
        ]
        bounds_entries = None
        if self._bounds is not None:
            bounds_entries = [
                {"attribute_id": bound.attribute_id, "lower": bound.lower, "upper": bound.upper}
                for bound in self._bounds
            ]
        return {
            "schema": schema_entries,
            "bounds": bounds_entries,
            "types": [
                {
                    "type_id": function_type.type_id,
                    "name": function_type.name,
                    "implementations": [
                        {
                            "implementation_id": implementation.implementation_id,
                            "target": implementation.target.value,
                            "name": implementation.name,
                            "attributes": dict(implementation.attributes),
                            "deployment": {
                                "configuration_size_bytes": implementation.deployment.configuration_size_bytes,
                                "area_slices": implementation.deployment.area_slices,
                                "power_mw": implementation.deployment.power_mw,
                                "load_fraction": implementation.deployment.load_fraction,
                                "setup_time_us": implementation.deployment.setup_time_us,
                            },
                        }
                        for implementation in function_type.sorted_implementations()
                    ],
                }
                for function_type in self.sorted_types()
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object], schema: Optional[AttributeSchema] = None) -> "CaseBase":
        """Rebuild a case base from :meth:`to_dict` output.

        An explicit ``schema`` argument overrides the serialised schema (useful
        when the caller already holds the platform-wide schema object).
        """
        if schema is None and data.get("schema"):
            from .attributes import AttributeType

            schema = AttributeSchema(
                AttributeType(
                    attribute_id=int(entry["attribute_id"]),
                    name=str(entry["name"]),
                    unit=str(entry.get("unit", "")),
                    symbols=tuple(entry.get("symbols", ())),
                    higher_is_better=bool(entry.get("higher_is_better", True)),
                    description=str(entry.get("description", "")),
                )
                for entry in data["schema"]  # type: ignore[union-attr]
            )
        bounds = None
        if data.get("bounds"):
            bounds = BoundsTable(
                AttributeBounds(int(entry["attribute_id"]), entry["lower"], entry["upper"])
                for entry in data["bounds"]  # type: ignore[union-attr]
            )
        case_base = cls(schema=schema, bounds=bounds)
        for type_entry in data.get("types", []):  # type: ignore[union-attr]
            function_type = case_base.add_type(
                int(type_entry["type_id"]), name=str(type_entry.get("name", ""))
            )
            for impl_entry in type_entry.get("implementations", []):
                deployment_entry = impl_entry.get("deployment", {})
                implementation = Implementation(
                    implementation_id=int(impl_entry["implementation_id"]),
                    target=ExecutionTarget(impl_entry["target"]),
                    name=str(impl_entry.get("name", "")),
                    attributes={int(k): v for k, v in impl_entry.get("attributes", {}).items()},
                    deployment=DeploymentInfo(
                        configuration_size_bytes=int(deployment_entry.get("configuration_size_bytes", 0)),
                        area_slices=int(deployment_entry.get("area_slices", 0)),
                        power_mw=float(deployment_entry.get("power_mw", 0.0)),
                        load_fraction=float(deployment_entry.get("load_fraction", 0.0)),
                        setup_time_us=float(deployment_entry.get("setup_time_us", 0.0)),
                    ),
                )
                function_type.add(implementation)
        return case_base
