"""Amalgamation functions combining local similarities (paper section 2.2, eq. 2).

An amalgamation function maps the vector of local similarities -- a point in
the n-dimensional unit cube ``[0, 1]^n`` -- back onto a scalar global
similarity in ``[0, 1]``.  The paper requires monotonicity in every argument
and the boundary conditions ``S(0, ..., 0) = 0`` and ``S(1, ..., 1) = 1``, and
chooses the weighted sum

    S_global(s_1, ..., s_n) = sum_i  w_i * s_i,   with  sum_i w_i = 1    (eq. 2)

Alternative amalgamations (minimum, maximum, weighted geometric mean) are
provided for the metric-comparison experiment (E9) and for applications that
want "worst constraint dominates" semantics.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .exceptions import RetrievalError


class AmalgamationFunction:
    """Interface: combine weighted local similarities into a global similarity."""

    name = "abstract"

    def combine(self, similarities: Sequence[float], weights: Sequence[float]) -> float:
        """Combine local similarities (each in ``[0, 1]``) using the given weights.

        ``weights`` are expected to be non-negative; implementations that need
        normalised weights normalise internally so callers may pass raw
        weights.
        """
        raise NotImplementedError

    @staticmethod
    def _validate(similarities: Sequence[float], weights: Sequence[float]) -> None:
        if len(similarities) != len(weights):
            raise RetrievalError(
                f"similarity/weight length mismatch: {len(similarities)} vs {len(weights)}"
            )
        if not similarities:
            raise RetrievalError("cannot amalgamate an empty similarity vector")
        if any(weight < 0 for weight in weights):
            raise RetrievalError("weights must be non-negative")

    @staticmethod
    def _normalised_weights(weights: Sequence[float]) -> List[float]:
        total = sum(weights)
        if total <= 0:
            raise RetrievalError("weights must not all be zero")
        return [weight / total for weight in weights]


class WeightedSum(AmalgamationFunction):
    """The weighted sum of eq. 2 -- the paper's choice."""

    name = "weighted_sum"

    def combine(self, similarities: Sequence[float], weights: Sequence[float]) -> float:
        self._validate(similarities, weights)
        normalised = self._normalised_weights(weights)
        return float(sum(w * s for w, s in zip(normalised, similarities)))


class MinimumAmalgamation(AmalgamationFunction):
    """Global similarity is the worst local similarity (hard-constraint style).

    Weights only matter in that zero-weight attributes are ignored.
    """

    name = "minimum"

    def combine(self, similarities: Sequence[float], weights: Sequence[float]) -> float:
        self._validate(similarities, weights)
        considered = [s for s, w in zip(similarities, weights) if w > 0]
        if not considered:
            raise RetrievalError("all weights are zero")
        return float(min(considered))


class MaximumAmalgamation(AmalgamationFunction):
    """Global similarity is the best local similarity (any-match semantics)."""

    name = "maximum"

    def combine(self, similarities: Sequence[float], weights: Sequence[float]) -> float:
        self._validate(similarities, weights)
        considered = [s for s, w in zip(similarities, weights) if w > 0]
        if not considered:
            raise RetrievalError("all weights are zero")
        return float(max(considered))


class WeightedGeometricMean(AmalgamationFunction):
    """Weighted geometric mean; punishes single very poor matches more than eq. 2."""

    name = "geometric_mean"

    def combine(self, similarities: Sequence[float], weights: Sequence[float]) -> float:
        self._validate(similarities, weights)
        normalised = self._normalised_weights(weights)
        product = 0.0
        for similarity, weight in zip(similarities, normalised):
            if similarity <= 0.0:
                if weight > 0.0:
                    return 0.0
                continue
            product += weight * math.log(similarity)
        return float(math.exp(product))


#: Registry used by configuration files and the benchmark sweeps.
AMALGAMATIONS: Dict[str, AmalgamationFunction] = {
    function.name: function
    for function in (
        WeightedSum(),
        MinimumAmalgamation(),
        MaximumAmalgamation(),
        WeightedGeometricMean(),
    )
}


def get_amalgamation(name: str) -> AmalgamationFunction:
    """Look up a registered amalgamation function by name."""
    try:
        return AMALGAMATIONS[name]
    except KeyError as exc:
        raise RetrievalError(
            f"unknown amalgamation function {name!r}; known: {sorted(AMALGAMATIONS)}"
        ) from exc


def verify_amalgamation_properties(
    function: AmalgamationFunction,
    dimension: int = 3,
    samples: int = 64,
    seed: int = 0,
) -> bool:
    """Check the paper's required properties on random samples.

    Verifies (a) range containment in ``[0, 1]``, (b) the boundary conditions
    ``S(0,...,0) = 0`` and ``S(1,...,1) = 1`` and (c) monotonicity in every
    argument, on a deterministic pseudo-random sample set.  Used by tests and
    by the property-based suite as a convenient oracle.
    """
    import random

    rng = random.Random(seed)
    weights = [1.0 / dimension] * dimension
    zero = function.combine([0.0] * dimension, weights)
    one = function.combine([1.0] * dimension, weights)
    if abs(zero) > 1e-9 or abs(one - 1.0) > 1e-9:
        return False
    for _ in range(samples):
        vector = [rng.random() for _ in range(dimension)]
        value = function.combine(vector, weights)
        if not -1e-9 <= value <= 1.0 + 1e-9:
            return False
        index = rng.randrange(dimension)
        bumped = list(vector)
        bumped[index] = min(1.0, bumped[index] + rng.random() * (1.0 - bumped[index]))
        if function.combine(bumped, weights) < value - 1e-9:
            return False
    return True
