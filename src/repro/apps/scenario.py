"""Multi-application allocation scenario (the system of paper Fig. 1 end to end).

:func:`build_scenario` assembles the whole stack -- platform devices, run-time
controllers, configuration repository, allocation manager, Application-API and
the four example applications -- and :class:`ScenarioRunner` replays the
applications' timed request traces against it, releasing functions when their
hold time expires.  The allocation-flow experiment (E10) and the
``multi_app_platform`` example are thin wrappers around this module.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..allocation.manager import AllocationManager
from ..allocation.negotiation import QoSNegotiator
from ..api.application_api import ApplicationAPI, FunctionHandle
from ..api.hw_layer_api import HwLayerAPI
from ..core.case_base import CaseBase
from ..hardware.retrieval_unit import HardwareConfig
from ..platform.fpga import virtex2_3000_fpga
from ..platform.processor import audio_dsp, host_cpu
from ..platform.repository import ConfigurationRepository
from ..platform.resource_state import SystemResourceState
from ..platform.runtime_controller import LocalRuntimeController
from .automotive_ecu import AutomotiveEcuWorkload
from .cruise_control import CruiseControlWorkload
from .mp3_player import Mp3PlayerWorkload
from .schema import platform_bounds, platform_schema
from .video import VideoPlayerWorkload
from .workloads import ApplicationWorkload, ScenarioEvent, ScenarioResult


def default_workloads() -> List[ApplicationWorkload]:
    """The four applications of Fig. 1."""
    return [
        Mp3PlayerWorkload(),
        VideoPlayerWorkload(),
        AutomotiveEcuWorkload(),
        CruiseControlWorkload(),
    ]


def build_case_base(workloads: Optional[Sequence[ApplicationWorkload]] = None) -> CaseBase:
    """Platform-wide case base contributed by the given workloads."""
    workloads = list(workloads) if workloads is not None else default_workloads()
    case_base = CaseBase(schema=platform_schema(), bounds=platform_bounds())
    for workload in workloads:
        workload.contribute(case_base)
    case_base.validate()
    return case_base


def build_platform(
    *, fpga_count: int = 2, power_budget_mw: Optional[float] = 3500.0
) -> SystemResourceState:
    """The multi-device platform: FPGAs, a host CPU and an audio/video DSP."""
    controllers = [
        LocalRuntimeController(virtex2_3000_fpga(f"fpga{index}"))
        for index in range(fpga_count)
    ]
    controllers.append(LocalRuntimeController(host_cpu("cpu0")))
    controllers.append(LocalRuntimeController(audio_dsp("dsp0")))
    return SystemResourceState(controllers, power_budget_mw=power_budget_mw)


@dataclass
class Scenario:
    """Everything needed to run the multi-application scenario."""

    case_base: CaseBase
    system: SystemResourceState
    repository: ConfigurationRepository
    manager: AllocationManager
    application_api: ApplicationAPI
    hw_layer_api: HwLayerAPI
    workloads: List[ApplicationWorkload]


def build_scenario(
    *,
    fpga_count: int = 2,
    n_candidates: int = 3,
    similarity_threshold: float = 0.3,
    retrieval_backend: str = "reference",
    hardware_config: Optional[HardwareConfig] = None,
    cycle_engine: str = "auto",
    power_budget_mw: Optional[float] = 3500.0,
    workloads: Optional[Sequence[ApplicationWorkload]] = None,
) -> Scenario:
    """Assemble the full Fig.-1 stack with the example applications registered.

    ``cycle_engine`` selects how the ``"hardware"`` retrieval backend executes
    the cycle-accurate unit (``"auto"``/``"vectorized"``/``"stepwise"``); it
    is ignored by the reference backends.
    """
    workload_list = list(workloads) if workloads is not None else default_workloads()
    case_base = build_case_base(workload_list)
    system = build_platform(fpga_count=fpga_count, power_budget_mw=power_budget_mw)
    repository = ConfigurationRepository.from_case_base(case_base)
    manager = AllocationManager(
        case_base,
        system,
        repository=repository,
        negotiator=QoSNegotiator(),
        n_candidates=n_candidates,
        similarity_threshold=similarity_threshold,
        retrieval_backend=retrieval_backend,
        hardware_config=hardware_config,
        cycle_engine=cycle_engine,
    )
    application_api = ApplicationAPI(manager)
    hw_layer_api = HwLayerAPI(system, repository)
    for workload in workload_list:
        application_api.register_application(workload.name, workload.policy())
    return Scenario(
        case_base=case_base,
        system=system,
        repository=repository,
        manager=manager,
        application_api=application_api,
        hw_layer_api=hw_layer_api,
        workloads=workload_list,
    )


class ScenarioRunner:
    """Replays the applications' request traces against an assembled scenario."""

    def __init__(self, scenario: Scenario, *, seed: int = 2004) -> None:
        self.scenario = scenario
        self.seed = seed

    def run(self, duration_us: float = 4_000_000.0) -> ScenarioResult:
        """Run the scenario for ``duration_us`` of simulated time."""
        rng = random.Random(self.seed)
        api = self.scenario.application_api
        result = ScenarioResult()
        # Gather all requests of all applications into one time-ordered stream.
        stream: List[Tuple[float, int, ApplicationWorkload, object]] = []
        for workload in self.scenario.workloads:
            for index, request in enumerate(workload.requests(rng, duration_us)):
                stream.append((request.issue_time_us, len(stream), workload, request))
        stream.sort(key=lambda item: (item[0], item[1]))
        # Min-heap of (release_time, sequence, handle) for automatic releases.
        releases: List[Tuple[float, int, FunctionHandle]] = []
        sequence = 0
        for issue_time, _, workload, request in stream:
            # Release everything whose hold time expired before this request.
            while releases and releases[0][0] <= issue_time:
                _, _, expired = heapq.heappop(releases)
                if not expired.released:
                    api.release(expired)
            handle = api.call_function(
                workload.name,
                request.type_id,
                request.constraints,
                weights=request.weights or None,
                now_us=issue_time,
            )
            decision = handle.decision
            result.events.append(
                ScenarioEvent(
                    time_us=issue_time,
                    application=workload.name,
                    request=request,
                    succeeded=decision.succeeded,
                    status=decision.status.value,
                    device=decision.device_name,
                    similarity=decision.similarity,
                    used_bypass=decision.used_bypass,
                )
            )
            if decision.succeeded and not decision.used_bypass:
                sequence += 1
                heapq.heappush(
                    releases, (issue_time + request.hold_time_us, sequence, handle)
                )
        # Drain the remaining releases so the platform ends the run empty.
        while releases:
            _, _, expired = heapq.heappop(releases)
            if not expired.released:
                api.release(expired)
        return result
