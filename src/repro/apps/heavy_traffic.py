"""Synthetic heavy-traffic workload (the ROADMAP's "millions of users" mix).

Unlike the four Fig.-1 applications, this workload contributes no function
types of its own: it models an aggregated front-end (many concurrent client
sessions multiplexed onto the platform) that hammers the types the base
applications already brought to the case base.  It exists to drive the
serving layer's micro-batching scheduler and admission control at rates the
periodic per-application schedules never reach.

Arrivals follow a Poisson process (exponential inter-arrival times) with a
configurable mean; each arrival picks one of the platform's request templates
with realistic constraint jitter.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple, Union

from ..allocation.negotiation import ApplicationPolicy
from ..core.attributes import Number
from ..core.case_base import CaseBase
from .schema import (
    TYPE_CAN_FILTER,
    TYPE_FIR_EQUALIZER,
    TYPE_MP3_DECODER,
    TYPE_PID_CONTROLLER,
    TYPE_SENSOR_FUSION,
    TYPE_VIDEO_DECODER,
    TYPE_VIDEO_SCALER,
)
from .workloads import ApplicationWorkload, WorkloadRequest

#: Request templates: (type_id, constraint choices, weights, hold time, note).
#: Constraint values given as a sequence are sampled uniformly per request.
_TEMPLATES: List[Tuple[int, Dict[str, Union[Number, str, Sequence]], Dict[str, float], float, str]] = [
    (TYPE_MP3_DECODER,
     {"bitwidth": 16, "sampling_rate": (44, 48), "bitrate_kbps": (128, 192, 256),
      "output_mode": "stereo"},
     {}, 40_000.0, "stream session"),
    (TYPE_FIR_EQUALIZER,
     {"bitwidth": 16, "output_mode": ("stereo", "surround"), "sampling_rate": (40, 44)},
     {}, 30_000.0, "equalizer hop"),
    (TYPE_VIDEO_DECODER,
     {"frame_rate": (24, 30, 60), "resolution_lines": (480, 720, 1080), "bitwidth": 16},
     {"frame_rate": 2.0, "resolution_lines": 1.0, "bitwidth": 0.5}, 60_000.0, "clip start"),
    (TYPE_VIDEO_SCALER,
     {"frame_rate": (24, 30), "resolution_lines": (480, 720)},
     {}, 25_000.0, "thumbnail scale"),
    (TYPE_CAN_FILTER,
     {"bitwidth": 16, "response_deadline_ms": (2, 5), "channel_count": (4, 6, 8)},
     {"response_deadline_ms": 2.0}, 20_000.0, "gateway burst"),
    (TYPE_PID_CONTROLLER,
     {"control_period_ms": (5, 10, 20), "response_deadline_ms": (5, 10), "bitwidth": 16},
     {"control_period_ms": 2.0}, 35_000.0, "loop retune"),
    (TYPE_SENSOR_FUSION,
     {"bitwidth": 16, "response_deadline_ms": 8, "control_period_ms": (5, 10),
      "channel_count": 4},
     {"response_deadline_ms": 2.0, "control_period_ms": 2.0}, 45_000.0, "fusion restart"),
]


def request_templates() -> List[Tuple[int, Dict, Dict, float, str]]:
    """The synthetic traffic templates (shared with the fleet-failover mix)."""
    return list(_TEMPLATES)


class HeavyTrafficWorkload(ApplicationWorkload):
    """High-rate synthetic request mix over the platform's existing types.

    Parameters
    ----------
    mean_interarrival_us:
        Mean of the exponential inter-arrival distribution.  The default of
        2 ms sustains ~500 requests per second of simulated time -- two
        orders of magnitude above the periodic application schedules.
    """

    name = "heavy-traffic"

    def __init__(self, mean_interarrival_us: float = 2_000.0) -> None:
        if mean_interarrival_us <= 0:
            raise ValueError("mean_interarrival_us must be positive")
        self.mean_interarrival_us = mean_interarrival_us

    def policy(self) -> ApplicationPolicy:
        """Aggregated traffic takes whatever quality it can get, immediately."""
        return ApplicationPolicy(
            minimum_similarity=0.3,
            accept_preemption=True,
            max_relaxations=0,
        )

    def contribute(self, case_base: CaseBase) -> None:
        """Contributes nothing: the mix targets the base applications' types.

        Build the case base with :func:`repro.apps.default_workloads` (or any
        set that includes the referenced types) and add this workload purely
        as a request source.
        """

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        requests: List[WorkloadRequest] = []
        time = rng.expovariate(1.0 / self.mean_interarrival_us)
        while time < duration_us:
            type_id, choices, weights, hold_time_us, note = _TEMPLATES[
                rng.randrange(len(_TEMPLATES))
            ]
            constraints = {
                name: rng.choice(value) if isinstance(value, tuple) else value
                for name, value in choices.items()
            }
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=type_id,
                constraints=constraints,
                weights=dict(weights),
                hold_time_us=hold_time_us,
                note=note,
            ))
            time += rng.expovariate(1.0 / self.mean_interarrival_us)
        return requests
