"""Video-playback application workload (Application 2 of paper Fig. 1).

Video decoding and scaling are the area- and bandwidth-hungry functions of the
scenario: the FPGA variants deliver full frame rate and resolution but occupy
several reconfigurable slots, so they compete with the other applications for
FPGA area and force the allocation manager into alternative or preemption
decisions under load.
"""

from __future__ import annotations

import random
from typing import List

from ..allocation.negotiation import ApplicationPolicy
from ..core.case_base import CaseBase, DeploymentInfo, ExecutionTarget, Implementation
from .schema import (
    ATTR_BITWIDTH,
    ATTR_FRAME_RATE,
    ATTR_PROCESSING_MODE,
    ATTR_RESOLUTION_LINES,
    ATTR_RESPONSE_DEADLINE_MS,
    TYPE_VIDEO_DECODER,
    TYPE_VIDEO_SCALER,
)
from .workloads import ApplicationWorkload, WorkloadRequest


class VideoPlayerWorkload(ApplicationWorkload):
    """Video playback: decoder plus scaler requests with high area demand."""

    name = "video-player"

    def policy(self) -> ApplicationPolicy:
        """Video accepts frame-rate/resolution degradation rather than failing."""
        return ApplicationPolicy(
            minimum_similarity=0.55,
            accept_preemption=True,
            relaxation_factors={ATTR_FRAME_RATE: 0.5, ATTR_RESOLUTION_LINES: 0.5},
            max_relaxations=2,
        )

    def contribute(self, case_base: CaseBase) -> None:
        decoder = case_base.add_type(TYPE_VIDEO_DECODER, name="Video Decoder")
        decoder.add(Implementation(
            1, ExecutionTarget.FPGA, name="FPGA video decoder",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0, ATTR_FRAME_RATE: 30,
                        ATTR_RESOLUTION_LINES: 576, ATTR_RESPONSE_DEADLINE_MS: 33},
            deployment=DeploymentInfo(configuration_size_bytes=210_000, area_slices=3100,
                                      power_mw=700.0, setup_time_us=4200.0),
        ))
        decoder.add(Implementation(
            2, ExecutionTarget.DSP, name="DSP video decoder",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 1, ATTR_FRAME_RATE: 25,
                        ATTR_RESOLUTION_LINES: 480, ATTR_RESPONSE_DEADLINE_MS: 40},
            deployment=DeploymentInfo(configuration_size_bytes=26_000, power_mw=380.0,
                                      load_fraction=0.6, setup_time_us=600.0),
        ))
        decoder.add(Implementation(
            3, ExecutionTarget.GPP, name="Software video decoder",
            attributes={ATTR_BITWIDTH: 8, ATTR_PROCESSING_MODE: 0, ATTR_FRAME_RATE: 15,
                        ATTR_RESOLUTION_LINES: 288, ATTR_RESPONSE_DEADLINE_MS: 66},
            deployment=DeploymentInfo(configuration_size_bytes=14_000, power_mw=240.0,
                                      load_fraction=0.7, setup_time_us=200.0),
        ))

        scaler = case_base.add_type(TYPE_VIDEO_SCALER, name="Video Scaler")
        scaler.add(Implementation(
            1, ExecutionTarget.FPGA, name="FPGA video scaler",
            attributes={ATTR_BITWIDTH: 16, ATTR_FRAME_RATE: 30, ATTR_RESOLUTION_LINES: 576},
            deployment=DeploymentInfo(configuration_size_bytes=88_000, area_slices=1400,
                                      power_mw=320.0, setup_time_us=2600.0),
        ))
        scaler.add(Implementation(
            2, ExecutionTarget.GPP, name="Software video scaler",
            attributes={ATTR_BITWIDTH: 8, ATTR_FRAME_RATE: 12, ATTR_RESOLUTION_LINES: 288},
            deployment=DeploymentInfo(configuration_size_bytes=6_000, power_mw=160.0,
                                      load_fraction=0.35, setup_time_us=100.0),
        ))

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        requests: List[WorkloadRequest] = []
        # A playback session starts every ~1.2 s and holds its decoder ~900 ms.
        for time in self._periodic_times(rng, duration_us, 1_200_000.0, 150_000.0):
            resolution = rng.choice([480, 576])
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=TYPE_VIDEO_DECODER,
                constraints={
                    "bitwidth": 16,
                    "frame_rate": rng.choice([25, 30]),
                    "resolution_lines": resolution,
                    "response_deadline_ms": 40,
                },
                weights={"frame_rate": 2.0, "resolution_lines": 2.0,
                         "bitwidth": 1.0, "response_deadline_ms": 1.0},
                hold_time_us=900_000.0,
                note="playback session",
            ))
            # The scaler is requested shortly after the decoder of each session.
            requests.append(WorkloadRequest(
                issue_time_us=time + 20_000.0,
                type_id=TYPE_VIDEO_SCALER,
                constraints={"frame_rate": 25, "resolution_lines": resolution},
                hold_time_us=850_000.0,
                note="display scaling",
            ))
        return sorted(requests, key=lambda request: request.issue_time_us)
