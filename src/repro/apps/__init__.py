"""Example application workload models and the multi-application scenario."""

from .automotive_ecu import AutomotiveEcuWorkload
from .cruise_control import CruiseControlWorkload
from .fleet_failover import (
    FleetFailoverWorkload,
    apply_failover_outages,
    default_outage_plan,
)
from .heavy_traffic import HeavyTrafficWorkload
from .hugecb import HugeCaseBaseWorkload
from .mp3_player import Mp3PlayerWorkload
from .schema import (
    ATTR_BITRATE_KBPS,
    ATTR_BITWIDTH,
    ATTR_CHANNEL_COUNT,
    ATTR_CONTROL_PERIOD_MS,
    ATTR_FRAME_RATE,
    ATTR_OUTPUT_MODE,
    ATTR_PROCESSING_MODE,
    ATTR_RESOLUTION_LINES,
    ATTR_RESPONSE_DEADLINE_MS,
    ATTR_SAMPLING_RATE,
    TYPE_CAN_FILTER,
    TYPE_FFT_1D,
    TYPE_FIR_EQUALIZER,
    TYPE_MP3_DECODER,
    TYPE_PID_CONTROLLER,
    TYPE_SENSOR_FUSION,
    TYPE_VIDEO_DECODER,
    TYPE_VIDEO_SCALER,
    platform_bounds,
    platform_schema,
)
from .scenario import (
    Scenario,
    ScenarioRunner,
    build_case_base,
    build_platform,
    build_scenario,
    default_workloads,
)
from .video import VideoPlayerWorkload
from .workloads import (
    ApplicationWorkload,
    ScenarioEvent,
    ScenarioResult,
    WorkloadRequest,
)

__all__ = [
    "ATTR_BITRATE_KBPS",
    "ATTR_BITWIDTH",
    "ATTR_CHANNEL_COUNT",
    "ATTR_CONTROL_PERIOD_MS",
    "ATTR_FRAME_RATE",
    "ATTR_OUTPUT_MODE",
    "ATTR_PROCESSING_MODE",
    "ATTR_RESOLUTION_LINES",
    "ATTR_RESPONSE_DEADLINE_MS",
    "ATTR_SAMPLING_RATE",
    "ApplicationWorkload",
    "AutomotiveEcuWorkload",
    "CruiseControlWorkload",
    "FleetFailoverWorkload",
    "HeavyTrafficWorkload",
    "HugeCaseBaseWorkload",
    "Mp3PlayerWorkload",
    "Scenario",
    "ScenarioEvent",
    "ScenarioResult",
    "ScenarioRunner",
    "TYPE_CAN_FILTER",
    "TYPE_FFT_1D",
    "TYPE_FIR_EQUALIZER",
    "TYPE_MP3_DECODER",
    "TYPE_PID_CONTROLLER",
    "TYPE_SENSOR_FUSION",
    "TYPE_VIDEO_DECODER",
    "TYPE_VIDEO_SCALER",
    "VideoPlayerWorkload",
    "WorkloadRequest",
    "apply_failover_outages",
    "build_case_base",
    "build_platform",
    "build_scenario",
    "default_outage_plan",
    "default_workloads",
    "platform_bounds",
    "platform_schema",
]
