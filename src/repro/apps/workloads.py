"""Workload framework for the example applications (paper Fig. 1, top layer).

An :class:`ApplicationWorkload` bundles three things:

* the function types and implementation variants the application brings to the
  platform-wide case base (:meth:`ApplicationWorkload.contribute`);
* the application's negotiation policy (minimum acceptable similarity,
  tolerance for preemption, relaxation behaviour);
* a generator of timed, QoS-constrained function requests
  (:meth:`ApplicationWorkload.requests`), used by the allocation-scenario
  experiment (E10) and the multi-application example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..allocation.negotiation import ApplicationPolicy
from ..core.attributes import Number
from ..core.case_base import CaseBase


@dataclass(frozen=True)
class WorkloadRequest:
    """One timed function request issued by an application."""

    issue_time_us: float
    type_id: int
    constraints: Dict[str, Union[Number, str]]
    weights: Dict[str, float] = field(default_factory=dict)
    hold_time_us: float = 50_000.0
    note: str = ""


class ApplicationWorkload:
    """Base class of the example application workload models."""

    #: Application name used as the requester identity.
    name: str = "application"

    def policy(self) -> ApplicationPolicy:
        """The application's QoS negotiation policy (overridden by subclasses)."""
        return ApplicationPolicy()

    def contribute(self, case_base: CaseBase) -> None:
        """Add this application's function types and variants to the case base.

        Implementations must be idempotent-safe only in the sense that they are
        called exactly once per scenario build; duplicate type IDs across
        applications are allowed as long as only one application contributes
        them (the scenario builder enforces this).
        """
        raise NotImplementedError

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        """Generate the timed request sequence for one scenario run."""
        raise NotImplementedError

    # -- helpers shared by the concrete workloads -----------------------------------

    @staticmethod
    def _periodic_times(
        rng: random.Random, duration_us: float, period_us: float, jitter_us: float
    ) -> List[float]:
        """Periodic issue times with bounded uniform jitter."""
        times: List[float] = []
        time = rng.uniform(0.0, period_us * 0.25)
        while time < duration_us:
            times.append(time + rng.uniform(-jitter_us, jitter_us))
            time += period_us
        return [max(0.0, t) for t in times]


@dataclass
class ScenarioEvent:
    """One event of a scenario run (request issued and its outcome)."""

    time_us: float
    application: str
    request: WorkloadRequest
    succeeded: bool
    status: str
    device: Optional[str]
    similarity: Optional[float]
    used_bypass: bool


@dataclass
class ScenarioResult:
    """Aggregated outcome of one scenario run."""

    events: List[ScenarioEvent] = field(default_factory=list)

    @property
    def request_count(self) -> int:
        """Total number of requests issued."""
        return len(self.events)

    @property
    def success_count(self) -> int:
        """Requests that ended with a usable allocation."""
        return sum(1 for event in self.events if event.succeeded)

    @property
    def success_rate(self) -> float:
        """Fraction of requests served."""
        if not self.events:
            return 0.0
        return self.success_count / self.request_count

    @property
    def bypass_count(self) -> int:
        """Requests served directly from bypass tokens."""
        return sum(1 for event in self.events if event.used_bypass)

    def per_application(self) -> Dict[str, Tuple[int, int]]:
        """``{application: (requests, successes)}``."""
        summary: Dict[str, Tuple[int, int]] = {}
        for event in self.events:
            requests, successes = summary.get(event.application, (0, 0))
            summary[event.application] = (
                requests + 1,
                successes + (1 if event.succeeded else 0),
            )
        return summary

    def per_device(self) -> Dict[str, int]:
        """Number of successful placements per device."""
        summary: Dict[str, int] = {}
        for event in self.events:
            if event.succeeded and event.device is not None:
                summary[event.device] = summary.get(event.device, 0) + 1
        return summary
