"""MP3-player application workload (Application 1 of paper Fig. 1).

The player needs an MP3 decoder and the paper's FIR-equalizer function.  Both
exist as FPGA, DSP and plain-software variants with different achievable
quality (sampling rate, output mode, bitrate), so the allocation manager can
trade quality against platform load at run time.
"""

from __future__ import annotations

import random
from typing import List

from ..allocation.negotiation import ApplicationPolicy
from ..core.case_base import CaseBase, DeploymentInfo, ExecutionTarget, Implementation
from .schema import (
    ATTR_BITRATE_KBPS,
    ATTR_BITWIDTH,
    ATTR_OUTPUT_MODE,
    ATTR_PROCESSING_MODE,
    ATTR_SAMPLING_RATE,
    TYPE_FIR_EQUALIZER,
    TYPE_MP3_DECODER,
)
from .workloads import ApplicationWorkload, WorkloadRequest


class Mp3PlayerWorkload(ApplicationWorkload):
    """Audio playback: periodic decoder and equalizer requests."""

    name = "mp3-player"

    def policy(self) -> ApplicationPolicy:
        """Audio quality matters, but playback may fall back to stereo/lower rates."""
        return ApplicationPolicy(
            minimum_similarity=0.6,
            accept_preemption=False,
            relaxation_factors={ATTR_SAMPLING_RATE: 0.5, ATTR_BITRATE_KBPS: 0.5},
            max_relaxations=1,
        )

    def contribute(self, case_base: CaseBase) -> None:
        equalizer = case_base.add_type(TYPE_FIR_EQUALIZER, name="FIR Equalizer")
        equalizer.add(Implementation(
            1, ExecutionTarget.FPGA, name="FPGA FIR equalizer",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0, ATTR_OUTPUT_MODE: 2,
                        ATTR_SAMPLING_RATE: 44},
            deployment=DeploymentInfo(configuration_size_bytes=96_000, area_slices=1200,
                                      power_mw=450.0, setup_time_us=2800.0),
        ))
        equalizer.add(Implementation(
            2, ExecutionTarget.DSP, name="DSP FIR equalizer",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0, ATTR_OUTPUT_MODE: 1,
                        ATTR_SAMPLING_RATE: 44},
            deployment=DeploymentInfo(configuration_size_bytes=12_000, power_mw=300.0,
                                      load_fraction=0.35, setup_time_us=400.0),
        ))
        equalizer.add(Implementation(
            3, ExecutionTarget.GPP, name="Software FIR equalizer",
            attributes={ATTR_BITWIDTH: 8, ATTR_PROCESSING_MODE: 0, ATTR_OUTPUT_MODE: 0,
                        ATTR_SAMPLING_RATE: 22},
            deployment=DeploymentInfo(configuration_size_bytes=4_000, power_mw=180.0,
                                      load_fraction=0.55, setup_time_us=120.0),
        ))

        decoder = case_base.add_type(TYPE_MP3_DECODER, name="MP3 Decoder")
        decoder.add(Implementation(
            1, ExecutionTarget.FPGA, name="FPGA MP3 decoder",
            attributes={ATTR_BITWIDTH: 24, ATTR_PROCESSING_MODE: 1, ATTR_OUTPUT_MODE: 1,
                        ATTR_SAMPLING_RATE: 48, ATTR_BITRATE_KBPS: 320},
            deployment=DeploymentInfo(configuration_size_bytes=140_000, area_slices=1700,
                                      power_mw=520.0, setup_time_us=3200.0),
        ))
        decoder.add(Implementation(
            2, ExecutionTarget.DSP, name="DSP MP3 decoder",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 1, ATTR_OUTPUT_MODE: 1,
                        ATTR_SAMPLING_RATE: 44, ATTR_BITRATE_KBPS: 256},
            deployment=DeploymentInfo(configuration_size_bytes=18_000, power_mw=280.0,
                                      load_fraction=0.4, setup_time_us=500.0),
        ))
        decoder.add(Implementation(
            3, ExecutionTarget.GPP, name="Software MP3 decoder",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0, ATTR_OUTPUT_MODE: 1,
                        ATTR_SAMPLING_RATE: 32, ATTR_BITRATE_KBPS: 128},
            deployment=DeploymentInfo(configuration_size_bytes=9_000, power_mw=200.0,
                                      load_fraction=0.45, setup_time_us=150.0),
        ))

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        requests: List[WorkloadRequest] = []
        # A decode session starts every ~400 ms and runs for ~300 ms.
        for time in self._periodic_times(rng, duration_us, 400_000.0, 40_000.0):
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=TYPE_MP3_DECODER,
                constraints={
                    "bitwidth": 16,
                    "sampling_rate": rng.choice([44, 48]),
                    "bitrate_kbps": rng.choice([128, 192, 256]),
                    "output_mode": "stereo",
                },
                hold_time_us=300_000.0,
                note="decode session",
            ))
        # The equalizer is engaged roughly half as often and held shorter.
        for time in self._periodic_times(rng, duration_us, 800_000.0, 60_000.0):
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=TYPE_FIR_EQUALIZER,
                constraints={
                    "bitwidth": 16,
                    "output_mode": rng.choice(["stereo", "surround"]),
                    "sampling_rate": 40,
                },
                hold_time_us=250_000.0,
                note="equalizer stage",
            ))
        return sorted(requests, key=lambda request: request.issue_time_us)
