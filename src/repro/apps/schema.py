"""Shared QoS attribute schema of the example applications.

The paper's example (Fig. 3) uses four audio-centric attributes; the example
applications of Fig. 1 (MP3 player, video decoder, automotive ECU, cruise
control) need a few more.  This module defines one platform-wide schema so all
applications, the case base and the memory encoders agree on the attribute IDs.

Attribute values must be 16-bit unsigned integers in the memory-mapped
encoding, so real-valued quantities are expressed in integer units (frames per
second, milliseconds, kilobits per second, ...).
"""

from __future__ import annotations

from ..core.attributes import AttributeSchema, BoundsTable

#: Attribute IDs of the platform schema (IDs 1-4 match the paper's example).
ATTR_BITWIDTH = 1
ATTR_PROCESSING_MODE = 2
ATTR_OUTPUT_MODE = 3
ATTR_SAMPLING_RATE = 4
ATTR_FRAME_RATE = 5
ATTR_RESOLUTION_LINES = 6
ATTR_RESPONSE_DEADLINE_MS = 7
ATTR_BITRATE_KBPS = 8
ATTR_CONTROL_PERIOD_MS = 9
ATTR_CHANNEL_COUNT = 10


def platform_schema() -> AttributeSchema:
    """The shared attribute schema of the multi-application platform."""
    schema = AttributeSchema()
    schema.define(ATTR_BITWIDTH, "bitwidth", unit="bit",
                  description="processing bitwidth of the implementation")
    schema.define(ATTR_PROCESSING_MODE, "processing_mode",
                  symbols=("integer", "fixed", "float"),
                  description="arithmetic processing mode")
    schema.define(ATTR_OUTPUT_MODE, "output_mode",
                  symbols=("mono", "stereo", "surround"),
                  description="audio output mode")
    schema.define(ATTR_SAMPLING_RATE, "sampling_rate", unit="kSamples/s",
                  description="audio sampling rate")
    schema.define(ATTR_FRAME_RATE, "frame_rate", unit="frames/s",
                  description="video frame rate")
    schema.define(ATTR_RESOLUTION_LINES, "resolution_lines", unit="lines",
                  description="vertical video resolution")
    schema.define(ATTR_RESPONSE_DEADLINE_MS, "response_deadline_ms", unit="ms",
                  higher_is_better=False,
                  description="worst-case response deadline of the function")
    schema.define(ATTR_BITRATE_KBPS, "bitrate_kbps", unit="kbit/s",
                  description="stream bitrate the function sustains")
    schema.define(ATTR_CONTROL_PERIOD_MS, "control_period_ms", unit="ms",
                  higher_is_better=False,
                  description="control-loop period of control-oriented functions")
    schema.define(ATTR_CHANNEL_COUNT, "channel_count", unit="channels",
                  description="number of parallel channels processed")
    return schema


def platform_bounds() -> BoundsTable:
    """Design-global bounds of the platform schema (supplemental-list contents)."""
    bounds = BoundsTable()
    bounds.define(ATTR_BITWIDTH, 8, 32)
    bounds.define(ATTR_PROCESSING_MODE, 0, 2)
    bounds.define(ATTR_OUTPUT_MODE, 0, 2)
    bounds.define(ATTR_SAMPLING_RATE, 8, 96)
    bounds.define(ATTR_FRAME_RATE, 5, 60)
    bounds.define(ATTR_RESOLUTION_LINES, 120, 1080)
    bounds.define(ATTR_RESPONSE_DEADLINE_MS, 1, 500)
    bounds.define(ATTR_BITRATE_KBPS, 32, 8000)
    bounds.define(ATTR_CONTROL_PERIOD_MS, 1, 100)
    bounds.define(ATTR_CHANNEL_COUNT, 1, 8)
    return bounds


#: Function type IDs used by the example applications.
TYPE_FIR_EQUALIZER = 1
TYPE_FFT_1D = 2
TYPE_MP3_DECODER = 3
TYPE_VIDEO_DECODER = 4
TYPE_VIDEO_SCALER = 5
TYPE_CAN_FILTER = 6
TYPE_PID_CONTROLLER = 7
TYPE_SENSOR_FUSION = 8
