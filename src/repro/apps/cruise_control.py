"""Cruise-control application workload (Application 4 of paper Fig. 1).

Cruise control uses the shared PID-controller and sensor-fusion function types.
Its requests are sparse (engage/disengage events) but strict: the controller
must meet its control period, so the policy sets a high minimum similarity and
does not relax.
"""

from __future__ import annotations

import random
from typing import List

from ..allocation.negotiation import ApplicationPolicy
from ..core.case_base import CaseBase, DeploymentInfo, ExecutionTarget, Implementation
from .schema import (
    ATTR_BITWIDTH,
    ATTR_CONTROL_PERIOD_MS,
    ATTR_PROCESSING_MODE,
    ATTR_RESPONSE_DEADLINE_MS,
    TYPE_PID_CONTROLLER,
    TYPE_SENSOR_FUSION,
)
from .workloads import ApplicationWorkload, WorkloadRequest


class CruiseControlWorkload(ApplicationWorkload):
    """Speed regulation: PID controller requests at drive events."""

    name = "cruise-control"

    def policy(self) -> ApplicationPolicy:
        """The control loop cannot be degraded: high threshold, no relaxation."""
        return ApplicationPolicy(
            minimum_similarity=0.8,
            accept_preemption=True,
            relaxation_factors={},
            max_relaxations=0,
        )

    def contribute(self, case_base: CaseBase) -> None:
        controller = case_base.add_type(TYPE_PID_CONTROLLER, name="PID Controller")
        controller.add(Implementation(
            1, ExecutionTarget.FPGA, name="FPGA PID controller",
            attributes={ATTR_BITWIDTH: 24, ATTR_PROCESSING_MODE: 1,
                        ATTR_CONTROL_PERIOD_MS: 1, ATTR_RESPONSE_DEADLINE_MS: 1},
            deployment=DeploymentInfo(configuration_size_bytes=30_000, area_slices=450,
                                      power_mw=140.0, setup_time_us=1200.0),
        ))
        controller.add(Implementation(
            2, ExecutionTarget.GPP, name="Software PID controller",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0,
                        ATTR_CONTROL_PERIOD_MS: 10, ATTR_RESPONSE_DEADLINE_MS: 10},
            deployment=DeploymentInfo(configuration_size_bytes=2_000, power_mw=70.0,
                                      load_fraction=0.15, setup_time_us=60.0),
        ))

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        requests: List[WorkloadRequest] = []
        # Cruise control engages every ~2 s of scenario time and stays engaged ~1.5 s.
        for time in self._periodic_times(rng, duration_us, 2_000_000.0, 300_000.0):
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=TYPE_PID_CONTROLLER,
                constraints={
                    "bitwidth": 16,
                    "control_period_ms": rng.choice([1, 5]),
                    "response_deadline_ms": 5,
                },
                weights={"control_period_ms": 2.0, "response_deadline_ms": 2.0, "bitwidth": 1.0},
                hold_time_us=1_500_000.0,
                note="cruise engaged",
            ))
            # Engaging cruise control also refreshes the shared sensor-fusion function.
            requests.append(WorkloadRequest(
                issue_time_us=time + 10_000.0,
                type_id=TYPE_SENSOR_FUSION,
                constraints={
                    "bitwidth": 16,
                    "response_deadline_ms": 10,
                    "control_period_ms": 10,
                },
                hold_time_us=1_400_000.0,
                note="fusion refresh",
            ))
        return sorted(requests, key=lambda request: request.issue_time_us)
