"""Fleet-failover workload: phased traffic around device outages.

The cluster serving layer routes retrieval traffic across a fleet of
reconfigurable devices; this workload exercises the failure mode that layer
exists to absorb -- a hardware device dropping out mid-stream (full
reconfiguration, maintenance, a fault) while traffic keeps arriving.  The
request mix reuses the heavy-traffic templates but arrives in three phases:

1. **steady** -- moderate Poisson load the fleet handles comfortably;
2. **burst** -- an elevated arrival rate covering the window in which
   :func:`default_outage_plan` takes the hardware devices offline one at a
   time (staggered, so the fleet degrades gracefully instead of failing
   flat); traffic shed by the unavailable devices degrades to the software
   workers or queues behind the reconfiguration stream;
3. **recovery** -- the steady rate again, draining the queued backlog.

The workload itself only generates requests (like every
:class:`~repro.apps.workloads.ApplicationWorkload`); the outage windows are
applied to a :class:`~repro.platform.fleet.DeviceFleet` by
:func:`apply_failover_outages`, which the ``repro serve-cluster`` CLI invokes
automatically when this workload is part of the replayed mix.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..allocation.negotiation import ApplicationPolicy
from ..core.case_base import CaseBase
from .heavy_traffic import request_templates
from .workloads import ApplicationWorkload, WorkloadRequest

#: Phase boundaries as fractions of the trace duration.
BURST_START_FRACTION = 1.0 / 3.0
BURST_END_FRACTION = 2.0 / 3.0


class FleetFailoverWorkload(ApplicationWorkload):
    """Phased request mix bracketing a staggered hardware-device outage.

    Parameters
    ----------
    mean_interarrival_us:
        Mean Poisson inter-arrival time of the steady and recovery phases.
    burst_interarrival_us:
        Mean inter-arrival time of the burst phase (must be faster).
    """

    name = "fleet-failover"

    def __init__(
        self,
        mean_interarrival_us: float = 1_500.0,
        burst_interarrival_us: float = 400.0,
    ) -> None:
        if mean_interarrival_us <= 0 or burst_interarrival_us <= 0:
            raise ValueError("inter-arrival means must be positive")
        if burst_interarrival_us > mean_interarrival_us:
            raise ValueError("the burst phase must arrive faster than the steady phase")
        self.mean_interarrival_us = mean_interarrival_us
        self.burst_interarrival_us = burst_interarrival_us

    def policy(self) -> ApplicationPolicy:
        """Failover traffic accepts degraded quality rather than waiting."""
        return ApplicationPolicy(
            minimum_similarity=0.3,
            accept_preemption=True,
            max_relaxations=0,
        )

    def contribute(self, case_base: CaseBase) -> None:
        """Contributes nothing: the mix targets the base applications' types."""

    def _mean_at(self, time_us: float, duration_us: float) -> float:
        if (
            BURST_START_FRACTION * duration_us
            <= time_us
            < BURST_END_FRACTION * duration_us
        ):
            return self.burst_interarrival_us
        return self.mean_interarrival_us

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        templates = request_templates()
        requests: List[WorkloadRequest] = []
        time = rng.expovariate(1.0 / self.mean_interarrival_us)
        while time < duration_us:
            type_id, choices, weights, hold_time_us, note = templates[
                rng.randrange(len(templates))
            ]
            constraints = {
                name: rng.choice(value) if isinstance(value, tuple) else value
                for name, value in choices.items()
            }
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=type_id,
                constraints=constraints,
                weights=dict(weights),
                hold_time_us=hold_time_us,
                note=note,
            ))
            time += rng.expovariate(1.0 / self._mean_at(time, duration_us))
        return requests


def default_outage_plan(
    worker_names: Sequence[str], duration_us: float
) -> List[Tuple[str, float, float]]:
    """Staggered outage windows inside the burst phase, one per worker.

    The burst third of the trace is split evenly across the given workers;
    each worker is down for its slice, so at most one of them is offline at
    any time and the fleet keeps serving throughout.
    """
    names = list(worker_names)
    if not names or duration_us <= 0:
        return []
    burst_start = BURST_START_FRACTION * duration_us
    burst_length = (BURST_END_FRACTION - BURST_START_FRACTION) * duration_us
    slice_us = burst_length / len(names)
    return [
        (name, burst_start + index * slice_us, burst_start + (index + 1) * slice_us)
        for index, name in enumerate(names)
    ]


def apply_failover_outages(fleet, duration_us: float) -> List[Tuple[str, float, float]]:
    """Schedule the default outage plan on a fleet's hardware workers."""
    plan = default_outage_plan(
        [worker.name for worker in fleet.hardware_workers], duration_us
    )
    for name, start_us, end_us in plan:
        fleet.worker(name).add_outage(start_us, end_us)
    return plan
