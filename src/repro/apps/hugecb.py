"""Huge-case-base workload (the ISSUE 10 "million implementations" driver).

The Fig.-1 applications contribute a few dozen implementation variants; this
workload bolts a bulk-synthesized implementation library onto the platform
case base -- :class:`~repro.tools.CaseBaseGenerator` types with thousands of
implementations each, streamed in via
:meth:`~repro.tools.CaseBaseGenerator.iter_implementations` -- and issues
Poisson request traffic against those types.  It exists to exercise the
out-of-core serving stack at scale: the two-stage bounds pre-filter
(``--prefilter bounds``) only engages on types with at least
:attr:`~repro.core.backends.VectorizedBackend.PREFILTER_MIN_ROWS`
implementations, and the persistent memmap images only pay off when
re-encoding the case base is expensive.

The synthetic types and attributes live in reserved ID ranges
(:attr:`HugeCaseBaseWorkload.TYPE_ID_BASE`,
:attr:`HugeCaseBaseWorkload.ATTRIBUTE_ID_BASE`) so they can never collide
with the platform schema of :mod:`repro.apps.schema`.  Because the workload
*extends* the case base's schema in :meth:`HugeCaseBaseWorkload.contribute`,
its constraint names only resolve through that extended schema -- build
traces with :meth:`repro.serving.ServingSpec.build_trace` (which passes the
served case base's schema through) or call
:func:`repro.serving.trace_from_workloads` with ``schema=case_base.schema``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

from ..allocation.negotiation import ApplicationPolicy
from ..core.case_base import CaseBase
from ..core.exceptions import ReproError
from ..tools.casebase_gen import CaseBaseGenerator, GeneratorSpec
from .workloads import ApplicationWorkload, WorkloadRequest


class HugeCaseBaseWorkload(ApplicationWorkload):
    """Bulk-synthesized implementation library plus matching request traffic.

    Parameters
    ----------
    implementations:
        Total implementation count contributed to the case base, split evenly
        over ``types`` function types.  The default of 100 000 puts every
        type above the vectorized backend's pre-filter engagement threshold.
    types:
        Number of synthetic function types (IDs ``TYPE_ID_BASE + 1 ..``).
    attributes:
        Synthetic QoS attributes per implementation (IDs
        ``ATTRIBUTE_ID_BASE + 1 ..``); every implementation carries all of
        them, which keeps the per-type attribute matrices dense.
    seed:
        Generator seed; the contributed library and the request trace are
        deterministic functions of it.
    mean_interarrival_us:
        Mean of the exponential request inter-arrival distribution.
    """

    name = "huge-casebase"

    #: Synthetic type IDs start above this base (platform types are 1..8).
    TYPE_ID_BASE = 1000
    #: Synthetic attribute IDs start above this base (platform uses 1..10).
    ATTRIBUTE_ID_BASE = 100

    #: Constraints per generated request (a partial query, like real traffic).
    CONSTRAINTS_PER_REQUEST = 3

    def __init__(
        self,
        implementations: int = 100_000,
        types: int = 8,
        attributes: int = 10,
        seed: int = 77,
        mean_interarrival_us: float = 5_000.0,
    ) -> None:
        if implementations <= 0 or types <= 0:
            raise ReproError("implementation and type counts must be positive")
        if implementations % types:
            raise ReproError(
                f"{implementations} implementations do not split evenly over "
                f"{types} types"
            )
        per_type = implementations // types
        if per_type > 0xFFFF:
            raise ReproError(
                f"{per_type} implementations per type exceed the 16-bit "
                f"implementation-ID range"
            )
        if self.TYPE_ID_BASE + types > 0xFFFF:
            raise ReproError(
                f"{types} types exceed the 16-bit type-ID range above "
                f"base {self.TYPE_ID_BASE}"
            )
        if mean_interarrival_us <= 0:
            raise ReproError("mean_interarrival_us must be positive")
        self.seed = seed
        self.mean_interarrival_us = mean_interarrival_us
        self.spec = GeneratorSpec(
            type_count=types,
            implementations_per_type=per_type,
            attributes_per_implementation=attributes,
            attribute_type_count=attributes,
        )

    def policy(self) -> ApplicationPolicy:
        """Bulk lookups take what they get; retries are the client's problem."""
        return ApplicationPolicy(
            minimum_similarity=0.2,
            accept_preemption=True,
            max_relaxations=0,
        )

    def contribute(self, case_base: CaseBase) -> None:
        """Stream the synthetic library into the platform case base.

        Extends ``case_base.schema`` (and its explicit bounds table, when
        present) with the reserved-range synthetic attributes, then adds the
        generated types one implementation at a time -- the whole library is
        never materialised as a second :class:`CaseBase`.
        """
        low, high = self.spec.value_range
        for attribute_id in range(1, self.spec.attribute_type_count + 1):
            shifted = self.ATTRIBUTE_ID_BASE + attribute_id
            if shifted not in case_base.schema:
                case_base.schema.define(
                    shifted,
                    self._attribute_name(attribute_id),
                    description="bulk synthetic QoS attribute",
                )
            if case_base.has_explicit_bounds and shifted not in case_base.bounds:
                case_base.bounds.define(shifted, low, high)
        generator = CaseBaseGenerator(self.spec, seed=self.seed)
        function_type = None
        for type_id, _type_name, implementation in generator.iter_implementations():
            shifted_type = self.TYPE_ID_BASE + type_id
            if function_type is None or function_type.type_id != shifted_type:
                function_type = case_base.add_type(
                    shifted_type, name=f"bulk-function-{type_id}"
                )
            function_type.add(dataclasses.replace(
                implementation,
                attributes={
                    self.ATTRIBUTE_ID_BASE + attribute_id: value
                    for attribute_id, value in implementation.attributes.items()
                },
            ))

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        low, high = self.spec.value_range
        count = min(self.CONSTRAINTS_PER_REQUEST, self.spec.attribute_type_count)
        requests: List[WorkloadRequest] = []
        time = rng.expovariate(1.0 / self.mean_interarrival_us)
        while time < duration_us:
            attribute_ids = sorted(
                rng.sample(range(1, self.spec.attribute_type_count + 1), count)
            )
            constraints = {
                self._attribute_name(attribute_id): rng.randint(low, high)
                for attribute_id in attribute_ids
            }
            weights = {
                name: rng.choice([1.0, 1.0, 2.0]) for name in constraints
            }
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=self.TYPE_ID_BASE + rng.randint(1, self.spec.type_count),
                constraints=constraints,
                weights=weights,
                hold_time_us=20_000.0,
                note="bulk lookup",
            ))
            time += rng.expovariate(1.0 / self.mean_interarrival_us)
        return requests

    @classmethod
    def _attribute_name(cls, attribute_id: int) -> str:
        """Schema name of the ``attribute_id``-th synthetic attribute."""
        return f"synthetic_attribute_{attribute_id}"
