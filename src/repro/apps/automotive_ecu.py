"""Automotive-ECU application workload (Application 3 of paper Fig. 1).

The paper's own prior work targets "automotive control applications with soft
time and security constraints".  The ECU workload issues frequent, short
control-oriented requests (CAN message filtering, sensor fusion) whose QoS
attributes emphasise response deadlines rather than media quality, and whose
negotiation policy refuses to be preempted.
"""

from __future__ import annotations

import random
from typing import List

from ..allocation.negotiation import ApplicationPolicy
from ..core.case_base import CaseBase, DeploymentInfo, ExecutionTarget, Implementation
from .schema import (
    ATTR_BITWIDTH,
    ATTR_CHANNEL_COUNT,
    ATTR_CONTROL_PERIOD_MS,
    ATTR_PROCESSING_MODE,
    ATTR_RESPONSE_DEADLINE_MS,
    TYPE_CAN_FILTER,
    TYPE_SENSOR_FUSION,
)
from .workloads import ApplicationWorkload, WorkloadRequest


class AutomotiveEcuWorkload(ApplicationWorkload):
    """Body/engine control: CAN filtering and sensor fusion with tight deadlines."""

    name = "automotive-ecu"

    def policy(self) -> ApplicationPolicy:
        """Control functions insist on deadlines and never accept preemption."""
        return ApplicationPolicy(
            minimum_similarity=0.7,
            accept_preemption=False,
            relaxation_factors={ATTR_CHANNEL_COUNT: 0.5},
            max_relaxations=1,
        )

    def contribute(self, case_base: CaseBase) -> None:
        can_filter = case_base.add_type(TYPE_CAN_FILTER, name="CAN Message Filter")
        can_filter.add(Implementation(
            1, ExecutionTarget.FPGA, name="FPGA CAN filter",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0,
                        ATTR_RESPONSE_DEADLINE_MS: 2, ATTR_CHANNEL_COUNT: 8},
            deployment=DeploymentInfo(configuration_size_bytes=42_000, area_slices=600,
                                      power_mw=180.0, setup_time_us=1500.0),
        ))
        can_filter.add(Implementation(
            2, ExecutionTarget.GPP, name="Software CAN filter",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0,
                        ATTR_RESPONSE_DEADLINE_MS: 10, ATTR_CHANNEL_COUNT: 4},
            deployment=DeploymentInfo(configuration_size_bytes=3_000, power_mw=90.0,
                                      load_fraction=0.2, setup_time_us=80.0),
        ))

        fusion = case_base.add_type(TYPE_SENSOR_FUSION, name="Sensor Fusion")
        fusion.add(Implementation(
            1, ExecutionTarget.FPGA, name="FPGA sensor fusion",
            attributes={ATTR_BITWIDTH: 24, ATTR_PROCESSING_MODE: 1,
                        ATTR_RESPONSE_DEADLINE_MS: 5, ATTR_CONTROL_PERIOD_MS: 5,
                        ATTR_CHANNEL_COUNT: 6},
            deployment=DeploymentInfo(configuration_size_bytes=64_000, area_slices=900,
                                      power_mw=260.0, setup_time_us=1900.0),
        ))
        fusion.add(Implementation(
            2, ExecutionTarget.DSP, name="DSP sensor fusion",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 1,
                        ATTR_RESPONSE_DEADLINE_MS: 8, ATTR_CONTROL_PERIOD_MS: 10,
                        ATTR_CHANNEL_COUNT: 4},
            deployment=DeploymentInfo(configuration_size_bytes=11_000, power_mw=170.0,
                                      load_fraction=0.3, setup_time_us=300.0),
        ))
        fusion.add(Implementation(
            3, ExecutionTarget.GPP, name="Software sensor fusion",
            attributes={ATTR_BITWIDTH: 16, ATTR_PROCESSING_MODE: 0,
                        ATTR_RESPONSE_DEADLINE_MS: 20, ATTR_CONTROL_PERIOD_MS: 20,
                        ATTR_CHANNEL_COUNT: 2},
            deployment=DeploymentInfo(configuration_size_bytes=5_000, power_mw=110.0,
                                      load_fraction=0.3, setup_time_us=90.0),
        ))

    def requests(self, rng: random.Random, duration_us: float) -> List[WorkloadRequest]:
        requests: List[WorkloadRequest] = []
        # CAN filtering is (re)configured every ~250 ms when the bus profile changes.
        for time in self._periodic_times(rng, duration_us, 250_000.0, 20_000.0):
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=TYPE_CAN_FILTER,
                constraints={
                    "bitwidth": 16,
                    "response_deadline_ms": rng.choice([2, 5]),
                    "channel_count": rng.choice([4, 6, 8]),
                },
                weights={"response_deadline_ms": 2.0, "channel_count": 1.0, "bitwidth": 0.5},
                hold_time_us=200_000.0,
                note="bus profile switch",
            ))
        # Sensor fusion restarts every ~600 ms (drive mode changes).
        for time in self._periodic_times(rng, duration_us, 600_000.0, 50_000.0):
            requests.append(WorkloadRequest(
                issue_time_us=time,
                type_id=TYPE_SENSOR_FUSION,
                constraints={
                    "bitwidth": 16,
                    "response_deadline_ms": 8,
                    "control_period_ms": rng.choice([5, 10]),
                    "channel_count": 4,
                },
                weights={"response_deadline_ms": 2.0, "control_period_ms": 2.0,
                         "bitwidth": 1.0, "channel_count": 1.0},
                hold_time_us=450_000.0,
                note="drive mode change",
            ))
        return sorted(requests, key=lambda request: request.issue_time_us)
