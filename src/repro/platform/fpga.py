"""Run-time reconfigurable FPGA devices with a slot-based area model.

The paper's earlier work ([7] in its reference list) organises the FPGA into
fixed module slots that are swapped by partial run-time reconfiguration.  The
model here follows that scheme: an :class:`FpgaDevice` exposes a number of
equally sized slots; a hardware implementation occupies one or more contiguous
slots depending on its ``area_slices`` deployment figure, and becomes usable
only after the reconfiguration port has streamed its bitstream (timing handled
by :mod:`repro.platform.reconfiguration`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.case_base import Implementation
from ..core.exceptions import PlatformError
from .device import Device, DeviceKind, PlacedTask


@dataclass(frozen=True)
class SlotSpec:
    """Geometry of one FPGA's partial-reconfiguration slots."""

    slot_count: int
    slices_per_slot: int

    def __post_init__(self) -> None:
        if self.slot_count <= 0 or self.slices_per_slot <= 0:
            raise PlatformError("slot geometry must be positive")

    @property
    def total_slices(self) -> int:
        """Total reconfigurable slices across all slots."""
        return self.slot_count * self.slices_per_slot

    def slots_needed(self, area_slices: int) -> int:
        """Number of contiguous slots an implementation of that area occupies."""
        if area_slices <= 0:
            return 1
        return math.ceil(area_slices / self.slices_per_slot)


class FpgaDevice(Device):
    """A partially reconfigurable FPGA with fixed module slots."""

    kind = DeviceKind.FPGA

    def __init__(
        self,
        name: str,
        slots: SlotSpec,
        *,
        idle_power_mw: float = 150.0,
        static_region_slices: int = 0,
    ) -> None:
        super().__init__(name, idle_power_mw=idle_power_mw)
        self.slots = slots
        #: Slices of the static region (run-time system, bus macros, retrieval unit).
        self.static_region_slices = static_region_slices
        #: slot index -> handle of the task occupying it (None = free).
        self._slot_owner: List[Optional[int]] = [None] * slots.slot_count
        #: handle -> (first slot, slot count)
        self._placements: Dict[int, Tuple[int, int]] = {}

    # -- capacity -------------------------------------------------------------------

    def free_slots(self) -> int:
        """Number of currently unoccupied slots."""
        return sum(1 for owner in self._slot_owner if owner is None)

    def _find_contiguous(self, count: int) -> Optional[int]:
        """First index of a run of ``count`` free slots, or ``None``."""
        run = 0
        for index, owner in enumerate(self._slot_owner):
            run = run + 1 if owner is None else 0
            if run >= count:
                return index - count + 1
        return None

    def has_capacity_for(self, implementation: Implementation) -> bool:
        """Whether enough contiguous slots are free for this implementation."""
        if not self.can_host(implementation):
            return False
        needed = self.slots.slots_needed(implementation.deployment.area_slices)
        if needed > self.slots.slot_count:
            return False
        return self._find_contiguous(needed) is not None

    def utilization(self) -> float:
        """Fraction of slots currently occupied."""
        return 1.0 - self.free_slots() / self.slots.slot_count

    # -- placement ------------------------------------------------------------------

    def place(self, task: PlacedTask) -> PlacedTask:
        needed = self.slots.slots_needed(task.implementation.deployment.area_slices)
        first = self._find_contiguous(needed)
        if first is None:
            raise PlatformError(
                f"{self.name}: no {needed} contiguous free slots for handle {task.handle}"
            )
        super().place(task)
        for slot in range(first, first + needed):
            self._slot_owner[slot] = task.handle
        self._placements[task.handle] = (first, needed)
        task.area_slices = task.implementation.deployment.area_slices
        return task

    def remove(self, handle: int) -> PlacedTask:
        task = super().remove(handle)
        first, count = self._placements.pop(handle)
        for slot in range(first, first + count):
            self._slot_owner[slot] = None
        return task

    def placement(self, handle: int) -> Tuple[int, int]:
        """``(first slot, slot count)`` of a placed task."""
        try:
            return self._placements[handle]
        except KeyError as exc:
            raise PlatformError(f"{self.name} has no placement for handle {handle}") from exc

    def slot_map(self) -> List[Optional[int]]:
        """Copy of the slot-occupancy map (handle or ``None`` per slot)."""
        return list(self._slot_owner)


def virtex2_3000_fpga(name: str = "fpga0", slot_count: int = 8) -> FpgaDevice:
    """An XC2V3000-like device: 14336 slices, a static region and equal slots.

    Roughly 2000 slices are reserved for the static run-time system (bus
    macros, controllers and the 441-slice retrieval unit); the remainder is
    split into ``slot_count`` partial-reconfiguration slots.
    """
    static_slices = 2000
    reconfigurable = 14336 - static_slices
    return FpgaDevice(
        name,
        SlotSpec(slot_count=slot_count, slices_per_slot=reconfigurable // slot_count),
        static_region_slices=static_slices,
    )
