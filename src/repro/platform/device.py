"""Execution devices of the reconfigurable platform (paper Fig. 1).

The platform of Fig. 1 consists of one or more run-time reconfigurable FPGAs,
optional dedicated hardware (DSPs, ASICs) and a general-purpose CPU, each with
its own local run-time controller.  This module defines the common device
interface; the concrete FPGA and processor models live in
:mod:`repro.platform.fpga` and :mod:`repro.platform.processor`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.case_base import ExecutionTarget, Implementation
from ..core.exceptions import PlatformError


class DeviceKind(enum.Enum):
    """Kinds of execution devices on the platform."""

    FPGA = "fpga"
    DSP = "dsp"
    CPU = "cpu"
    ASIC = "asic"

    def supports(self, target: ExecutionTarget) -> bool:
        """Whether an implementation targeting ``target`` can run on this device."""
        mapping = {
            DeviceKind.FPGA: {ExecutionTarget.FPGA},
            DeviceKind.DSP: {ExecutionTarget.DSP},
            DeviceKind.CPU: {ExecutionTarget.GPP},
            DeviceKind.ASIC: {ExecutionTarget.ASIC},
        }
        return target in mapping[self]


@dataclass
class PlacedTask:
    """One function implementation currently instantiated on a device."""

    handle: int
    type_id: int
    implementation: Implementation
    requester: str = ""
    #: Area actually occupied (slices for FPGAs, 0 for processors).
    area_slices: int = 0
    #: Processor load fraction consumed (0 for FPGA placements).
    load_fraction: float = 0.0
    #: Power drawn by the task in milliwatts.
    power_mw: float = 0.0
    #: Simulation time at which the task was placed (microseconds).
    placed_at_us: float = 0.0
    #: Whether the task may be preempted to make room for others.
    preemptible: bool = True


class Device:
    """Base class of all execution devices."""

    kind: DeviceKind = DeviceKind.CPU

    def __init__(self, name: str, *, idle_power_mw: float = 0.0) -> None:
        if not name:
            raise PlatformError("device needs a non-empty name")
        self.name = name
        self.idle_power_mw = idle_power_mw
        self._tasks: Dict[int, PlacedTask] = {}

    # -- capacity interface (overridden by subclasses) ------------------------------

    def can_host(self, implementation: Implementation) -> bool:
        """Whether the implementation could ever run here (target compatibility)."""
        return self.kind.supports(implementation.target)

    def has_capacity_for(self, implementation: Implementation) -> bool:
        """Whether the implementation fits *right now* (no preemption)."""
        raise NotImplementedError

    def utilization(self) -> float:
        """Current utilisation in ``[0, 1]`` of the device's dominant resource."""
        raise NotImplementedError

    # -- task management -------------------------------------------------------------

    def tasks(self) -> List[PlacedTask]:
        """Currently placed tasks."""
        return list(self._tasks.values())

    def task(self, handle: int) -> PlacedTask:
        """Look up one placed task by its handle."""
        try:
            return self._tasks[handle]
        except KeyError as exc:
            raise PlatformError(f"device {self.name} has no task with handle {handle}") from exc

    def __contains__(self, handle: int) -> bool:
        return handle in self._tasks

    def place(self, task: PlacedTask) -> PlacedTask:
        """Place a task (capacity must have been checked by the caller)."""
        if task.handle in self._tasks:
            raise PlatformError(f"handle {task.handle} already placed on {self.name}")
        if not self.can_host(task.implementation):
            raise PlatformError(
                f"device {self.name} ({self.kind.value}) cannot host a "
                f"{task.implementation.target.value} implementation"
            )
        self._tasks[task.handle] = task
        return task

    def remove(self, handle: int) -> PlacedTask:
        """Remove a task and free its resources."""
        try:
            return self._tasks.pop(handle)
        except KeyError as exc:
            raise PlatformError(f"device {self.name} has no task with handle {handle}") from exc

    def power_mw(self) -> float:
        """Current power draw: idle power plus the placed tasks' power."""
        return self.idle_power_mw + sum(task.power_mw for task in self._tasks.values())

    def preemption_candidates(self) -> List[PlacedTask]:
        """Placed tasks that may be preempted, least recently placed first."""
        return sorted(
            (task for task in self._tasks.values() if task.preemptible),
            key=lambda task: task.placed_at_us,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r}, tasks={len(self._tasks)})"
