"""Processor devices (general-purpose CPU and DSP) hosting software tasks.

Software implementation variants consume a *load fraction* of their processor
(the ``load_fraction`` field of :class:`repro.core.DeploymentInfo`); a
processor can host tasks until its accumulated load reaches a configurable
limit (1.0 by default, lower if headroom must be kept for the operating
system).
"""

from __future__ import annotations

from typing import Optional

from ..core.case_base import Implementation
from ..core.exceptions import PlatformError
from .device import Device, DeviceKind, PlacedTask


class ProcessorDevice(Device):
    """A processor (CPU or DSP) hosting sequential software tasks."""

    def __init__(
        self,
        name: str,
        kind: DeviceKind,
        *,
        load_limit: float = 1.0,
        clock_mhz: float = 300.0,
        idle_power_mw: float = 80.0,
    ) -> None:
        if kind not in (DeviceKind.CPU, DeviceKind.DSP):
            raise PlatformError("ProcessorDevice kind must be CPU or DSP")
        if not 0.0 < load_limit <= 1.0:
            raise PlatformError("load limit must lie within (0, 1]")
        super().__init__(name, idle_power_mw=idle_power_mw)
        self.kind = kind
        self.load_limit = load_limit
        self.clock_mhz = clock_mhz

    def current_load(self) -> float:
        """Accumulated load fraction of all placed tasks."""
        return sum(task.load_fraction for task in self.tasks())

    def has_capacity_for(self, implementation: Implementation) -> bool:
        """Whether the implementation's load fraction still fits under the limit."""
        if not self.can_host(implementation):
            return False
        return (
            self.current_load() + implementation.deployment.load_fraction
            <= self.load_limit + 1e-9
        )

    def utilization(self) -> float:
        """Load relative to the configured limit."""
        return min(1.0, self.current_load() / self.load_limit)

    def place(self, task: PlacedTask) -> PlacedTask:
        load = task.implementation.deployment.load_fraction
        if self.current_load() + load > self.load_limit + 1e-9:
            raise PlatformError(
                f"{self.name}: load limit {self.load_limit:.2f} exceeded by handle {task.handle}"
            )
        super().place(task)
        task.load_fraction = load
        return task


def host_cpu(name: str = "cpu0", load_limit: float = 0.85) -> ProcessorDevice:
    """The platform's general-purpose host CPU (keeps OS headroom)."""
    return ProcessorDevice(name, DeviceKind.CPU, load_limit=load_limit, clock_mhz=400.0)


def audio_dsp(name: str = "dsp0", load_limit: float = 1.0) -> ProcessorDevice:
    """A dedicated audio/video DSP co-processor."""
    return ProcessorDevice(
        name, DeviceKind.DSP, load_limit=load_limit, clock_mhz=250.0, idle_power_mw=60.0
    )
