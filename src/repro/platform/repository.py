"""Opcode/bitstream repository (the FLASH block of paper Fig. 1).

"Since every available function realization has a unique identifier it will be
possible to retrieve the function's corresponding configuration data (CPU
opcode / FPGA bitstream) from a global function repository for
reconfiguration."  The repository stores one configuration artefact per
``(function type, implementation)`` pair and models the read latency of the
backing flash memory, which adds to the deployment time of an allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.case_base import CaseBase, ExecutionTarget, Implementation
from ..core.exceptions import PlatformError


class ConfigurationKind(enum.Enum):
    """Kinds of configuration artefacts stored in the repository."""

    BITSTREAM = "bitstream"
    OPCODE = "opcode"

    @classmethod
    def for_target(cls, target: ExecutionTarget) -> "ConfigurationKind":
        """The artefact kind an execution target needs."""
        return cls.BITSTREAM if target is ExecutionTarget.FPGA else cls.OPCODE


@dataclass(frozen=True)
class ConfigurationEntry:
    """One stored configuration artefact."""

    type_id: int
    implementation_id: int
    kind: ConfigurationKind
    size_bytes: int
    version: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise PlatformError("configuration size must be non-negative")


@dataclass
class RepositoryStatistics:
    """Access counters of the repository."""

    fetches: int = 0
    bytes_read: int = 0
    stores: int = 0


class ConfigurationRepository:
    """Flash-backed store of bitstreams and opcode images.

    Parameters
    ----------
    read_bandwidth_mb_s:
        Sustained flash read bandwidth used to derive fetch latencies.
    """

    def __init__(self, read_bandwidth_mb_s: float = 20.0) -> None:
        if read_bandwidth_mb_s <= 0:
            raise PlatformError("read bandwidth must be positive")
        self.read_bandwidth_mb_s = read_bandwidth_mb_s
        self._entries: Dict[Tuple[int, int], ConfigurationEntry] = {}
        self.statistics = RepositoryStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries

    def store(self, entry: ConfigurationEntry) -> ConfigurationEntry:
        """Store (or replace) one configuration artefact."""
        self._entries[(entry.type_id, entry.implementation_id)] = entry
        self.statistics.stores += 1
        return entry

    def fetch(self, type_id: int, implementation_id: int) -> ConfigurationEntry:
        """Fetch an artefact (counted access)."""
        try:
            entry = self._entries[(type_id, implementation_id)]
        except KeyError as exc:
            raise PlatformError(
                f"repository has no configuration for type {type_id} "
                f"implementation {implementation_id}"
            ) from exc
        self.statistics.fetches += 1
        self.statistics.bytes_read += entry.size_bytes
        return entry

    def fetch_time_us(self, type_id: int, implementation_id: int) -> float:
        """Flash read latency of one artefact in microseconds (no access counted)."""
        try:
            entry = self._entries[(type_id, implementation_id)]
        except KeyError as exc:
            raise PlatformError(
                f"repository has no configuration for type {type_id} "
                f"implementation {implementation_id}"
            ) from exc
        return entry.size_bytes / self.read_bandwidth_mb_s

    def entries(self) -> List[ConfigurationEntry]:
        """All stored artefacts."""
        return list(self._entries.values())

    def total_bytes(self) -> int:
        """Total repository payload in bytes."""
        return sum(entry.size_bytes for entry in self._entries.values())

    @classmethod
    def from_case_base(
        cls, case_base: CaseBase, read_bandwidth_mb_s: float = 20.0
    ) -> "ConfigurationRepository":
        """Populate a repository from the deployment metadata of a case base."""
        repository = cls(read_bandwidth_mb_s=read_bandwidth_mb_s)
        for type_id, implementation in case_base.all_implementations():
            repository.store(
                ConfigurationEntry(
                    type_id=type_id,
                    implementation_id=implementation.implementation_id,
                    kind=ConfigurationKind.for_target(implementation.target),
                    size_bytes=implementation.deployment.configuration_size_bytes,
                    label=implementation.name,
                )
            )
        return repository
