"""Reconfigurable multi-device platform substrate (paper Fig. 1, lower layers)."""

from .device import Device, DeviceKind, PlacedTask
from .fleet import DeviceFleet, RetrievalWorker, WorkerSyncEvent
from .fpga import FpgaDevice, SlotSpec, virtex2_3000_fpga
from .processor import ProcessorDevice, audio_dsp, host_cpu
from .reconfiguration import (
    DEFAULT_ICAP_BANDWIDTH_MB_S,
    ReconfigurationController,
    ReconfigurationEvent,
)
from .repository import (
    ConfigurationEntry,
    ConfigurationKind,
    ConfigurationRepository,
    RepositoryStatistics,
)
from .resource_state import DeviceSnapshot, SystemResourceState, SystemSnapshot
from .runtime_controller import LocalRuntimeController, PlacementReport

__all__ = [
    "ConfigurationEntry",
    "ConfigurationKind",
    "ConfigurationRepository",
    "DEFAULT_ICAP_BANDWIDTH_MB_S",
    "Device",
    "DeviceFleet",
    "DeviceKind",
    "DeviceSnapshot",
    "FpgaDevice",
    "LocalRuntimeController",
    "PlacedTask",
    "PlacementReport",
    "ProcessorDevice",
    "ReconfigurationController",
    "ReconfigurationEvent",
    "RepositoryStatistics",
    "RetrievalWorker",
    "WorkerSyncEvent",
    "SlotSpec",
    "SystemResourceState",
    "SystemSnapshot",
    "audio_dsp",
    "host_cpu",
    "virtex2_3000_fpga",
]
