"""Partial run-time reconfiguration timing model.

Placing an FPGA implementation requires streaming its partial bitstream
through the device's configuration port (ICAP on Virtex-II).  The controller
below models the port bandwidth and keeps a busy-until timestamp, because the
port is a serial resource: concurrent reconfiguration requests on the same
device queue up, which the allocation scenario experiment (E10) exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import PlatformError

#: Virtex-II ICAP: 8 bits per cycle at 66 MHz = 66 MB/s theoretical; the
#: practical figure with controller overhead is lower.
DEFAULT_ICAP_BANDWIDTH_MB_S = 50.0


@dataclass(frozen=True)
class ReconfigurationEvent:
    """One completed (or failed) configuration-port occupancy."""

    device_name: str
    handle: int
    bitstream_bytes: int
    start_us: float
    duration_us: float
    #: ``"applied"`` for a successful transfer; fault-injected attempts are
    #: recorded as ``"failed-truncated"`` / ``"failed-corrupted"`` -- they
    #: still occupy the serial port for the modelled duration.
    status: str = "applied"

    @property
    def end_us(self) -> float:
        """Completion time of the reconfiguration in microseconds."""
        return self.start_us + self.duration_us


class ReconfigurationController:
    """Per-FPGA reconfiguration port model with serial occupancy."""

    def __init__(
        self,
        device_name: str,
        *,
        bandwidth_mb_s: float = DEFAULT_ICAP_BANDWIDTH_MB_S,
        setup_overhead_us: float = 25.0,
    ) -> None:
        if bandwidth_mb_s <= 0:
            raise PlatformError("reconfiguration bandwidth must be positive")
        if setup_overhead_us < 0:
            raise PlatformError("setup overhead must be non-negative")
        self.device_name = device_name
        self.bandwidth_mb_s = bandwidth_mb_s
        self.setup_overhead_us = setup_overhead_us
        self._busy_until_us = 0.0
        self.events: List[ReconfigurationEvent] = []

    def transfer_time_us(self, bitstream_bytes: int) -> float:
        """Pure streaming time of a bitstream (no queueing, no setup)."""
        if bitstream_bytes < 0:
            raise PlatformError("bitstream size must be non-negative")
        return bitstream_bytes / self.bandwidth_mb_s

    def reconfiguration_time_us(self, bitstream_bytes: int) -> float:
        """Setup overhead plus streaming time of one reconfiguration."""
        return self.setup_overhead_us + self.transfer_time_us(bitstream_bytes)

    def busy_until_us(self) -> float:
        """Time until which the configuration port is occupied."""
        return self._busy_until_us

    def schedule(
        self,
        handle: int,
        bitstream_bytes: int,
        now_us: float,
        *,
        duration_us: Optional[float] = None,
        status: str = "applied",
    ) -> ReconfigurationEvent:
        """Schedule one reconfiguration at ``now_us``; returns the completed event.

        If the port is still busy the transfer is queued behind the previous
        one, so the event's start time may be later than ``now_us``.  An
        explicit ``duration_us`` overrides the bandwidth-derived transfer
        time (the fleet model's fixed ``--reconfig-us`` knob); the byte count
        is still validated and recorded.  A non-``"applied"`` ``status``
        records a fault-injected attempt: the port is occupied all the same,
        but the caller knows the image did not land.
        """
        if duration_us is not None and duration_us < 0:
            raise PlatformError(f"duration_us must be non-negative, got {duration_us}")
        start = max(now_us, self._busy_until_us)
        self.transfer_time_us(bitstream_bytes)  # byte-count validation
        duration = (
            duration_us
            if duration_us is not None
            else self.reconfiguration_time_us(bitstream_bytes)
        )
        event = ReconfigurationEvent(
            device_name=self.device_name,
            handle=handle,
            bitstream_bytes=bitstream_bytes,
            start_us=start,
            duration_us=duration,
            status=status,
        )
        self._busy_until_us = event.end_us
        self.events.append(event)
        return event

    def restore_occupancy(self, busy_until_us: float) -> None:
        """Restore the port's busy-until timestamp (journal crash recovery).

        Only the occupancy affects future scheduling decisions, so it is the
        only piece of controller state a journal snapshot carries; the event
        log is reporting-only and restarts empty in the new incarnation.
        """
        if busy_until_us < 0:
            raise PlatformError("restored port occupancy must be non-negative")
        self._busy_until_us = float(busy_until_us)

    def total_reconfiguration_time_us(self) -> float:
        """Accumulated reconfiguration time across all events."""
        return sum(event.duration_us for event in self.events)

    def reset(self) -> None:
        """Clear the event log and the busy timestamp (between simulations)."""
        self._busy_until_us = 0.0
        self.events.clear()
