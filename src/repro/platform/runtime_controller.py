"""Local run-time controllers (the "Local Run-Time Control" boxes of Fig. 1).

Every device has a local controller responsible for "control of local run-time
reconfiguration and other sub-tasks like local task/resource management and
communication issues".  The controller is the only component that touches its
device directly; the HW-Layer API talks to controllers, never to devices,
mirroring the layering of Fig. 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.case_base import Implementation
from ..core.exceptions import PlatformError
from .device import Device, DeviceKind, PlacedTask
from .fpga import FpgaDevice
from .reconfiguration import ReconfigurationController
from .repository import ConfigurationRepository


@dataclass(frozen=True)
class PlacementReport:
    """Result of placing one implementation on a device."""

    handle: int
    device_name: str
    type_id: int
    implementation_id: int
    setup_time_us: float
    reconfiguration_time_us: float = 0.0
    repository_fetch_time_us: float = 0.0

    @property
    def total_deploy_time_us(self) -> float:
        """Total time from placement decision to the function being usable."""
        return self.setup_time_us + self.reconfiguration_time_us + self.repository_fetch_time_us


class LocalRuntimeController:
    """Task and reconfiguration management for one device."""

    _handles = itertools.count(1)

    def __init__(
        self,
        device: Device,
        repository: Optional[ConfigurationRepository] = None,
        *,
        reconfiguration: Optional[ReconfigurationController] = None,
    ) -> None:
        self.device = device
        self.repository = repository
        if isinstance(device, FpgaDevice) and reconfiguration is None:
            reconfiguration = ReconfigurationController(device.name)
        self.reconfiguration = reconfiguration
        self.placements: List[PlacementReport] = []

    @property
    def name(self) -> str:
        """Name of the controlled device."""
        return self.device.name

    # -- queries -----------------------------------------------------------------

    def can_place(self, implementation: Implementation) -> bool:
        """Whether the implementation fits on the device right now."""
        return self.device.has_capacity_for(implementation)

    def utilization(self) -> float:
        """Current utilisation of the controlled device."""
        return self.device.utilization()

    def power_mw(self) -> float:
        """Current power draw of the controlled device."""
        return self.device.power_mw()

    def tasks(self) -> List[PlacedTask]:
        """Tasks currently placed on the device."""
        return self.device.tasks()

    # -- placement ------------------------------------------------------------------

    def place(
        self,
        type_id: int,
        implementation: Implementation,
        *,
        requester: str = "",
        now_us: float = 0.0,
        preemptible: bool = True,
    ) -> PlacementReport:
        """Instantiate an implementation on the controlled device.

        For FPGA targets the configuration data is fetched from the repository
        (if one is attached) and streamed through the reconfiguration port; for
        software targets only the repository fetch and task setup time apply.
        """
        if not self.device.can_host(implementation):
            raise PlatformError(
                f"device {self.device.name} cannot host target "
                f"{implementation.target.value}"
            )
        if not self.device.has_capacity_for(implementation):
            raise PlatformError(
                f"device {self.device.name} has no free capacity for "
                f"implementation {implementation.implementation_id} of type {type_id}"
            )
        handle = next(self._handles)
        fetch_time = 0.0
        if self.repository is not None and (type_id, implementation.implementation_id) in self.repository:
            self.repository.fetch(type_id, implementation.implementation_id)
            fetch_time = self.repository.fetch_time_us(type_id, implementation.implementation_id)
        reconfiguration_time = 0.0
        if implementation.target.is_reconfigurable and self.reconfiguration is not None:
            event = self.reconfiguration.schedule(
                handle, implementation.deployment.configuration_size_bytes, now_us + fetch_time
            )
            reconfiguration_time = event.end_us - (now_us + fetch_time)
        task = PlacedTask(
            handle=handle,
            type_id=type_id,
            implementation=implementation,
            requester=requester,
            power_mw=implementation.deployment.power_mw,
            placed_at_us=now_us,
            preemptible=preemptible,
        )
        self.device.place(task)
        report = PlacementReport(
            handle=handle,
            device_name=self.device.name,
            type_id=type_id,
            implementation_id=implementation.implementation_id,
            setup_time_us=implementation.deployment.setup_time_us,
            reconfiguration_time_us=reconfiguration_time,
            repository_fetch_time_us=fetch_time,
        )
        self.placements.append(report)
        return report

    def remove(self, handle: int) -> PlacedTask:
        """Remove a placed task and free its resources."""
        return self.device.remove(handle)

    def preempt_for(self, implementation: Implementation) -> List[PlacedTask]:
        """Preempt as few tasks as necessary to make room; returns the victims.

        Victims are removed from the device.  If no combination of preemptible
        tasks frees enough capacity, nothing is removed and an empty list is
        returned.
        """
        if self.device.has_capacity_for(implementation):
            return []
        victims: List[PlacedTask] = []
        removed: List[PlacedTask] = []
        for candidate in self.device.preemption_candidates():
            removed.append(self.device.remove(candidate.handle))
            victims.append(candidate)
            if self.device.has_capacity_for(implementation):
                return victims
        # Preempting everything still did not help: roll back.
        for task in removed:
            self.device.place(task)
        return []
