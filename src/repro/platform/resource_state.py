"""Aggregated system load and power state (the information the allocation layer
"will need ... about the current system load and power consumption status").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.exceptions import PlatformError
from .device import Device, DeviceKind
from .runtime_controller import LocalRuntimeController


@dataclass(frozen=True)
class DeviceSnapshot:
    """Load/power snapshot of one device."""

    name: str
    kind: DeviceKind
    utilization: float
    power_mw: float
    task_count: int


@dataclass(frozen=True)
class SystemSnapshot:
    """Platform-wide load/power snapshot."""

    devices: Dict[str, DeviceSnapshot]
    total_power_mw: float
    power_budget_mw: Optional[float]

    @property
    def within_power_budget(self) -> bool:
        """Whether the current draw respects the configured budget."""
        if self.power_budget_mw is None:
            return True
        return self.total_power_mw <= self.power_budget_mw + 1e-9

    def utilization_of(self, name: str) -> float:
        """Utilisation of one device by name."""
        return self.devices[name].utilization

    def average_utilization(self) -> float:
        """Mean utilisation across all devices."""
        if not self.devices:
            return 0.0
        return sum(snapshot.utilization for snapshot in self.devices.values()) / len(self.devices)


class SystemResourceState:
    """Tracks all run-time controllers and an optional platform power budget."""

    def __init__(
        self,
        controllers: Iterable[LocalRuntimeController] = (),
        *,
        power_budget_mw: Optional[float] = None,
    ) -> None:
        self._controllers: Dict[str, LocalRuntimeController] = {}
        for controller in controllers:
            self.add_controller(controller)
        if power_budget_mw is not None and power_budget_mw <= 0:
            raise PlatformError("power budget must be positive")
        self.power_budget_mw = power_budget_mw

    def add_controller(self, controller: LocalRuntimeController) -> LocalRuntimeController:
        """Register one run-time controller (device names must be unique)."""
        if controller.name in self._controllers:
            raise PlatformError(f"a controller for device {controller.name} already exists")
        self._controllers[controller.name] = controller
        return controller

    def controllers(self) -> List[LocalRuntimeController]:
        """All registered controllers."""
        return list(self._controllers.values())

    def controller(self, name: str) -> LocalRuntimeController:
        """One controller by device name."""
        try:
            return self._controllers[name]
        except KeyError as exc:
            raise PlatformError(f"no controller registered for device {name}") from exc

    def __len__(self) -> int:
        return len(self._controllers)

    def total_power_mw(self) -> float:
        """Current platform power draw."""
        return sum(controller.power_mw() for controller in self._controllers.values())

    def headroom_mw(self) -> Optional[float]:
        """Remaining power headroom, or ``None`` when no budget is configured."""
        if self.power_budget_mw is None:
            return None
        return self.power_budget_mw - self.total_power_mw()

    def snapshot(self) -> SystemSnapshot:
        """Platform-wide load/power snapshot."""
        devices = {
            name: DeviceSnapshot(
                name=name,
                kind=controller.device.kind,
                utilization=controller.utilization(),
                power_mw=controller.power_mw(),
                task_count=len(controller.tasks()),
            )
            for name, controller in self._controllers.items()
        }
        return SystemSnapshot(
            devices=devices,
            total_power_mw=self.total_power_mw(),
            power_budget_mw=self.power_budget_mw,
        )
