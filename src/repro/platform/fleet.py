"""Device fleets: N retrieval workers on the reconfigurable platform.

The paper's premise is a *platform* of reconfigurable devices (Fig. 1), yet
until this module the serving stack modelled a single node: one hardware
retrieval unit and one software path.  A :class:`DeviceFleet` registers N
heterogeneous retrieval workers -- hardware retrieval units living in the
static region of FPGA devices, software retrieval units on processors -- each
bound to a platform :class:`~repro.platform.device.Device` through its
:class:`~repro.platform.runtime_controller.LocalRuntimeController`, with the
fleet-wide load/power view provided by the existing
:class:`~repro.platform.resource_state.SystemResourceState`.

The fleet's job beyond registration is **reconfiguration-aware image
propagation**: every hardware worker serves retrievals from an on-device
CB-MEM image of the shared case base.  When the case base mutates (online
learning retains/revises cases mid-stream), each device's cached image goes
stale and must be re-streamed through that device's configuration port before
the worker may serve again -- the port is a serial resource, so the worker is
*unavailable* for the duration.  :meth:`DeviceFleet.sync` models exactly
that, reusing the PR 4 delta machinery to decide how much must be streamed:

* a delta window still covered by the case base's
  :class:`~repro.core.deltas.DeltaLog` streams only the touched types' share
  of the image (incremental update of the device memory);
* a truncated window (or a bounds-table change, which rescales the baked
  similarity constants) streams the full image.

The router (:mod:`repro.serving.cluster`) consults
:meth:`RetrievalWorker.available_from` -- which folds in reconfiguration-port
occupancy and scheduled outages -- before assigning work, so a device
mid-reconfiguration degrades traffic to software or queues it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.case_base import CaseBase
from ..core.exceptions import PlatformError
from .fpga import virtex2_3000_fpga
from .processor import host_cpu
from .repository import ConfigurationRepository
from .resource_state import SystemResourceState
from .runtime_controller import LocalRuntimeController

#: Worker kinds a fleet can register.
HARDWARE = "hardware"
SOFTWARE = "software"


@dataclass(frozen=True)
class WorkerSyncEvent:
    """One modelled propagation of case-base deltas to a worker's image."""

    worker: str
    #: Case-base revision the worker's image reflects after the sync.
    revision: int
    start_us: float
    duration_us: float
    bytes_streamed: int
    #: ``True`` when only the touched types' share of the image was streamed.
    incremental: bool
    #: Stream attempts consumed (> 1 when fault-injected attempts were
    #: retried under the fleet's :class:`~repro.resilience.RetryPolicy`).
    attempts: int = 1
    #: ``"applied"`` when the image landed; ``"failed"`` when every attempt
    #: hit an injected stream fault -- the worker's image stays stale and
    #: the router quarantines it until a later sync (the probe) succeeds.
    status: str = "applied"

    @property
    def end_us(self) -> float:
        """Completion time of the sync in microseconds."""
        return self.start_us + self.duration_us


def stream_image_event(
    worker_name: str,
    reconfiguration,
    revision: int,
    streamed_bytes: int,
    incremental: bool,
    now_us: float,
    *,
    reconfig_us: Optional[float],
    fault_injector,
    retry_policy,
) -> WorkerSyncEvent:
    """Model one image stream to one hardware worker, retrying injected faults.

    This is the whole stream algorithm as a pure function of the worker's
    port controller plus the (stateless) fault plan and retry policy, so the
    multiprocess fleet mode can run it verbatim inside each worker's OS
    process while :meth:`DeviceFleet._stream_image` keeps delegating to it
    inline.  Without a fault injector this is exactly one port transfer (the
    pre-PR 7 behaviour, bit-for-bit).  With one, each attempt started inside
    a stream-fault window fails -- a truncated attempt occupies the port for
    ``factor`` of the modelled duration, a corrupted one for all of it --
    and the retry policy schedules the next attempt in virtual time with
    seeded backoff jitter.  The reported sync event spans first start to
    last end and sums the streamed bytes, so the metrics' ``bytes_streamed``
    measures traffic, not useful payload.
    """
    from ..resilience.retry import derive_rng

    if fault_injector is None:
        port_event = reconfiguration.schedule(
            0, streamed_bytes, now_us, duration_us=reconfig_us
        )
        return WorkerSyncEvent(
            worker=worker_name,
            revision=revision,
            start_us=port_event.start_us,
            duration_us=port_event.duration_us,
            bytes_streamed=streamed_bytes,
            incremental=incremental,
        )
    rng = derive_rng(fault_injector.plan.seed, "stream", worker_name, revision)
    attempt_at = now_us
    attempt = 0
    first_start: Optional[float] = None
    total_bytes = 0
    while True:
        fault = fault_injector.stream_fault(worker_name, attempt_at)
        if fault is None:
            port_event = reconfiguration.schedule(
                0, streamed_bytes, attempt_at, duration_us=reconfig_us
            )
            if first_start is None:
                first_start = port_event.start_us
            return WorkerSyncEvent(
                worker=worker_name,
                revision=revision,
                start_us=first_start,
                duration_us=port_event.end_us - first_start,
                bytes_streamed=total_bytes + streamed_bytes,
                incremental=incremental,
                attempts=attempt + 1,
            )
        full_duration = (
            reconfig_us
            if reconfig_us is not None
            else reconfiguration.reconfiguration_time_us(streamed_bytes)
        )
        if fault.kind == "stream_truncate":
            fraction = min(1.0, fault.factor)
            duration = full_duration * fraction
            streamed = int(streamed_bytes * fraction)
            status = "failed-truncated"
        else:
            duration = full_duration
            streamed = streamed_bytes
            status = "failed-corrupted"
        port_event = reconfiguration.schedule(
            0, streamed, attempt_at, duration_us=duration, status=status
        )
        if first_start is None:
            first_start = port_event.start_us
        total_bytes += streamed
        retry_at = (
            retry_policy.next_attempt_us(attempt, port_event.end_us, rng=rng)
            if retry_policy is not None
            else None
        )
        if retry_at is None:
            return WorkerSyncEvent(
                worker=worker_name,
                revision=revision,
                start_us=first_start,
                duration_us=port_event.end_us - first_start,
                bytes_streamed=total_bytes,
                incremental=incremental,
                attempts=attempt + 1,
                status="failed",
            )
        attempt += 1
        attempt_at = retry_at


class RetrievalWorker:
    """One retrieval-serving unit bound to a platform device.

    Parameters
    ----------
    name:
        Worker name (doubles as the underlying device name).
    controller:
        The device's local run-time controller.  Hardware workers use its
        :class:`~repro.platform.reconfiguration.ReconfigurationController`
        to model image streaming; software workers have none.
    kind:
        ``"hardware"`` (retrieval unit in the FPGA's static region) or
        ``"software"`` (retrieval routine on the processor).
    clock_mhz:
        Clock the worker's service times are derived at
        (``cycles / clock_mhz``).
    case_base:
        The shared case base; the worker's cached image starts current.
    unit:
        The shared host-side retrieval-unit model backing this worker
        (:class:`~repro.hardware.retrieval_unit.HardwareRetrievalUnit` or
        :class:`~repro.software.retrieval_sw.SoftwareRetrievalUnit`).
        Workers of one kind share one unit: it *is* the image every device
        of that kind mirrors.
    """

    def __init__(
        self,
        name: str,
        controller: LocalRuntimeController,
        *,
        kind: str,
        clock_mhz: float,
        case_base: CaseBase,
        unit: object = None,
    ) -> None:
        if kind not in (HARDWARE, SOFTWARE):
            raise PlatformError(
                f"worker kind must be '{HARDWARE}' or '{SOFTWARE}', got {kind!r}"
            )
        if clock_mhz <= 0:
            raise PlatformError(f"worker clock must be positive, got {clock_mhz}")
        if kind == HARDWARE and controller.reconfiguration is None:
            raise PlatformError(
                f"hardware worker {name!r} needs a device with a reconfiguration port"
            )
        self.name = name
        self.controller = controller
        self.kind = kind
        self.clock_mhz = clock_mhz
        self.unit = unit
        #: Case-base revision the on-device image currently reflects.
        self.image_revision = case_base.revision
        self.sync_events: List[WorkerSyncEvent] = []
        self._outages: List[Tuple[float, float]] = []

    @property
    def device(self):
        """The underlying platform device."""
        return self.controller.device

    @property
    def is_hardware(self) -> bool:
        """Whether this worker is a hardware retrieval unit."""
        return self.kind == HARDWARE

    # -- availability ---------------------------------------------------------------

    def add_outage(self, start_us: float, end_us: float) -> None:
        """Schedule a window during which the worker cannot serve.

        Models a device taken offline (full reconfiguration, maintenance,
        failure + recovery); the fleet-failover workload drives this.
        """
        if start_us < 0 or end_us <= start_us:
            raise PlatformError(
                f"outage window must be non-empty and non-negative, "
                f"got [{start_us}, {end_us})"
            )
        self._outages.append((start_us, end_us))
        self._outages.sort()

    def outages(self) -> List[Tuple[float, float]]:
        """Scheduled outage windows, sorted by start time."""
        return list(self._outages)

    def available_from(self, now_us: float, service_us: float = 0.0) -> float:
        """Earliest time at/after ``now_us`` the device can start new work.

        Folds in reconfiguration-port occupancy (a device mid-reconfiguration
        is unavailable until the stream completes) and scheduled outages:
        with a ``service_us``, work may not *overlap* an outage either -- a
        job that would still be running when the device goes down starts
        after the window instead.  Queued retrieval work is tracked by the
        router, not here.
        """
        available = now_us
        reconfiguration = self.controller.reconfiguration
        if reconfiguration is not None:
            available = max(available, reconfiguration.busy_until_us())
        # Outages are sorted by start, so one forward pass settles: pushing
        # the start time right can only collide with later windows.
        for start, end in self._outages:
            if available < end and (available >= start or available + service_us > start):
                available = end
        return available

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RetrievalWorker(name={self.name!r}, kind={self.kind!r}, "
            f"clock_mhz={self.clock_mhz})"
        )


class DeviceFleet:
    """Registry of retrieval workers over one shared case base.

    Parameters
    ----------
    case_base:
        The case base every worker serves.
    workers:
        The registered workers (at least one; names must be unique).
    repository:
        Optional configuration repository the devices fetch images from.
    power_budget_mw:
        Optional fleet-wide power budget for the resource state.
    reconfig_us:
        Optional fixed per-sync reconfiguration latency.  ``None`` derives
        the latency from the streamed byte count through each device's
        configuration-port bandwidth model.
    image_words:
        Optional zero-argument callable returning the current CB-MEM image
        word count (used to size modelled image streams).  Defaults to the
        hardware workers' shared unit.
    """

    def __init__(
        self,
        case_base: CaseBase,
        workers: Sequence[RetrievalWorker],
        *,
        repository: Optional[ConfigurationRepository] = None,
        power_budget_mw: Optional[float] = None,
        reconfig_us: Optional[float] = None,
        image_words: Optional[Callable[[], int]] = None,
    ) -> None:
        workers = list(workers)
        if not workers:
            raise PlatformError("a device fleet needs at least one worker")
        names = [worker.name for worker in workers]
        if len(set(names)) != len(names):
            raise PlatformError(f"fleet worker names must be unique, got {names}")
        if reconfig_us is not None and reconfig_us < 0:
            raise PlatformError(f"reconfig_us must be non-negative, got {reconfig_us}")
        self.case_base = case_base
        self.workers = workers
        self.repository = repository
        self.reconfig_us = reconfig_us
        self._image_words = image_words
        self.resource_state = SystemResourceState(
            (worker.controller for worker in workers),
            power_budget_mw=power_budget_mw,
        )
        #: Optional fault-injection harness + retry policy (PR 7); installed
        #: via :meth:`apply_faults`, ``None`` keeps :meth:`sync` on the exact
        #: single-attempt path previous releases modelled.
        self.fault_injector = None
        self.retry_policy = None
        #: Optional :class:`~repro.parallel.fleet_proc.FleetWorkerPool` (the
        #: ``execution="process"`` fleet mode): when installed, modelled image
        #: streams run inside each worker's OS process and only the port's
        #: busy-until scalar is mirrored back (via ``restore_occupancy``).
        self.process_pool = None

    # -- construction -----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        case_base: CaseBase,
        *,
        hardware_devices: int = 2,
        software_devices: int = 1,
        hardware_config: object = None,
        clock_mhz: float = 66.0,
        power_budget_mw: Optional[float] = None,
        reconfig_us: Optional[float] = None,
        repository: Optional[ConfigurationRepository] = None,
    ) -> "DeviceFleet":
        """Assemble a fleet of FPGA-hosted hardware workers plus CPU fallbacks.

        ``hardware_devices`` FPGAs each host one hardware retrieval unit in
        their static region; ``software_devices`` host CPUs each run the
        software retrieval routine.  All workers run at one clock -- the
        paper's equal-clock comparison, matching the admission controller's
        convention that an explicit ``hardware_config``'s clock takes
        precedence over ``clock_mhz`` *for the software path too*.  Workers
        of one kind share one host-side unit model -- the image all devices
        of that kind mirror.
        """
        if hardware_devices < 0 or software_devices < 0:
            raise PlatformError("device counts must be non-negative")
        if hardware_devices + software_devices < 1:
            raise PlatformError("a device fleet needs at least one device")
        from ..hardware.retrieval_unit import HardwareConfig, HardwareRetrievalUnit
        from ..software.isa import microblaze_cost_model
        from ..software.retrieval_sw import SoftwareRetrievalUnit

        if hardware_config is None:
            hardware_config = HardwareConfig(clock_mhz=clock_mhz)
        clock_mhz = hardware_config.clock_mhz
        workers: List[RetrievalWorker] = []
        hardware_unit = None
        if hardware_devices:
            hardware_unit = HardwareRetrievalUnit(case_base, config=hardware_config)
            for index in range(hardware_devices):
                device = virtex2_3000_fpga(f"fpga{index}")
                controller = LocalRuntimeController(device, repository)
                workers.append(RetrievalWorker(
                    device.name,
                    controller,
                    kind=HARDWARE,
                    clock_mhz=hardware_config.clock_mhz,
                    case_base=case_base,
                    unit=hardware_unit,
                ))
        if software_devices:
            software_unit = SoftwareRetrievalUnit(
                case_base, cost_model=microblaze_cost_model(clock_mhz)
            )
            for index in range(software_devices):
                device = host_cpu(f"cpu{index}")
                controller = LocalRuntimeController(device, repository)
                workers.append(RetrievalWorker(
                    device.name,
                    controller,
                    kind=SOFTWARE,
                    clock_mhz=clock_mhz,
                    case_base=case_base,
                    unit=software_unit,
                ))
        image_words = hardware_unit.image_word_count if hardware_unit is not None else None
        return cls(
            case_base,
            workers,
            repository=repository,
            power_budget_mw=power_budget_mw,
            reconfig_us=reconfig_us,
            image_words=image_words,
        )

    # -- queries ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.workers)

    def worker(self, name: str) -> RetrievalWorker:
        """One worker by name."""
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise PlatformError(f"fleet has no worker named {name!r}")

    @property
    def hardware_workers(self) -> List[RetrievalWorker]:
        """The hardware retrieval workers, in registration order."""
        return [worker for worker in self.workers if worker.kind == HARDWARE]

    @property
    def software_workers(self) -> List[RetrievalWorker]:
        """The software retrieval workers, in registration order."""
        return [worker for worker in self.workers if worker.kind == SOFTWARE]

    def snapshot(self) -> Dict[str, object]:
        """Fleet state view (worker registry + platform load/power snapshot).

        The worker registry and the resource-state snapshot describe the same
        devices, so the two views round-trip: every worker name appears in
        the system snapshot and vice versa (property-tested).
        """
        system = self.resource_state.snapshot()
        return {
            "workers": {
                worker.name: {
                    "kind": worker.kind,
                    "clock_mhz": worker.clock_mhz,
                    "image_revision": worker.image_revision,
                    "device_kind": worker.device.kind.value,
                    "utilization": system.utilization_of(worker.name),
                }
                for worker in self.workers
            },
            "system": system,
        }

    # -- image propagation -------------------------------------------------------------

    def image_word_count(self) -> int:
        """Word count of one full on-device CB-MEM image."""
        if self._image_words is not None:
            return int(self._image_words())
        # Software-only fleets never stream images; a zero-sized image keeps
        # sync a no-op without demanding a hardware unit.
        return 0

    def _stream_words(self, worker: RetrievalWorker) -> Tuple[int, bool]:
        """``(words to stream, incremental?)`` to bring one image current.

        The delta log decides: a covered window streams only the touched
        types' share of the image (rounded up); a truncated window or a
        bounds change (which rescales the baked ``1/(1+dmax)`` constants
        throughout the supplemental lists) streams the full image.
        """
        full_words = self.image_word_count()
        summary = self.case_base.delta_log.summary_since(worker.image_revision)
        if summary is None or summary.bounds_changed:
            return full_words, False
        type_count = max(1, len(self.case_base))
        touched = len(summary.touched_types)
        if touched == 0:
            return 0, True
        return math.ceil(full_words * min(1.0, touched / type_count)), True

    def sync(self, now_us: float) -> List[WorkerSyncEvent]:
        """Propagate pending case-base deltas to every worker's cached image.

        Hardware workers stream the update through their device's serial
        configuration port -- the port's occupancy makes the worker
        unavailable until the stream completes (see
        :meth:`RetrievalWorker.available_from`).  Software workers re-fetch
        opcode from the repository per placement, not per retrieval, so
        their image adoption is modelled as instantaneous.
        """
        from ..memmap.words import words_to_bytes

        revision = self.case_base.revision
        events: List[WorkerSyncEvent] = []
        for worker in self.workers:
            if worker.image_revision == revision:
                continue
            if worker.kind == HARDWARE:
                words, incremental = self._stream_words(worker)
                streamed_bytes = words_to_bytes(words)
                event = self._stream_image(
                    worker, revision, streamed_bytes, incremental, now_us
                )
                if event.status != "applied":
                    # The image never landed: leave the worker's revision
                    # stale so the next sync (the router's probe) retries.
                    worker.sync_events.append(event)
                    events.append(event)
                    continue
            else:
                event = WorkerSyncEvent(
                    worker=worker.name,
                    revision=revision,
                    start_us=now_us,
                    duration_us=0.0,
                    bytes_streamed=0,
                    incremental=True,
                )
            worker.image_revision = revision
            worker.sync_events.append(event)
            events.append(event)
        return events

    def _stream_image(
        self,
        worker: RetrievalWorker,
        revision: int,
        streamed_bytes: int,
        incremental: bool,
        now_us: float,
    ) -> WorkerSyncEvent:
        """Stream one image to one hardware worker, retrying injected faults.

        The algorithm lives in :func:`stream_image_event` so the multiprocess
        fleet mode can run the identical computation inside each worker's OS
        process.  When a :attr:`process_pool` is installed the stream runs
        there instead, and the parent-side port controller mirrors only the
        returned busy-until occupancy (the single scalar that affects future
        scheduling; the event log is reporting-only, exactly like journal
        crash recovery).
        """
        if self.process_pool is not None:
            event, busy_until_us = self.process_pool.stream_image(
                worker.name, revision, streamed_bytes, incremental, now_us
            )
            reconfiguration = worker.controller.reconfiguration
            if reconfiguration is not None:
                reconfiguration.restore_occupancy(busy_until_us)
            return event
        return stream_image_event(
            worker.name,
            worker.controller.reconfiguration,
            revision,
            streamed_bytes,
            incremental,
            now_us,
            reconfig_us=self.reconfig_us,
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
        )

    def apply_faults(self, injector, retry_policy) -> None:
        """Install the fault-injection harness on this fleet (idempotent).

        Crash/hang windows become modelled worker outages (they survive
        :meth:`reset_timing`, like scripted outages do); stream faults are
        evaluated per attempt inside :meth:`sync`.
        """
        if getattr(self, "_faults_applied", False):
            self.fault_injector = injector
            self.retry_policy = retry_policy
            return
        self.fault_injector = injector
        self.retry_policy = retry_policy
        if injector is not None:
            injector.apply_to_fleet(self)
        self._faults_applied = True

    def reset_timing(self) -> None:
        """Clear modelled port occupancy and sync logs (between replays).

        Worker ``image_revision`` is *not* reset: it tracks which case-base
        state the devices actually hold, which survives across replays.
        """
        for worker in self.workers:
            reconfiguration = worker.controller.reconfiguration
            if reconfiguration is not None:
                reconfiguration.reset()
            worker.sync_events.clear()
        if self.process_pool is not None:
            self.process_pool.reset()
