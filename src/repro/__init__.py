"""Reproduction of "Hardware Support for QoS-based Function Allocation in
Reconfigurable Systems" (Ullmann, Jin, Becker).

The package is organised in layers mirroring Fig. 1 of the paper:

* :mod:`repro.core` -- the CBR-based retrieval and similarity machinery
  (the paper's primary contribution), substrate independent.
* :mod:`repro.fixedpoint` -- 16-bit fixed-point arithmetic used by the
  hardware retrieval unit.
* :mod:`repro.memmap` -- the linear-list / implementation-tree memory layout
  of Fig. 4 and Fig. 5, mapped onto 16-bit-word RAM blocks.
* :mod:`repro.hardware` -- the cycle-accurate behavioural model of the FPGA
  retrieval unit (Fig. 6 / Fig. 7) plus a resource estimator (Table 2).
* :mod:`repro.software` -- the MicroBlaze-like software retrieval cost model
  used for the hardware/software speedup comparison.
* :mod:`repro.platform` -- reconfigurable devices, bitstream repository,
  reconfiguration timing and run-time controllers.
* :mod:`repro.allocation` -- the function-allocation management layer with
  feasibility checks and QoS negotiation.
* :mod:`repro.api` -- the Application-API and HW-Layer API facades.
* :mod:`repro.serving` -- QoS-aware micro-batched request serving (trace
  replay, sharded case-base workers, cycle-exact admission control).
* :mod:`repro.apps` -- example application workload models.
* :mod:`repro.tools` -- case-base generators and tracing helpers.
* :mod:`repro.analysis` -- reporting and statistics helpers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
