"""The vectorized cycle engine: exact analytic co-simulation in NumPy.

The stepwise models charge cycles per FSM state visit (hardware) or per
emitted instruction (software) while walking the word image one access at a
time.  Every one of those visit counts is a deterministic function of a few
structural quantities, so instead of re-walking the lists the vectorized
engine computes the quantities with array operations and *derives* the exact
counters:

* ``k``      -- the requested type's position in the level-0 list;
* ``I``      -- implementation variants of the type, ``R`` request attributes;
* ``T_i``    -- attribute-list probes of implementation ``i``.  The stepwise
  resume-search (section 4.1) is a sorted merge walk, whose probe count has
  the closed form ``T_i = f_i(a_R) + R - matched_i(a_1..a_{R-1})`` where
  ``f_i(a)`` counts list entries with ID below ``a`` (the restart ablation
  uses ``T_i = sum_r f_i(a_r) + R``);
* ``P``      -- supplemental-list probes per walk: ``p_R + R`` with ``p_R``
  the block index of the largest request attribute (the resume walk probes
  each block at most once plus one re-probe per found attribute);
* ``m_i`` / ``miss_i`` -- matched/missing request attributes per
  implementation, and the data-dependent branch counts of the software model
  (negative differences, penalty clamps, accumulator saturations).

Raw 16-bit similarities are computed with the vectorized Q-format helpers of
:mod:`repro.fixedpoint.vectorized`, operation for operation in the stepwise
datapath order, so similarities, rankings, cycle counts, instruction
counters and memory-read counters are all bit-identical with the golden
models -- the differential and property suites under ``tests/cosim`` assert
exactly that across every configuration axis.

Requests sharing a ``(type_id, attribute-ID set)`` signature are stacked and
evaluated against the type's columnar matrices in one broadcast pass per
request attribute, which is what makes scenario-scale batches orders of
magnitude faster than the word-at-a-time walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import (
    HardwareModelError,
    SoftwareModelError,
    UnknownFunctionTypeError,
)
from ..core.request import FunctionRequest
from ..fixedpoint.vectorized import (
    divide_fraction_array,
    multiply_fraction_array,
    multiply_fractions_array,
    one_minus_array,
    prefix_maxima_count,
    saturating_add_array,
)
from ..hardware.retrieval_unit import (
    HardwareConfig,
    HardwareRetrievalResult,
    HardwareRetrievalUnit,
    HardwareStatistics,
)
from ..memmap.request_list import REQUEST_BLOCK_WORDS
from ..software.isa import InstructionClass, InstructionCounters
from ..software.retrieval_sw import (
    SoftwareRetrievalResult,
    SoftwareRetrievalUnit,
    SoftwareStatistics,
)
from .columnar import ColumnarImage, TypeColumns
from .engine import CycleEngine


@dataclass
class _Group:
    """Requests sharing one ``(type_id, attribute-ID tuple)`` signature."""

    type_id: int
    attribute_ids: Tuple[int, ...]
    member_indices: List[int]
    values: np.ndarray  # (B, R) raw attribute values
    weights: np.ndarray  # (B, R) raw UQ0.16 weights


@dataclass(frozen=True)
class _HardwareGroupCosts:
    """Request-value-independent hardware cost terms of one batch group."""

    case_base_reads: int
    request_reads: int
    attribute_probes: int
    supplemental_probes: int
    missing_attributes: int
    #: Total cycles excluding the per-request FINALIZE phase.
    base_cycles: int


@dataclass
class _Structural:
    """Value-independent per-implementation quantities of one group."""

    present: np.ndarray  # (I, R) request attribute present in implementation
    case_values: np.ndarray  # (I, R) raw stored values (0 where absent)
    matched: np.ndarray  # (I,) matched request attributes
    missing: np.ndarray  # (I,) missing request attributes
    probes: np.ndarray  # (I,) attribute-list probes of the configured search
    supplemental_last: int  # block index of the largest request attribute
    reciprocals: np.ndarray  # (R,) raw 1/(1+dmax) constants
    divisors: np.ndarray  # (R,) 1 + dmax divisors (divider variant)


def _decode_encoded_request(words: Sequence[int]) -> Tuple[int, Tuple[int, ...], List[int], List[int]]:
    """Split an encoded request image into (type, IDs, values, weights).

    Strided tuple slices instead of per-block comprehensions: this runs once
    per request per batch on the serving path.
    """
    end = 1 + len(words) - 2  # exclude the type word and the terminator
    ids = tuple(words[1:end:REQUEST_BLOCK_WORDS])
    values = list(words[2:end:REQUEST_BLOCK_WORDS])
    weights = list(words[3:end:REQUEST_BLOCK_WORDS])
    return words[0], ids, values, weights


def _prepare_groups(
    columnar: ColumnarImage,
    requests: Sequence[FunctionRequest],
    encode: Callable[[FunctionRequest], Sequence[int]],
    missing_bounds_error: Callable[[str], Exception],
) -> List[_Group]:
    """Encode, validate and group the batch, in request order.

    Validation mirrors the stepwise walk per request: encoding errors first,
    then the unknown-type check of the level-0 search, then (only when the
    type has implementations to score) the supplemental-list check for the
    lowest request attribute without a bounds entry.
    """
    building: Dict[Tuple[int, Tuple[int, ...]], _Group] = {}
    raw_rows: Dict[Tuple[int, Tuple[int, ...]], List[Tuple[List[int], List[int]]]] = {}
    for index, request in enumerate(requests):
        type_id, ids, values, weights = _decode_encoded_request(encode(request))
        key = (type_id, ids)
        group = building.get(key)
        if group is None:
            # Signature-level validation, mirroring the stepwise walk of the
            # first request carrying it: unknown type first, then (only when
            # the type has implementations to score) the lowest request
            # attribute without a supplemental (bounds) entry.  A signature
            # validated against this columnar image stays valid (memoised on
            # the image, carried forward by the delta-patch path like the
            # structural quantities).
            columns = columnar.types.get(type_id)
            if columns is None:
                raise UnknownFunctionTypeError(type_id)
            validated_key = (type_id, ids, "validated")
            if (
                columns.implementation_count > 0
                and validated_key not in columnar.structural_cache
            ):
                supplemental_ids = columnar.supplemental_ids
                if supplemental_ids.shape[0] == 0:
                    raise missing_bounds_error(
                        f"attribute {ids[0]} has no supplemental (bounds) entry"
                    )
                id_array = np.array(ids, dtype=np.int64)
                positions = np.searchsorted(supplemental_ids, id_array)
                found = (positions < supplemental_ids.shape[0]) & (
                    supplemental_ids[np.minimum(positions, supplemental_ids.shape[0] - 1)]
                    == id_array
                )
                if not found.all():
                    attribute_id = ids[int(np.argmin(found))]
                    raise missing_bounds_error(
                        f"attribute {attribute_id} has no supplemental (bounds) entry"
                    )
                columnar.structural_cache[validated_key] = True
            group = _Group(type_id, ids, [], np.empty(0), np.empty(0))
            building[key] = group
            raw_rows[key] = []
        group.member_indices.append(index)
        raw_rows[key].append((values, weights))
    for key, group in building.items():
        rows = raw_rows[key]
        group.values = np.array([values for values, _ in rows], dtype=np.int64)
        group.weights = np.array([weights for _, weights in rows], dtype=np.int64)
    return list(building.values())


#: Structural-cache entries kept per columnar image (cleared wholesale beyond).
_STRUCTURAL_CACHE_CAPACITY = 256


def _structural_counts(
    columnar: ColumnarImage,
    columns: TypeColumns,
    attribute_ids: Tuple[int, ...],
    *,
    restart_search: bool,
) -> _Structural:
    """Memoised :func:`_compute_structural_counts` per (type, signature).

    The quantities are value-independent, so hot serving signatures reuse
    them across batches; the cache lives on the columnar image, and the
    image's delta-patch path carries entries forward for types whose arrays
    were reused unchanged.
    """
    cache = columnar.structural_cache
    key = (columns.type_id, attribute_ids, restart_search)
    structural = cache.get(key)
    if structural is None:
        structural = _compute_structural_counts(
            columnar, columns, attribute_ids, restart_search=restart_search
        )
        if len(cache) >= _STRUCTURAL_CACHE_CAPACITY:
            cache.clear()
        cache[key] = structural
    return structural


def _compute_structural_counts(
    columnar: ColumnarImage,
    columns: TypeColumns,
    attribute_ids: Tuple[int, ...],
    *,
    restart_search: bool,
) -> _Structural:
    """Presence/value matrices and exact probe counts for one signature."""
    request_count = len(attribute_ids)
    ids = np.array(attribute_ids, dtype=np.int64)
    entry_ids = columns.entry_ids  # (I, M)
    matches = entry_ids[:, :, None] == ids[None, None, :]  # (I, M, R)
    present = matches.any(axis=1)  # (I, R)
    case_values = (columns.entry_values[:, :, None] * matches).sum(axis=1)
    matched = present.sum(axis=1)
    if restart_search:
        probes = (entry_ids[:, :, None] < ids[None, None, :]).sum(axis=(1, 2)) + request_count
    else:
        below_last = (entry_ids < ids[-1]).sum(axis=1)
        probes = below_last + request_count - present[:, :-1].sum(axis=1)
    if columns.implementation_count > 0:
        positions = np.searchsorted(columnar.supplemental_ids, ids)
        reciprocals = columnar.supplemental_reciprocals[positions]
        divisors = columnar.supplemental_divisors[positions]
        supplemental_last = int(positions[-1])
    else:
        # Nothing is ever scored: the supplemental list is never walked.
        reciprocals = np.zeros(request_count, dtype=np.int64)
        divisors = np.ones(request_count, dtype=np.int64)
        supplemental_last = 0
    return _Structural(
        present=present,
        case_values=case_values,
        matched=matched.astype(np.int64),
        missing=(request_count - matched).astype(np.int64),
        probes=probes.astype(np.int64),
        supplemental_last=supplemental_last,
        reciprocals=reciprocals,
        divisors=divisors,
    )


def _similarity_kernel(
    structural: _Structural,
    values: np.ndarray,
    weights: np.ndarray,
    *,
    use_divider: bool,
    fraction_fmt,
    count_branches: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Raw global similarities plus the software model's branch counts.

    The per-attribute datapath (absolute difference, penalty multiply or
    divide, ``1 - x``, weighting) is evaluated for the whole ``(batch,
    implementations, attributes)`` cube at once; only the saturating
    accumulation steps through the attributes in ascending-ID order, because
    per-step saturation must happen exactly where the stepwise accumulator
    saturates.  Missing attributes contribute zero and can never saturate,
    so no masking of the accumulator itself is needed.

    Returns ``(similarities, negative_differences, penalty_clamps,
    accumulator_saturations)``; the three counters (software model branch
    statistics, skipped for the hardware path via ``count_branches=False``)
    are per-request totals over all matched (implementation, attribute)
    pairs.
    """
    batch_size, request_count = values.shape
    implementation_count = structural.present.shape[0]
    max_raw = fraction_fmt.max_raw
    present = structural.present[None, :, :]  # (1, I, R)
    case_values = structural.case_values[None, :, :]  # (1, I, R)
    request_values = values[:, None, :]  # (B, 1, R)
    difference = np.abs(request_values - case_values)  # (B, I, R)
    if use_divider:
        penalty = divide_fraction_array(
            difference, structural.divisors[None, None, :], fraction_fmt
        )
    else:
        penalty = multiply_fraction_array(
            difference, structural.reciprocals[None, None, :], fraction_fmt
        )
    local = one_minus_array(penalty, fraction_fmt)
    contribution = multiply_fractions_array(local, weights[:, None, :], fraction_fmt)
    contribution *= present
    accumulator = np.zeros((batch_size, implementation_count), dtype=np.int64)
    negative = clamped = saturated = np.zeros(batch_size, dtype=np.int64)
    if count_branches:
        negative = ((case_values > request_values) & present).sum(axis=(1, 2))
        if not use_divider:
            # The software model's clamp branch fires on the *unclamped*
            # product, which the saturating multiply above discards.
            product = difference * structural.reciprocals[None, None, :]
            clamped = ((product > max_raw) & present).sum(axis=(1, 2))
        saturated = np.zeros(batch_size, dtype=np.int64)
        for column in range(request_count):
            total = accumulator + contribution[:, :, column]
            saturated += ((total > max_raw) & present[:, :, column]).sum(axis=1)
            accumulator = np.minimum(total, max_raw)
    else:
        for column in range(request_count):
            accumulator = saturating_add_array(
                accumulator, contribution[:, :, column], fraction_fmt
            )
    return accumulator, negative, clamped, saturated


def _nbest_finalize_cycles(similarities: np.ndarray, capacity: int) -> np.ndarray:
    """Exact insertion-compare cycles of the sorted n-best register file.

    ``similarities`` is the group's ``(B, I)`` matrix; the return value is
    the ``(B,)`` total compare-cycle vector.  Before implementation ``i`` is
    considered the file holds the ``min(i, n)`` best earlier entries in
    descending order; the scan visits every entry at least as similar as
    ``s_i`` plus the terminating smaller entry, and each consideration costs
    at least one cycle.
    """
    batch_size, implementation_count = similarities.shape
    if implementation_count == 0:
        return np.zeros(batch_size, dtype=np.int64)
    # [b, i, j] = s_j >= s_i among the earlier implementations j < i.
    at_least = similarities[:, None, :] >= similarities[:, :, None]
    earlier = np.tri(implementation_count, k=-1, dtype=bool)[None, :, :]
    stronger_before = (at_least & earlier).sum(axis=2)
    file_sizes = np.minimum(np.arange(implementation_count), capacity)[None, :]
    examined = np.minimum(stronger_before, file_sizes)
    compares = np.where(examined < file_sizes, examined + 1, file_sizes)
    return np.maximum(compares, 1).sum(axis=1)


class VectorizedCycleEngine(CycleEngine):
    """Batch evaluation of the cycle models with exact derived counters."""

    name = "vectorized"

    # -- hardware ------------------------------------------------------------------

    def hardware_batch(
        self, unit: HardwareRetrievalUnit, requests: Sequence[FunctionRequest]
    ) -> List[HardwareRetrievalResult]:
        config = unit.config
        if config.trace:
            raise HardwareModelError(
                "FSM tracing requires the stepwise cycle engine (engine='stepwise')"
            )
        columnar = unit.columnar_image()
        groups = _prepare_groups(
            columnar, requests, unit.encoded_request_words, HardwareModelError
        )
        results: List[HardwareRetrievalResult] = [None] * len(requests)  # type: ignore[list-item]
        for group in groups:
            columns = columnar.types[group.type_id]
            structural = _structural_counts(
                columnar, columns, group.attribute_ids,
                restart_search=config.restart_attribute_search,
            )
            costs = self._cached_hardware_group_costs(
                columnar, config, columns, structural, group.attribute_ids
            )
            similarities, _, _, _ = _similarity_kernel(
                structural, group.values, group.weights,
                use_divider=config.use_divider,
                fraction_fmt=unit.fraction_format,
                count_branches=False,
            )
            if columns.implementation_count:
                best_indices = np.argmax(similarities, axis=1)
                best_updates = prefix_maxima_count(similarities)
            else:
                best_indices = best_updates = np.zeros(len(group.member_indices), np.int64)
            if config.n_best > 1:
                finalize_cycles = _nbest_finalize_cycles(similarities, config.n_best)
                # Stable descending sort = the register file's tie rule
                # (equal similarities keep their level-1 list order).
                ranked_orders = np.argsort(
                    -similarities, axis=1, kind="stable"
                )[:, : config.n_best]
            else:
                finalize_cycles = np.full(
                    len(group.member_indices), columns.implementation_count, np.int64
                )
                ranked_orders = None
            for row, index in enumerate(group.member_indices):
                results[index] = self._assemble_hardware(
                    unit, group, columns, costs, similarities[row],
                    int(best_indices[row]), int(best_updates[row]),
                    int(finalize_cycles[row]),
                    None if ranked_orders is None else ranked_orders[row],
                )
        return results

    def hardware_cycles(
        self, unit: HardwareRetrievalUnit, requests: Sequence[FunctionRequest]
    ) -> List[int]:
        """Exact per-request cycle counts without assembling result objects.

        Same derivation as :meth:`hardware_batch` -- the shared
        :meth:`_hardware_group_costs` terms plus the per-request FINALIZE
        cycles -- but skipping ranking assembly and statistics objects.  For
        the baseline ``n_best == 1`` unit every request of a signature group
        costs exactly the same; only the n-best register file makes the count
        value-dependent.  The cosim differential suite asserts equality with
        the stepwise golden walk across all configuration axes.
        """
        config = unit.config
        if config.trace:
            raise HardwareModelError(
                "FSM tracing requires the stepwise cycle engine (engine='stepwise')"
            )
        columnar = unit.columnar_image()
        groups = _prepare_groups(
            columnar, requests, unit.encoded_request_words, HardwareModelError
        )
        cycles: List[int] = [0] * len(requests)
        for group in groups:
            columns = columnar.types[group.type_id]
            structural = _structural_counts(
                columnar, columns, group.attribute_ids,
                restart_search=config.restart_attribute_search,
            )
            costs = self._cached_hardware_group_costs(
                columnar, config, columns, structural, group.attribute_ids
            )
            if config.n_best > 1:
                similarities, _, _, _ = _similarity_kernel(
                    structural, group.values, group.weights,
                    use_divider=config.use_divider,
                    fraction_fmt=unit.fraction_format,
                    count_branches=False,
                )
                finalize_cycles = _nbest_finalize_cycles(similarities, config.n_best)
            else:
                finalize_cycles = np.full(
                    len(group.member_indices), columns.implementation_count, np.int64
                )
            for row, index in enumerate(group.member_indices):
                cycles[index] = costs.base_cycles + int(finalize_cycles[row])
        return cycles

    @classmethod
    def _cached_hardware_group_costs(
        cls,
        columnar: ColumnarImage,
        config: HardwareConfig,
        columns: TypeColumns,
        structural: _Structural,
        attribute_ids: Tuple[int, ...],
    ) -> "_HardwareGroupCosts":
        """Memoised :meth:`_hardware_group_costs` per (type, signature, config).

        The terms are value-independent, so hot serving signatures reuse them
        across batches; entries ride the columnar image's structural cache
        and are carried forward by the delta-patch path exactly like the
        structural quantities themselves.
        """
        cache = columnar.structural_cache
        key = (columns.type_id, attribute_ids, config, "hardware-costs")
        costs = cache.get(key)
        if costs is None:
            costs = cls._hardware_group_costs(
                config, columns, structural, len(attribute_ids)
            )
            if len(cache) >= _STRUCTURAL_CACHE_CAPACITY:
                cache.clear()
            cache[key] = costs
        return costs

    @staticmethod
    def _hardware_group_costs(
        config: HardwareConfig,
        columns: TypeColumns,
        structural: _Structural,
        request_count: int,
    ) -> "_HardwareGroupCosts":
        """Value-independent cost terms shared by every request of one group.

        Every term of the hardware cycle and memory-access accounting except
        the FINALIZE phase (n-best register-file compares) and the
        ``best_updates`` counter depends only on the group's structural
        quantities -- all requests sharing a ``(type, attribute-set)``
        signature therefore share these numbers.  Computing them once per
        group is both the single source of truth for
        :meth:`_assemble_hardware` and the whole trick behind the
        cycles-only prediction fast path (:meth:`hardware_cycles`).
        """
        implementation_count = columns.implementation_count
        position = columns.position
        matched_total = int(structural.matched.sum())
        missing_total = int(structural.missing.sum())
        probe_total = int(structural.probes.sum())
        supplemental_probes_per_walk = structural.supplemental_last + request_count
        walkers = (
            min(implementation_count, 1) if config.cache_reciprocals else implementation_count
        )

        request_block = request_count * (2 if config.wide_attribute_fetch else 3) + 1
        supplemental_walk = supplemental_probes_per_walk + request_count * (
            2 if config.use_divider else 1
        )
        search_value_loads = 0 if config.wide_attribute_fetch else matched_total
        compute_cycles = 1 if config.pipelined_datapath else 3
        if config.use_divider:
            compute_cycles = compute_cycles - 1 + HardwareConfig.DIVIDER_CYCLES
        accumulate_cycles = 1 if config.pipelined_datapath else 2

        return _HardwareGroupCosts(
            case_base_reads=(
                (position + 2)
                + (2 * implementation_count + 1)
                + walkers * supplemental_walk
                + probe_total
                + search_value_loads
            ),
            request_reads=1 + implementation_count * request_block,
            attribute_probes=probe_total,
            supplemental_probes=walkers * supplemental_probes_per_walk,
            missing_attributes=missing_total,
            base_cycles=(
                1  # fetch request type
                + (position + 2)  # level-0 search incl. pointer load
                + (2 * implementation_count + 1)  # implementation ID/pointer loads + terminator
                + implementation_count * request_block  # request attribute fetches
                + walkers * supplemental_walk
                + probe_total
                + search_value_loads
                + matched_total * compute_cycles
                + missing_total  # one cycle per missing attribute (s_i = 0)
                + matched_total * accumulate_cycles
                + 1  # deliver result
            ),
        )

    @staticmethod
    def _assemble_hardware(
        unit: HardwareRetrievalUnit,
        group: _Group,
        columns: TypeColumns,
        costs: "_HardwareGroupCosts",
        similarities: np.ndarray,
        best_index: int,
        best_updates: int,
        finalize_cycles: int,
        ranked_order: Optional[np.ndarray],
    ) -> HardwareRetrievalResult:
        config = unit.config
        implementation_count = columns.implementation_count
        statistics = HardwareStatistics(
            case_base_reads=costs.case_base_reads,
            request_reads=costs.request_reads,
            implementations_visited=implementation_count,
            attribute_probes=costs.attribute_probes,
            supplemental_probes=costs.supplemental_probes,
            missing_attributes=costs.missing_attributes,
            best_updates=best_updates,
        )
        statistics.cycles = costs.base_cycles + finalize_cycles

        if implementation_count:
            best_id = int(columns.impl_ids[best_index])
            best_raw = int(similarities[best_index])
        else:
            best_id, best_raw = 0, -1
        if ranked_order is not None:
            ranked = [
                (int(columns.impl_ids[int(i)]), int(similarities[int(i)]))
                for i in ranked_order
            ]
        else:
            ranked = [(best_id, best_raw)] if best_raw >= 0 else []
        return HardwareRetrievalResult(
            type_id=group.type_id,
            best_id=best_id,
            best_similarity_raw=max(best_raw, 0),
            ranked=ranked,
            statistics=statistics,
            clock_mhz=config.clock_mhz,
            fraction_format=unit.fraction_format,
            trace=None,
        )

    # -- software ------------------------------------------------------------------

    def software_batch(
        self, unit: SoftwareRetrievalUnit, requests: Sequence[FunctionRequest]
    ) -> List[SoftwareRetrievalResult]:
        columnar = unit.columnar_image()
        groups = _prepare_groups(
            columnar, requests, unit.encoded_request_words, SoftwareModelError
        )
        results: List[SoftwareRetrievalResult] = [None] * len(requests)  # type: ignore[list-item]
        for group in groups:
            columns = columnar.types[group.type_id]
            structural = _structural_counts(
                columnar, columns, group.attribute_ids, restart_search=False
            )
            similarities, negative, clamped, saturated = _similarity_kernel(
                structural, group.values, group.weights,
                use_divider=False,
                fraction_fmt=unit.fraction_format,
                count_branches=True,
            )
            if columns.implementation_count:
                best_indices = np.argmax(similarities, axis=1)
                best_updates = prefix_maxima_count(similarities)
            else:
                best_indices = best_updates = np.zeros(len(group.member_indices), np.int64)
            for row, index in enumerate(group.member_indices):
                results[index] = self._assemble_software(
                    unit, group, columns, structural,
                    similarities[row], int(negative[row]), int(clamped[row]), int(saturated[row]),
                    int(best_indices[row]), int(best_updates[row]),
                )
        return results

    def software_cycles(
        self, unit: SoftwareRetrievalUnit, requests: Sequence[FunctionRequest]
    ) -> List[int]:
        """Exact per-request cycle counts without assembling result objects.

        Mirrors :meth:`software_batch` up to the shared
        :meth:`_software_instruction_counters` accounting, then totals the
        counters against the unit's cost model directly -- no
        result/statistics construction.  Unlike the hardware unit, the
        soft-core's branch costs depend on the datapath outcomes (negative,
        clamped, saturated local similarities), so the similarity kernel
        still runs; only the assembly is skipped.  Differentially tested
        against the stepwise golden walk.
        """
        columnar = unit.columnar_image()
        groups = _prepare_groups(
            columnar, requests, unit.encoded_request_words, SoftwareModelError
        )
        cycles: List[int] = [0] * len(requests)
        cost_model = unit.cost_model
        for group in groups:
            columns = columnar.types[group.type_id]
            structural = _structural_counts(
                columnar, columns, group.attribute_ids, restart_search=False
            )
            similarities, negative, clamped, saturated = _similarity_kernel(
                structural, group.values, group.weights,
                use_divider=False,
                fraction_fmt=unit.fraction_format,
                count_branches=True,
            )
            if columns.implementation_count:
                best_updates = prefix_maxima_count(similarities)
            else:
                best_updates = np.zeros(len(group.member_indices), np.int64)
            for row, index in enumerate(group.member_indices):
                counters, _, _ = self._software_instruction_counters(
                    unit, group, columns, structural,
                    int(negative[row]), int(clamped[row]), int(saturated[row]),
                    int(best_updates[row]),
                )
                cycles[index] = counters.total_cycles(cost_model)
        return cycles

    @staticmethod
    def _software_instruction_counters(
        unit: SoftwareRetrievalUnit,
        group: _Group,
        columns: TypeColumns,
        structural: _Structural,
        negative: int,
        clamped: int,
        saturated: int,
        improved: int,
    ) -> tuple:
        """Emitted-instruction counters of one run: ``(counters, memory_reads,
        helper_calls)``.

        Shared by :meth:`_assemble_software` and the cycles-only
        :meth:`software_cycles` path -- the single source of truth for the
        soft-core instruction accounting.
        """
        inline = unit.inline_helpers
        request_count = len(group.attribute_ids)
        implementation_count = columns.implementation_count
        position = columns.position
        matched_total = int(structural.matched.sum())
        missing_total = int(structural.missing.sum())
        probe_total = int(structural.probes.sum())
        advance_total = probe_total - matched_total - missing_total
        supplemental_advances = structural.supplemental_last  # per scoring walk
        supplemental_probes = supplemental_advances + request_count
        #: main() plus, per implementation, the scoring helper, one
        #: supplemental and one attribute-search helper per request attribute
        #: and the local-similarity helper per matched attribute.
        helper_calls = (
            1
            + implementation_count * (1 + 2 * request_count)
            + matched_total
        )

        memory_reads = (
            1  # request type
            + (position + 2)  # type probes + implementation-list pointer
            + (2 * implementation_count + 1)  # implementation IDs/pointers + terminator
            + implementation_count * (3 * request_count + 1)  # request blocks + terminator
            + implementation_count * (supplemental_probes + request_count)  # probes + reciprocals
            + probe_total
            + matched_total  # attribute value loads
        )

        counts = {
            InstructionClass.LOAD: memory_reads + (0 if inline else 3 * helper_calls),
            InstructionClass.ALU: (
                4  # main() setup
                + (2 * position + 1)  # type search compares and pointer advances
                + 4 * implementation_count + 2 * improved + 1  # implementation loop
                + implementation_count * (4 * request_count + 1)  # request fetch loop
                + implementation_count * (2 * supplemental_advances + request_count)
                + 3 * advance_total + 3 * matched_total + missing_total  # attribute search
                + missing_total  # s_i = 0 assignment
                + 6 * matched_total + negative  # local similarity + accumulate
                + (0 if inline else 2 * helper_calls)  # stack pointer adjustments
            ),
            InstructionClass.IMMEDIATE: (
                4 + 2  # main() setup + best initialisation
                + 3 * implementation_count  # score_implementation() setup
                + clamped + saturated  # saturation constants
            ),
            InstructionClass.MULTIPLY: 2 * matched_total,
            InstructionClass.SHIFT: matched_total,
            InstructionClass.BRANCH_TAKEN: (
                position  # type-search advance branches
                + improved + implementation_count + 1  # implementation loop + terminator
                + implementation_count  # request-list terminator probes
                + implementation_count * 2 * supplemental_advances
                + probe_total  # every attribute-search probe branches once
                + missing_total  # s_i = 0 skip
                + negative + clamped + saturated + matched_total  # datapath + loop back
            ),
            InstructionClass.BRANCH_NOT_TAKEN: (
                1  # type match
                + implementation_count + (implementation_count - improved)
                + implementation_count * request_count  # request fetch compares
                + implementation_count * request_count  # supplemental match compares
                + 2 * advance_total + matched_total  # attribute-search compares
                + (matched_total - negative)
                + (matched_total - clamped)
                + (matched_total - saturated)
            ),
        }
        if not inline:
            counts[InstructionClass.STORE] = 3 * helper_calls
            counts[InstructionClass.CALL] = helper_calls
            counts[InstructionClass.RETURN] = helper_calls
        counters = InstructionCounters(
            counts={kind: count for kind, count in counts.items() if count > 0}
        )
        return counters, memory_reads, helper_calls

    @staticmethod
    def _assemble_software(
        unit: SoftwareRetrievalUnit,
        group: _Group,
        columns: TypeColumns,
        structural: _Structural,
        similarities: np.ndarray,
        negative: int,
        clamped: int,
        saturated: int,
        best_index: int,
        improved: int,
    ) -> SoftwareRetrievalResult:
        counters, memory_reads, helper_calls = (
            VectorizedCycleEngine._software_instruction_counters(
                unit, group, columns, structural, negative, clamped, saturated, improved
            )
        )
        implementation_count = columns.implementation_count
        missing_total = int(structural.missing.sum())
        inline = unit.inline_helpers

        if implementation_count:
            best_id = int(columns.impl_ids[best_index])
            best_raw = int(similarities[best_index])
        else:
            best_id, best_raw = 0, -1
        statistics = SoftwareStatistics(
            cycles=counters.total_cycles(unit.cost_model),
            instructions=counters.total_instructions(),
            memory_reads=memory_reads,
            implementations_visited=implementation_count,
            helper_calls=0 if inline else helper_calls,
            missing_attributes=missing_total,
        )
        return SoftwareRetrievalResult(
            type_id=group.type_id,
            best_id=best_id,
            best_similarity_raw=max(best_raw, 0),
            statistics=statistics,
            cost_model=unit.cost_model,
            counters=counters,
            fraction_format=unit.fraction_format,
        )
