"""Cycle-engine abstraction for the hardware/software co-simulation models.

Mirrors the :class:`~repro.core.backends.RetrievalBackend` protocol of the
reference engine: the stepwise cycle models
(:class:`~repro.hardware.retrieval_unit.HardwareRetrievalUnit` /
:class:`~repro.software.retrieval_sw.SoftwareRetrievalUnit` walking the word
image one access at a time) stay the golden reference, and a
:class:`CycleEngine` decides *how* a batch of retrieval runs is executed:

* :class:`StepwiseCycleEngine` -- one golden-model run per request;
* :class:`~repro.cosim.vectorized.VectorizedCycleEngine` -- the NumPy fast
  path that reproduces results *and* cycle/instruction/memory counters
  exactly (see that module for the accounting derivation).

Engines are stateless; all cached state (decoded columnar image, encoded
requests) lives on the retrieval units, keyed to the case-base revision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Union

from ..core.exceptions import ReproError
from ..core.request import FunctionRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..hardware.retrieval_unit import HardwareRetrievalResult, HardwareRetrievalUnit
    from ..software.retrieval_sw import SoftwareRetrievalResult, SoftwareRetrievalUnit


class CycleEngine:
    """Execution strategy for batches of cycle-accurate retrieval runs.

    Both batch methods are all-or-nothing: an erroneous request (unknown
    function type, empty constraint list, attribute without a bounds entry)
    raises the same exception the sequential golden model raises at that
    request, and no partial results are returned.
    """

    name = "abstract"

    def hardware_batch(
        self, unit: "HardwareRetrievalUnit", requests: Sequence[FunctionRequest]
    ) -> List["HardwareRetrievalResult"]:
        """Execute one hardware retrieval run per request."""
        raise NotImplementedError

    def software_batch(
        self, unit: "SoftwareRetrievalUnit", requests: Sequence[FunctionRequest]
    ) -> List["SoftwareRetrievalResult"]:
        """Execute one software retrieval run per request."""
        raise NotImplementedError

    def hardware_cycles(
        self, unit: "HardwareRetrievalUnit", requests: Sequence[FunctionRequest]
    ) -> List[int]:
        """Exact hardware cycle count per request, without result assembly.

        This is the prediction half of :meth:`hardware_batch`, used by QoS
        layers (the serving admission controller) that need service times but
        not rankings.  The default derives the counts from full runs -- the
        golden semantics; engines may override with an equivalent fast path.
        """
        return [result.cycles for result in self.hardware_batch(unit, requests)]

    def software_cycles(
        self, unit: "SoftwareRetrievalUnit", requests: Sequence[FunctionRequest]
    ) -> List[int]:
        """Exact software cycle count per request, without result assembly.

        The software-path counterpart of :meth:`hardware_cycles` (same QoS
        use, same default-derivation / fast-path-override contract).
        """
        return [result.cycles for result in self.software_batch(unit, requests)]


class StepwiseCycleEngine(CycleEngine):
    """The golden path: one full stepwise model walk per request."""

    name = "stepwise"

    def hardware_batch(
        self, unit: "HardwareRetrievalUnit", requests: Sequence[FunctionRequest]
    ) -> List["HardwareRetrievalResult"]:
        return [unit.run(request) for request in requests]

    def software_batch(
        self, unit: "SoftwareRetrievalUnit", requests: Sequence[FunctionRequest]
    ) -> List["SoftwareRetrievalResult"]:
        return [unit.run(request) for request in requests]


def _engines():
    """Late import of the vectorized engine (it imports the unit modules)."""
    from .vectorized import VectorizedCycleEngine

    return {
        StepwiseCycleEngine.name: StepwiseCycleEngine,
        VectorizedCycleEngine.name: VectorizedCycleEngine,
    }


def resolve_cycle_engine(
    spec: Union[str, CycleEngine, None], *, prefer_vectorized: bool = True
) -> CycleEngine:
    """Turn an engine spec (name, instance or ``None``/"auto") into an engine.

    ``"auto"`` (and ``None``) selects the vectorized fast path unless the
    caller reports a configuration the fast path cannot serve (currently:
    FSM tracing), in which case the stepwise golden model is used.
    """
    if isinstance(spec, CycleEngine):
        return spec
    engines = _engines()
    if spec is None or spec == "auto":
        name = "vectorized" if prefer_vectorized else "stepwise"
        return engines[name]()
    try:
        factory = engines[spec]
    except KeyError as exc:
        known = sorted(engines) + ["auto"]
        raise ReproError(f"unknown cycle engine {spec!r}; known: {known}") from exc
    return factory()
