"""Columnar (NumPy) view of an encoded :class:`~repro.memmap.image.CaseBaseImage`.

The stepwise cycle models re-walk the 16-bit word image one Python-level
memory access at a time.  The vectorized cycle engine instead decodes the
image *once* into per-type columnar arrays:

* the level-1 implementation list order and IDs,
* every implementation's level-2 attribute list as padded ``(I, M)`` ID and
  value matrices (pad entries carry an ID larger than any legal 16-bit word,
  so ascending-order comparisons treat them like the end-of-list terminator),
* the supplemental list's attribute IDs, pre-computed reciprocals and
  ``1 + dmax`` divisors as parallel arrays.

Decoding from the encoded words -- not from the live :class:`CaseBase` --
guarantees the fast path sees exactly the quantised values the stepwise
models read from CB-MEM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..memmap.image import CaseBaseImage
from ..memmap.implementation_tree import (
    IMPLEMENTATION_BLOCK_WORDS,
    TYPE_BLOCK_WORDS,
)
from ..memmap.supplemental_list import SUPPLEMENTAL_BLOCK_WORDS
from ..memmap.words import END_OF_LIST

#: Padding ID for absent attribute-list slots: compares greater than any
#: 16-bit attribute ID, so it never matches and never counts as ``< a``.
PAD_ID = 1 << 17


@dataclass(frozen=True)
class TypeColumns:
    """One function type's implementation variants in columnar form."""

    type_id: int
    #: 0-based position of the type's block in the level-0 list.
    position: int
    #: Implementation IDs in level-1 list (= ascending) order, shape ``(I,)``.
    impl_ids: np.ndarray
    #: Attribute IDs per implementation, shape ``(I, M)``, padded with PAD_ID.
    entry_ids: np.ndarray
    #: Attribute values per implementation, shape ``(I, M)``, 0 where padded.
    entry_values: np.ndarray
    #: Number of real attribute entries per implementation, shape ``(I,)``.
    entry_counts: np.ndarray

    @property
    def implementation_count(self) -> int:
        """Number of implementation variants of this type."""
        return int(self.impl_ids.shape[0])


class ColumnarImage:
    """All columnar arrays the vectorized cycle engine needs, decoded once.

    Parameters
    ----------
    image:
        The encoded memory image; its ``tree`` and ``supplemental`` word
        tuples are the single source of truth.
    """

    def __init__(self, image: CaseBaseImage) -> None:
        self.image = image
        self.fraction_format = image.fraction_format
        self.types: Dict[int, TypeColumns] = {}
        self._decode_tree(image.tree.words)
        self._decode_supplemental(image.supplemental.words)

    # -- decoding ------------------------------------------------------------------

    def _decode_tree(self, words: Tuple[int, ...]) -> None:
        # Level 0: type list order gives each type's search position.
        type_blocks: List[Tuple[int, int]] = []  # (type_id, impl list address)
        index = 0
        while words[index] != END_OF_LIST:
            type_blocks.append((words[index], words[index + 1]))
            index += TYPE_BLOCK_WORDS
        for position, (type_id, impl_list_address) in enumerate(type_blocks):
            self.types[type_id] = self._decode_type(words, type_id, position, impl_list_address)

    @staticmethod
    def _decode_type(
        words: Tuple[int, ...], type_id: int, position: int, impl_list_address: int
    ) -> TypeColumns:
        impl_blocks: List[Tuple[int, int]] = []  # (impl_id, attribute list address)
        index = impl_list_address
        while words[index] != END_OF_LIST:
            impl_blocks.append((words[index], words[index + 1]))
            index += IMPLEMENTATION_BLOCK_WORDS
        attribute_lists: List[List[Tuple[int, int]]] = []
        for _, attribute_address in impl_blocks:
            entries: List[Tuple[int, int]] = []
            index = attribute_address
            while words[index] != END_OF_LIST:
                entries.append((words[index], words[index + 1]))
                index += 2
            attribute_lists.append(entries)
        count = len(impl_blocks)
        width = max((len(entries) for entries in attribute_lists), default=0)
        entry_ids = np.full((count, width), PAD_ID, dtype=np.int64)
        entry_values = np.zeros((count, width), dtype=np.int64)
        entry_counts = np.zeros(count, dtype=np.int64)
        for row, entries in enumerate(attribute_lists):
            entry_counts[row] = len(entries)
            for column, (attribute_id, value) in enumerate(entries):
                entry_ids[row, column] = attribute_id
                entry_values[row, column] = value
        return TypeColumns(
            type_id=type_id,
            position=position,
            impl_ids=np.array([impl_id for impl_id, _ in impl_blocks], dtype=np.int64),
            entry_ids=entry_ids,
            entry_values=entry_values,
            entry_counts=entry_counts,
        )

    def _decode_supplemental(self, words: Tuple[int, ...]) -> None:
        ids: List[int] = []
        reciprocals: List[int] = []
        divisors: List[int] = []
        index = 0
        while words[index] != END_OF_LIST:
            attribute_id = words[index]
            lower, upper = words[index + 1], words[index + 2]
            ids.append(attribute_id)
            reciprocals.append(words[index + 3])
            divisors.append((upper - lower) + 1)
            index += SUPPLEMENTAL_BLOCK_WORDS
        #: Supplemental attribute IDs in (ascending) list order, shape ``(S,)``.
        self.supplemental_ids = np.array(ids, dtype=np.int64)
        #: Raw UQ0.16 reciprocals ``1/(1+dmax)`` parallel to the IDs.
        self.supplemental_reciprocals = np.array(reciprocals, dtype=np.int64)
        #: ``1 + dmax`` divisors for the iterative-divider design alternative.
        self.supplemental_divisors = np.array(divisors, dtype=np.int64)

    # -- lookups -------------------------------------------------------------------

    def type_columns(self, type_id: int) -> TypeColumns:
        """Columnar view of one function type (KeyError when unknown)."""
        return self.types[type_id]
