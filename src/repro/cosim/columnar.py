"""Columnar (NumPy) view of an encoded :class:`~repro.memmap.image.CaseBaseImage`.

The stepwise cycle models re-walk the 16-bit word image one Python-level
memory access at a time.  The vectorized cycle engine instead decodes the
image *once* into per-type columnar arrays:

* the level-1 implementation list order and IDs,
* every implementation's level-2 attribute list as padded ``(I, M)`` ID and
  value matrices (pad entries carry an ID larger than any legal 16-bit word,
  so ascending-order comparisons treat them like the end-of-list terminator),
* the supplemental list's attribute IDs, pre-computed reciprocals and
  ``1 + dmax`` divisors as parallel arrays.

Decoding from the encoded words -- not from the live :class:`CaseBase` --
guarantees the fast path sees exactly the quantised values the stepwise
models read from CB-MEM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..memmap.image import CaseBaseImage
from ..memmap.implementation_tree import (
    IMPLEMENTATION_BLOCK_WORDS,
    TYPE_BLOCK_WORDS,
)
from ..memmap.supplemental_list import SUPPLEMENTAL_BLOCK_WORDS
from ..memmap.words import END_OF_LIST

#: Padding ID for absent attribute-list slots: compares greater than any
#: 16-bit attribute ID, so it never matches and never counts as ``< a``.
PAD_ID = 1 << 17


def _insert_row(array: np.ndarray, index: int, row) -> np.ndarray:
    """Insert one row/element; plain concatenation beats ``np.insert``'s
    axis normalisation overhead on the small arrays of the delta hot path."""
    piece = np.asarray(row, dtype=array.dtype)
    if array.ndim > 1:
        piece = piece[None, ...]
    else:
        piece = piece.reshape(1)
    return np.concatenate([array[:index], piece, array[index:]])


def _delete_row(array: np.ndarray, index: int) -> np.ndarray:
    """Remove one row/element (see :func:`_insert_row`)."""
    return np.concatenate([array[:index], array[index + 1 :]])


@dataclass(frozen=True)
class TypeColumns:
    """One function type's implementation variants in columnar form."""

    type_id: int
    #: 0-based position of the type's block in the level-0 list.
    position: int
    #: Implementation IDs in level-1 list (= ascending) order, shape ``(I,)``.
    impl_ids: np.ndarray
    #: Attribute IDs per implementation, shape ``(I, M)``, padded with PAD_ID.
    entry_ids: np.ndarray
    #: Attribute values per implementation, shape ``(I, M)``, 0 where padded.
    entry_values: np.ndarray
    #: Number of real attribute entries per implementation, shape ``(I,)``.
    entry_counts: np.ndarray

    @property
    def implementation_count(self) -> int:
        """Number of implementation variants of this type."""
        return int(self.impl_ids.shape[0])

    def with_rows(
        self, patches: Dict[int, Optional[Tuple[Tuple[int, int], ...]]]
    ) -> Optional["TypeColumns"]:
        """Row-patched copy: ``impl_id -> encoded (ID, value) pairs`` or ``None``.

        ``None`` entries remove the implementation's row; pair tuples rewrite
        or insert it (rows stay in ascending implementation-ID order).  The
        result shares the untouched arrays' data where NumPy allows and keeps
        the existing pad width -- extra ``PAD_ID`` columns compare greater
        than any attribute ID, so they are invisible to the cycle models.
        Returns ``None`` when a patch needs more columns than the current
        width (the caller re-decodes the type from the image instead).
        """
        impl_ids = self.impl_ids
        entry_ids = self.entry_ids
        entry_values = self.entry_values
        entry_counts = self.entry_counts
        copied = False
        for implementation_id, pairs in sorted(patches.items()):
            index = int(np.searchsorted(impl_ids, implementation_id))
            exists = index < len(impl_ids) and impl_ids[index] == implementation_id
            if pairs is None:
                if not exists:
                    return None
                impl_ids = _delete_row(impl_ids, index)
                entry_ids = _delete_row(entry_ids, index)
                entry_values = _delete_row(entry_values, index)
                entry_counts = _delete_row(entry_counts, index)
                copied = True
                continue
            width = entry_ids.shape[1]
            if len(pairs) > width:
                return None
            row_ids = np.full(width, PAD_ID, dtype=np.int64)
            row_values = np.zeros(width, dtype=np.int64)
            for column, (attribute_id, value) in enumerate(pairs):
                row_ids[column] = attribute_id
                row_values[column] = value
            if exists:
                if not copied:
                    entry_ids = entry_ids.copy()
                    entry_values = entry_values.copy()
                    entry_counts = entry_counts.copy()
                    copied = True
                entry_ids[index] = row_ids
                entry_values[index] = row_values
                entry_counts[index] = len(pairs)
            else:
                impl_ids = _insert_row(impl_ids, index, implementation_id)
                entry_ids = _insert_row(entry_ids, index, row_ids)
                entry_values = _insert_row(entry_values, index, row_values)
                entry_counts = _insert_row(entry_counts, index, len(pairs))
                copied = True
        return TypeColumns(
            type_id=self.type_id,
            position=self.position,
            impl_ids=impl_ids,
            entry_ids=entry_ids,
            entry_values=entry_values,
            entry_counts=entry_counts,
        )


class ColumnarImage:
    """All columnar arrays the vectorized cycle engine needs, decoded once.

    Parameters
    ----------
    image:
        The encoded memory image; its ``tree`` and ``supplemental`` word
        tuples are the single source of truth.
    previous:
        Optional prior decode of an earlier revision of the same case base.
        Together with ``touched_types`` (the function types whose encoded
        content changed since ``previous`` was built -- the caller's delta
        summary), decoding reuses every untouched type's arrays and walks
        only the touched types, making the re-decode O(touched) instead of
        O(case base).  Positions shift cheaply when types were added or
        removed; the supplemental arrays are reused whenever the encoded
        supplemental words are unchanged.
    row_patches:
        Finer-grained still: per-type ``{impl_id: encoded attribute pairs or
        None}`` patches (see :meth:`TypeColumns.with_rows`) applied to the
        previous decode instead of re-walking the type's words.  A type whose
        patch cannot be applied in place falls back to the full type decode.
    """

    def __init__(
        self,
        image: CaseBaseImage,
        *,
        previous: Optional["ColumnarImage"] = None,
        touched_types: FrozenSet[int] = frozenset(),
        row_patches: Optional[Dict[int, Dict[int, Optional[Tuple]]]] = None,
    ) -> None:
        self.image = image
        self.fraction_format = image.fraction_format
        self.types: Dict[int, TypeColumns] = {}
        #: Memoisation surface for the vectorized cycle engine's per-signature
        #: structural quantities (see ``repro.cosim.vectorized``); entries are
        #: carried forward below for types whose arrays were reused unchanged.
        self.structural_cache: Dict[Tuple, object] = {}
        self._decode_tree(
            image.tree.words, previous, frozenset(touched_types), row_patches or {}
        )
        supplemental_reused = (
            previous is not None
            and previous.image.supplemental.words == image.supplemental.words
        )
        if supplemental_reused:
            self.supplemental_ids = previous.supplemental_ids
            self.supplemental_reciprocals = previous.supplemental_reciprocals
            self.supplemental_divisors = previous.supplemental_divisors
        else:
            self._decode_supplemental(image.supplemental.words)
        if supplemental_reused:
            for key, structural in previous.structural_cache.items():
                if self.types.get(key[0]) is previous.types.get(key[0]):
                    self.structural_cache[key] = structural

    # -- decoding ------------------------------------------------------------------

    def _decode_tree(
        self,
        words: Tuple[int, ...],
        previous: Optional["ColumnarImage"],
        touched: FrozenSet[int],
        row_patches: Dict[int, Dict[int, Optional[Tuple]]],
    ) -> None:
        if previous is not None and not touched:
            # Pure row-patch window: type membership (and hence the level-0
            # list and every position) is unchanged, so the previous decode
            # carries over wholesale and only the patched types are touched.
            self.types = dict(previous.types)
            for type_id, patches in row_patches.items():
                columns = self.types.get(type_id)
                patched = columns.with_rows(patches) if columns is not None else None
                if patched is None:
                    self.types = {}
                    break  # width growth or drift: fall through to the walk
                self.types[type_id] = patched
            else:
                return
        # Level 0: type list order gives each type's search position.
        type_blocks: List[Tuple[int, int]] = []  # (type_id, impl list address)
        index = 0
        while words[index] != END_OF_LIST:
            type_blocks.append((words[index], words[index + 1]))
            index += TYPE_BLOCK_WORDS
        for position, (type_id, impl_list_address) in enumerate(type_blocks):
            reusable = (
                previous.types.get(type_id)
                if previous is not None and type_id not in touched
                else None
            )
            if reusable is not None:
                patches = row_patches.get(type_id)
                if patches is not None:
                    reusable = reusable.with_rows(patches)
                if reusable is not None:
                    self.types[type_id] = (
                        reusable
                        if reusable.position == position
                        else replace(reusable, position=position)
                    )
                    continue
            self.types[type_id] = self._decode_type(words, type_id, position, impl_list_address)

    @staticmethod
    def _decode_type(
        words: Tuple[int, ...], type_id: int, position: int, impl_list_address: int
    ) -> TypeColumns:
        impl_blocks: List[Tuple[int, int]] = []  # (impl_id, attribute list address)
        index = impl_list_address
        while words[index] != END_OF_LIST:
            impl_blocks.append((words[index], words[index + 1]))
            index += IMPLEMENTATION_BLOCK_WORDS
        attribute_lists: List[List[Tuple[int, int]]] = []
        for _, attribute_address in impl_blocks:
            entries: List[Tuple[int, int]] = []
            index = attribute_address
            while words[index] != END_OF_LIST:
                entries.append((words[index], words[index + 1]))
                index += 2
            attribute_lists.append(entries)
        count = len(impl_blocks)
        width = max((len(entries) for entries in attribute_lists), default=0)
        entry_ids = np.full((count, width), PAD_ID, dtype=np.int64)
        entry_values = np.zeros((count, width), dtype=np.int64)
        entry_counts = np.zeros(count, dtype=np.int64)
        for row, entries in enumerate(attribute_lists):
            entry_counts[row] = len(entries)
            for column, (attribute_id, value) in enumerate(entries):
                entry_ids[row, column] = attribute_id
                entry_values[row, column] = value
        return TypeColumns(
            type_id=type_id,
            position=position,
            impl_ids=np.array([impl_id for impl_id, _ in impl_blocks], dtype=np.int64),
            entry_ids=entry_ids,
            entry_values=entry_values,
            entry_counts=entry_counts,
        )

    def _decode_supplemental(self, words: Tuple[int, ...]) -> None:
        ids: List[int] = []
        reciprocals: List[int] = []
        divisors: List[int] = []
        index = 0
        while words[index] != END_OF_LIST:
            attribute_id = words[index]
            lower, upper = words[index + 1], words[index + 2]
            ids.append(attribute_id)
            reciprocals.append(words[index + 3])
            divisors.append((upper - lower) + 1)
            index += SUPPLEMENTAL_BLOCK_WORDS
        #: Supplemental attribute IDs in (ascending) list order, shape ``(S,)``.
        self.supplemental_ids = np.array(ids, dtype=np.int64)
        #: Raw UQ0.16 reciprocals ``1/(1+dmax)`` parallel to the IDs.
        self.supplemental_reciprocals = np.array(reciprocals, dtype=np.int64)
        #: ``1 + dmax`` divisors for the iterative-divider design alternative.
        self.supplemental_divisors = np.array(divisors, dtype=np.int64)

    # -- lookups -------------------------------------------------------------------

    def type_columns(self, type_id: int) -> TypeColumns:
        """Columnar view of one function type (KeyError when unknown)."""
        return self.types[type_id]
