"""Cycle-engine co-simulation layer: batch execution of the cycle models.

Mirrors the pluggable-backend design of :mod:`repro.core.backends` for the
cycle-accurate hardware and software retrieval models: the stepwise models
remain the golden reference, and :class:`VectorizedCycleEngine` reproduces
their results *and* their exact cycle/instruction/memory-read counters from
columnar NumPy arrays, orders of magnitude faster on scenario-scale batches.
"""

from .columnar import ColumnarImage, TypeColumns
from .engine import CycleEngine, StepwiseCycleEngine, resolve_cycle_engine
from .vectorized import VectorizedCycleEngine

__all__ = [
    "ColumnarImage",
    "CycleEngine",
    "StepwiseCycleEngine",
    "TypeColumns",
    "VectorizedCycleEngine",
    "resolve_cycle_engine",
]
