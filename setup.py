"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so that legacy
installs (``python setup.py develop``) work on environments whose setuptools
lacks PEP 660 editable-wheel support (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
