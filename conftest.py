"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed into the active environment (the offline environment used for
development lacks the ``wheel`` package needed for PEP 660 editable installs,
so ``python setup.py develop`` or this path fallback are the supported ways to
run the suite).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
