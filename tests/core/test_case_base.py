"""Unit tests for the case base (function-implementation tree)."""

import pytest

from repro.core import (
    CaseBase,
    CaseBaseError,
    DeploymentInfo,
    DuplicateEntryError,
    ExecutionTarget,
    FunctionType,
    Implementation,
    UnknownFunctionTypeError,
    paper_case_base,
    paper_schema,
)


def _implementation(implementation_id=1, target=ExecutionTarget.FPGA, attributes=None):
    return Implementation(
        implementation_id=implementation_id,
        target=target,
        attributes=attributes if attributes is not None else {1: 16, 4: 44},
    )


class TestImplementation:
    def test_attribute_ids_are_sorted(self):
        implementation = _implementation(attributes={4: 44, 1: 16, 3: 2})
        assert implementation.attribute_ids() == [1, 3, 4]
        assert implementation.sorted_attributes() == [(1, 16), (3, 2), (4, 44)]

    def test_get_returns_none_for_missing(self):
        implementation = _implementation()
        assert implementation.get(1) == 16
        assert implementation.get(99) is None

    def test_invalid_ids_rejected(self):
        with pytest.raises(CaseBaseError):
            _implementation(implementation_id=0)
        with pytest.raises(CaseBaseError):
            _implementation(implementation_id=1 << 16)
        with pytest.raises(CaseBaseError):
            Implementation(1, ExecutionTarget.FPGA, attributes={0: 5})

    def test_target_must_be_enum(self):
        with pytest.raises(CaseBaseError):
            Implementation(1, "fpga", attributes={})  # type: ignore[arg-type]

    def test_with_attributes_copies(self):
        original = _implementation()
        updated = original.with_attributes({4: 48, 5: 1})
        assert updated.get(4) == 48 and updated.get(5) == 1
        assert original.get(4) == 44 and original.get(5) is None

    def test_execution_target_properties(self):
        assert ExecutionTarget.FPGA.is_reconfigurable
        assert not ExecutionTarget.DSP.is_reconfigurable
        assert ExecutionTarget.GPP.is_software and ExecutionTarget.DSP.is_software
        assert not ExecutionTarget.FPGA.is_software


class TestDeploymentInfo:
    def test_defaults_are_valid(self):
        info = DeploymentInfo()
        assert info.configuration_size_bytes == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"configuration_size_bytes": -1},
            {"area_slices": -2},
            {"power_mw": -0.5},
            {"load_fraction": 1.5},
            {"setup_time_us": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(CaseBaseError):
            DeploymentInfo(**kwargs)


class TestFunctionType:
    def test_add_and_sorted_iteration(self):
        function_type = FunctionType(1, "FIR")
        function_type.add(_implementation(3))
        function_type.add(_implementation(1))
        assert [impl.implementation_id for impl in function_type] == [1, 3]
        assert len(function_type) == 2
        assert 3 in function_type

    def test_duplicate_implementation_rejected(self):
        function_type = FunctionType(1)
        function_type.add(_implementation(1))
        with pytest.raises(DuplicateEntryError):
            function_type.add(_implementation(1))

    def test_remove_and_missing_lookup(self):
        function_type = FunctionType(1)
        function_type.add(_implementation(1))
        removed = function_type.remove(1)
        assert removed.implementation_id == 1
        with pytest.raises(CaseBaseError):
            function_type.get(1)
        with pytest.raises(CaseBaseError):
            function_type.remove(1)


class TestCaseBase:
    def test_add_type_by_id_and_lookup(self):
        case_base = CaseBase()
        case_base.add_type(5, name="FFT")
        assert 5 in case_base
        assert case_base.get_type(5).name == "FFT"
        with pytest.raises(DuplicateEntryError):
            case_base.add_type(5)

    def test_unknown_type_raises_dedicated_error(self):
        case_base = CaseBase()
        with pytest.raises(UnknownFunctionTypeError) as excinfo:
            case_base.get_type(9)
        assert excinfo.value.type_id == 9

    def test_revision_bumps_on_structural_changes(self):
        case_base = CaseBase()
        start = case_base.revision
        case_base.add_type(1)
        case_base.add_implementation(1, _implementation(1))
        case_base.remove_implementation(1, 1)
        case_base.remove_type(1)
        assert case_base.revision == start + 4

    def test_counts_and_attribute_ids(self):
        case_base = paper_case_base()
        assert len(case_base) == 2
        assert case_base.count_implementations() == 5
        assert case_base.attribute_ids() == [1, 2, 3, 4]
        assert case_base.count_attributes() == 4 * 3 + 3 * 2

    def test_global_key_is_unique_per_pair(self):
        assert CaseBase.global_key(1, 2) != CaseBase.global_key(2, 1)
        assert CaseBase.global_key(3, 7) == (3 << 16) | 7

    def test_derive_bounds_covers_observed_values(self):
        case_base = paper_case_base(include_fft=False)
        bounds = case_base.derive_bounds()
        assert bounds.get(1).lower == 8 and bounds.get(1).upper == 16
        assert bounds.get(4).lower == 22 and bounds.get(4).upper == 44

    def test_derive_bounds_with_extra_observations(self):
        case_base = paper_case_base(include_fft=False)
        bounds = case_base.derive_bounds({4: [8]})
        assert bounds.get(4).lower == 8

    def test_validate_detects_out_of_schema_attribute(self):
        case_base = CaseBase(schema=paper_schema())
        case_base.add_type(1)
        case_base.add_implementation(1, _implementation(1, attributes={99: 3}))
        with pytest.raises(CaseBaseError):
            case_base.validate()

    def test_validate_detects_out_of_bounds_value(self):
        case_base = paper_case_base()
        case_base.add_implementation(
            1, _implementation(9, attributes={4: 90})  # above the 44 kSamples/s bound
        )
        with pytest.raises(CaseBaseError):
            case_base.validate()

    def test_validate_accepts_paper_example(self):
        paper_case_base().validate()

    def test_replace_implementation_requires_existing(self):
        case_base = paper_case_base()
        replacement = _implementation(1, attributes={1: 16, 3: 2, 4: 48})
        case_base.replace_implementation(1, replacement)
        assert case_base.get_implementation(1, 1).get(4) == 48
        with pytest.raises(CaseBaseError):
            case_base.replace_implementation(1, _implementation(77))

    def test_copy_is_deep_for_structure(self):
        case_base = paper_case_base()
        duplicate = case_base.copy()
        duplicate.remove_implementation(1, 1)
        assert 1 in case_base.get_type(1)
        assert 1 not in duplicate.get_type(1)

    def test_round_trip_through_dict(self):
        case_base = paper_case_base()
        rebuilt = CaseBase.from_dict(case_base.to_dict(), schema=case_base.schema)
        assert rebuilt.type_ids() == case_base.type_ids()
        assert rebuilt.count_implementations() == case_base.count_implementations()
        original = case_base.get_implementation(1, 2)
        copy = rebuilt.get_implementation(1, 2)
        assert copy.attributes == original.attributes
        assert copy.target is original.target
        assert copy.deployment.power_mw == original.deployment.power_mw

    def test_all_implementations_iterates_in_id_order(self):
        case_base = paper_case_base()
        pairs = [(type_id, impl.implementation_id) for type_id, impl in case_base.all_implementations()]
        assert pairs == [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)]
