"""Tests for the direction-aware (asymmetric) local similarity extension."""

import pytest

from repro.core import (
    AsymmetricLocalSimilarity,
    LocalSimilarity,
    RetrievalEngine,
    paper_bounds,
    paper_case_base,
    paper_request,
    paper_schema,
)


@pytest.fixture
def bounds():
    return paper_bounds()


@pytest.fixture
def schema():
    return paper_schema()


class TestAsymmetricLocalSimilarity:
    def test_exceeding_a_higher_is_better_request_is_a_perfect_match(self, bounds, schema):
        measure = AsymmetricLocalSimilarity(bounds, schema=schema)
        # 44 kSamples/s offered against 40 requested: fully satisfying.
        assert measure.value(4, 40, 44) == 1.0
        # Undershooting is penalised exactly like eq. 1.
        symmetric = LocalSimilarity(bounds)
        assert measure.value(4, 40, 22) == pytest.approx(symmetric.value(4, 40, 22))

    def test_lower_is_better_direction(self, bounds):
        # Attribute 4 treated as "lower is better" via an explicit override
        # (think response deadline): offering 22 against a requested 40 is fine,
        # offering 44 is too slow and gets the eq. 1 penalty.
        measure = AsymmetricLocalSimilarity(bounds, directions={4: False})
        assert measure.value(4, 40, 22) == 1.0
        assert measure.value(4, 40, 44) == pytest.approx(1 - 4 / 37)

    def test_unknown_direction_falls_back_to_symmetric(self, bounds):
        measure = AsymmetricLocalSimilarity(bounds)
        symmetric = LocalSimilarity(bounds)
        assert measure.value(4, 40, 44) == pytest.approx(symmetric.value(4, 40, 44))

    def test_missing_attribute_still_scores_zero(self, bounds, schema):
        measure = AsymmetricLocalSimilarity(bounds, schema=schema)
        result = measure.similarity(4, 40, None)
        assert result.missing and result.similarity == 0.0

    def test_exact_match_is_still_one(self, bounds, schema):
        measure = AsymmetricLocalSimilarity(bounds, schema=schema)
        assert measure.value(1, 16, 16) == 1.0

    def test_explicit_override_beats_schema(self, bounds, schema):
        measure = AsymmetricLocalSimilarity(bounds, schema=schema, directions={4: False})
        assert measure.value(4, 40, 44) == pytest.approx(1 - 4 / 37)
        assert measure.value(4, 40, 22) == 1.0


class TestAsymmetricRetrieval:
    def test_paper_example_under_at_least_semantics(self):
        """With 'at least' semantics both the FPGA and the DSP variant fully
        satisfy the request (they meet or exceed every constraint), while the
        plain-software variant stays far behind.  Scores can only go up
        compared with the symmetric eq. 1."""
        case_base = paper_case_base()
        engine = RetrievalEngine(
            case_base,
            local_similarity=AsymmetricLocalSimilarity(case_base.bounds, schema=case_base.schema),
        )
        symmetric = RetrievalEngine(case_base)
        request = paper_request()
        asymmetric_result = engine.retrieve_n_best(request, 3)
        symmetric_result = symmetric.retrieve_n_best(request, 3)
        scores = {entry.implementation_id: entry.similarity for entry in asymmetric_result}
        assert scores[1] == pytest.approx(1.0)
        assert scores[2] == pytest.approx(1.0)
        assert scores[3] < 0.6
        symmetric_scores = {entry.implementation_id: entry.similarity for entry in symmetric_result}
        for implementation_id, value in scores.items():
            assert value >= symmetric_scores[implementation_id] - 1e-9
