"""Differential-equivalence tests for the pluggable retrieval backends.

The vectorized backend must be indistinguishable from the golden naive loop:
identical rankings, bit-identical similarities and identical algorithmic
statistics, across randomized case bases (including missing attributes),
every retrieval mode and the batch API.
"""

import pytest

from repro.core import (
    CaseBase,
    CaseReviser,
    ExecutionTarget,
    FunctionRequest,
    Implementation,
    MinimumAmalgamation,
    NaiveBackend,
    OutcomeRecord,
    RetrievalEngine,
    RetrievalError,
    ThresholdLocalSimilarity,
    UnknownFunctionTypeError,
    VectorizedBackend,
    get_retrieval_backend,
    paper_case_base,
    paper_request,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


RANDOM_SPECS = [
    GeneratorSpec(type_count=3, implementations_per_type=4,
                  attributes_per_implementation=4, attribute_type_count=6),
    GeneratorSpec(type_count=5, implementations_per_type=8,
                  attributes_per_implementation=6, attribute_type_count=9,
                  missing_probability=0.25),
    GeneratorSpec(type_count=2, implementations_per_type=16,
                  attributes_per_implementation=8, attribute_type_count=10,
                  missing_probability=0.4),
]


def engine_pair(case_base):
    naive = RetrievalEngine(case_base, backend="naive")
    vectorized = RetrievalEngine(case_base, backend="vectorized")
    assert naive.backend_name == "naive"
    assert vectorized.backend_name == "vectorized"
    return naive, vectorized


def assert_results_identical(reference, candidate):
    assert candidate.ids() == reference.ids()
    assert [entry.similarity for entry in candidate] == [
        entry.similarity for entry in reference
    ]
    assert candidate.statistics == reference.statistics
    assert candidate.threshold == reference.threshold
    assert candidate.request_type_id == reference.request_type_id


class TestBackendSelection:
    def test_names_resolve(self, paper_cb):
        assert RetrievalEngine(paper_cb).backend_name == "naive"
        assert RetrievalEngine(paper_cb, backend="reference").backend_name == "naive"
        assert RetrievalEngine(paper_cb, backend="vectorized").backend_name == "vectorized"

    def test_unknown_name_rejected(self, paper_cb):
        with pytest.raises(RetrievalError):
            RetrievalEngine(paper_cb, backend="cuda")
        with pytest.raises(RetrievalError):
            get_retrieval_backend("cuda")

    def test_instances_accepted(self, paper_cb):
        engine = RetrievalEngine(paper_cb, backend=VectorizedBackend())
        assert engine.backend_name == "vectorized"
        assert engine.backend.engine is engine

    def test_backend_cannot_serve_two_engines(self, paper_cb):
        backend = NaiveBackend()
        RetrievalEngine(paper_cb, backend=backend)
        with pytest.raises(RetrievalError):
            RetrievalEngine(paper_cb, backend=backend)

    def test_incompatible_amalgamation_falls_back_to_naive(self, paper_cb):
        engine = RetrievalEngine(
            paper_cb, backend="vectorized", amalgamation=MinimumAmalgamation()
        )
        assert engine.backend_name == "naive"

    def test_incompatible_local_similarity_falls_back_to_naive(self, paper_cb):
        custom = ThresholdLocalSimilarity(paper_cb.bounds, tolerance=2.0)
        engine = RetrievalEngine(paper_cb, backend="vectorized", local_similarity=custom)
        assert engine.backend_name == "naive"


@pytest.mark.parametrize("spec_index", range(len(RANDOM_SPECS)))
@pytest.mark.parametrize("seed", [1, 17])
class TestDifferentialEquivalence:
    def _engines(self, spec_index, seed):
        generator = CaseBaseGenerator(RANDOM_SPECS[spec_index], seed=seed)
        case_base = generator.case_base()
        naive, vectorized = engine_pair(case_base)
        requests = [
            generator.request(salt=salt, attribute_count=4) for salt in range(12)
        ]
        return naive, vectorized, requests

    def test_retrieve_best_identical(self, spec_index, seed):
        naive, vectorized, requests = self._engines(spec_index, seed)
        for request in requests:
            assert_results_identical(
                naive.retrieve_best(request), vectorized.retrieve_best(request)
            )

    def test_retrieve_n_best_identical(self, spec_index, seed):
        naive, vectorized, requests = self._engines(spec_index, seed)
        for request in requests:
            for n in (1, 2, 100):
                assert_results_identical(
                    naive.retrieve_n_best(request, n),
                    vectorized.retrieve_n_best(request, n),
                )

    def test_retrieve_above_threshold_identical(self, spec_index, seed):
        naive, vectorized, requests = self._engines(spec_index, seed)
        for request in requests:
            for threshold in (0.0, 0.5, 0.9, 1.0):
                assert_results_identical(
                    naive.retrieve_above_threshold(request, threshold),
                    vectorized.retrieve_above_threshold(request, threshold),
                )

    def test_combined_retrieve_identical(self, spec_index, seed):
        naive, vectorized, requests = self._engines(spec_index, seed)
        for request in requests:
            assert_results_identical(
                naive.retrieve(request, n=3, threshold=0.4),
                vectorized.retrieve(request, n=3, threshold=0.4),
            )

    def test_retrieve_batch_identical(self, spec_index, seed):
        naive, vectorized, requests = self._engines(spec_index, seed)
        for kwargs in ({}, {"n": 2}, {"threshold": 0.6}, {"n": 3, "threshold": 0.3}):
            naive_results = naive.retrieve_batch(requests, **kwargs)
            vector_results = vectorized.retrieve_batch(requests, **kwargs)
            assert len(naive_results) == len(vector_results) == len(requests)
            for reference, candidate in zip(naive_results, vector_results):
                assert_results_identical(reference, candidate)

    def test_score_all_identical(self, spec_index, seed):
        naive, vectorized, requests = self._engines(spec_index, seed)
        for request in requests:
            naive_scored = naive.score_all(request)
            vector_scored = vectorized.score_all(request)
            assert [entry.implementation_id for entry in naive_scored] == [
                entry.implementation_id for entry in vector_scored
            ]
            assert [entry.similarity for entry in naive_scored] == [
                entry.similarity for entry in vector_scored
            ]


class TestVectorizedStatistics:
    """Satellite bugfix: the vectorized backend must account algorithmic effort
    identically to the sequential scan, not report zeros."""

    def test_counters_match_paper_example(self, paper_cb, paper_req):
        naive, vectorized = engine_pair(paper_cb)
        reference = naive.retrieve_best(paper_req).statistics
        candidate = vectorized.retrieve_best(paper_req).statistics
        assert candidate == reference
        assert candidate.implementations_visited == 3
        assert candidate.attributes_requested == 9
        assert candidate.multiplications == 9
        assert candidate.best_updates >= 1

    def test_missing_attributes_counted(self):
        generator = CaseBaseGenerator(RANDOM_SPECS[1], seed=5)
        case_base = generator.case_base()
        naive, vectorized = engine_pair(case_base)
        request = generator.request(salt=9, attribute_count=6)
        reference = naive.retrieve_n_best(request, 4).statistics
        candidate = vectorized.retrieve_n_best(request, 4).statistics
        assert candidate == reference
        assert candidate.missing_attributes > 0
        assert (
            candidate.attribute_compares + candidate.missing_attributes
            == candidate.attribute_lookups
        )

    def test_batch_results_carry_per_request_statistics(self):
        generator = CaseBaseGenerator(RANDOM_SPECS[0], seed=2)
        case_base = generator.case_base()
        naive, vectorized = engine_pair(case_base)
        requests = [generator.request(salt=salt, attribute_count=3) for salt in range(6)]
        for reference, candidate in zip(
            naive.retrieve_batch(requests), vectorized.retrieve_batch(requests)
        ):
            assert candidate.statistics == reference.statistics
            assert candidate.statistics.implementations_visited > 0


class TestErrorParity:
    def test_unknown_type(self, paper_cb):
        naive, vectorized = engine_pair(paper_cb)
        request = FunctionRequest(999, [(1, 10)])
        for engine in (naive, vectorized):
            with pytest.raises(UnknownFunctionTypeError):
                engine.retrieve_best(request)

    def test_empty_type(self):
        case_base = CaseBase()
        case_base.add_type(1)
        naive, vectorized = engine_pair(case_base)
        for engine in (naive, vectorized):
            with pytest.raises(RetrievalError):
                engine.retrieve_best(FunctionRequest(1, [(1, 10)]))

    def test_empty_request(self, paper_cb):
        naive, vectorized = engine_pair(paper_cb)
        for engine in (naive, vectorized):
            with pytest.raises(RetrievalError):
                engine.retrieve_best(FunctionRequest(1, ()))

    def test_invalid_arguments(self, paper_cb, paper_req):
        naive, vectorized = engine_pair(paper_cb)
        for engine in (naive, vectorized):
            with pytest.raises(RetrievalError):
                engine.retrieve_n_best(paper_req, 0)
            with pytest.raises(RetrievalError):
                engine.retrieve_above_threshold(paper_req, 1.5)
            with pytest.raises(RetrievalError):
                engine.retrieve(paper_req, n=-2)

    def test_batch_validates_mode_arguments(self, paper_cb, paper_req):
        naive, vectorized = engine_pair(paper_cb)
        for engine in (naive, vectorized):
            with pytest.raises(RetrievalError):
                engine.retrieve_batch([paper_req], n=-1)
            with pytest.raises(RetrievalError):
                engine.retrieve_batch([paper_req], n=0)
            with pytest.raises(RetrievalError):
                engine.retrieve_batch([paper_req], threshold=2.0)

    def test_empty_batch_returns_empty_list(self, paper_cb):
        naive, vectorized = engine_pair(paper_cb)
        for engine in (naive, vectorized):
            assert engine.retrieve_batch([]) == []
            assert engine.retrieve_batch([], n=3) == []

    def test_all_zero_weights(self, paper_cb):
        request = FunctionRequest(
            1, [(1, 16, 0.0), (4, 40, 0.0)], normalize_weights=False
        )
        naive, vectorized = engine_pair(paper_cb)
        for engine in (naive, vectorized):
            with pytest.raises(RetrievalError):
                engine.retrieve_best(request)

    def test_batch_error_order_matches_sequential(self, paper_cb):
        """A zero-weight request earlier in the batch must win over a later
        unknown-type request on both backends, like sequential retrieval."""
        zero_weight = FunctionRequest(
            1, [(1, 16, 0.0)], normalize_weights=False
        )
        unknown_type = FunctionRequest(9999, [(1, 8)])
        naive, vectorized = engine_pair(paper_cb)
        for engine in (naive, vectorized):
            with pytest.raises(RetrievalError, match="weights must not all be zero"):
                engine.retrieve_batch([zero_weight, unknown_type])


class TestCacheInvalidation:
    def test_add_implementation_invalidates(self, paper_req):
        case_base = paper_case_base()
        engine = RetrievalEngine(case_base, backend="vectorized")
        before = engine.retrieve_best(paper_req)
        # A new variant that matches the request exactly must win immediately.
        case_base.add_implementation(
            1,
            Implementation(9, ExecutionTarget.FPGA, {1: 16, 3: 1, 4: 40}, name="exact"),
        )
        after = engine.retrieve_best(paper_req)
        assert before.best_id != 9
        assert after.best_id == 9
        assert after.best_similarity == pytest.approx(1.0)

    def test_remove_implementation_invalidates(self, paper_req):
        case_base = paper_case_base()
        engine = RetrievalEngine(case_base, backend="vectorized")
        winner = engine.retrieve_best(paper_req).best_id
        case_base.remove_implementation(1, winner)
        assert engine.retrieve_best(paper_req).best_id != winner

    def test_learning_revise_invalidates(self, paper_req):
        """The CBR revise step goes through replace_implementation and must be
        visible to the cached matrices (ISSUE: learning.py mutations)."""
        case_base = paper_case_base()
        naive = RetrievalEngine(case_base.copy(), backend="naive")
        vectorized = RetrievalEngine(case_base, backend="vectorized")
        outcome = OutcomeRecord(
            type_id=1, implementation_id=2, measured_attributes={4: 2}
        )
        reviser = CaseReviser(learning_rate=1.0)
        reviser.revise(vectorized.case_base, outcome)
        reviser.revise(naive.case_base, outcome)
        assert_results_identical(
            naive.retrieve_n_best(paper_req, 3), vectorized.retrieve_n_best(paper_req, 3)
        )

    def test_explicit_invalidate_after_in_place_mutation(self, paper_req):
        case_base = paper_case_base()
        engine = RetrievalEngine(case_base, backend="vectorized")
        engine.retrieve_best(paper_req)
        # In-place attribute mutation bypasses the revision counter...
        case_base.get_implementation(1, 2).attributes[4] = 9999
        # ...so an explicit invalidation is required to see it.
        engine.invalidate_cache()
        fresh = RetrievalEngine(case_base.copy(), backend="naive")
        assert_results_identical(
            fresh.retrieve_best(paper_req), engine.retrieve_best(paper_req)
        )

    def test_mixed_type_batch_after_mutation(self):
        generator = CaseBaseGenerator(RANDOM_SPECS[0], seed=8)
        case_base = generator.case_base()
        engine = RetrievalEngine(case_base, backend="vectorized")
        requests = [generator.request(salt=salt, attribute_count=3) for salt in range(8)]
        engine.retrieve_batch(requests)
        case_base.remove_implementation(1, 1)
        oracle = RetrievalEngine(case_base, backend="naive")
        for reference, candidate in zip(
            oracle.retrieve_batch(requests, n=2), engine.retrieve_batch(requests, n=2)
        ):
            assert_results_identical(reference, candidate)
