"""Unit tests of the delta-propagation substrate.

Covers the structured mutation log (:mod:`repro.core.deltas`), the shared
:class:`~repro.core.caching.RevisionTrackedCache` subscriber protocol, the
``CaseBase.copy()`` log-consistency guarantee, and the segmented tree
encoder's word-for-word parity with :func:`repro.memmap.encode_tree`.
"""

import random

import pytest

from repro.core import (
    BoundsTable,
    CaseBase,
    DeltaKind,
    DeltaLog,
    DeltaSummary,
    ExecutionTarget,
    Implementation,
    NetImplementationEvent,
    RevisionTrackedCache,
    deltas_preserve_derived_bounds,
)
from repro.core.deltas import CaseBaseDelta
from repro.memmap.implementation_tree import SegmentedTreeEncoder, encode_tree


def _case_base(bounds=True) -> CaseBase:
    table = BoundsTable()
    if bounds:
        for attribute_id in range(1, 6):
            table.define(attribute_id, 0, 100)
    case_base = CaseBase(bounds=table if bounds else None)
    for type_id in (1, 2):
        function_type = case_base.add_type(type_id, name=f"type-{type_id}")
        for implementation_id in (1, 2, 3):
            function_type.add(
                Implementation(
                    implementation_id,
                    ExecutionTarget.GPP,
                    {1: 10 * implementation_id, 2: 50, 3: type_id * 20},
                )
            )
    return case_base


# -- the mutation log ----------------------------------------------------------------


def test_mutators_log_typed_deltas():
    case_base = _case_base()
    base_revision = case_base.revision
    case_base.add_implementation(1, Implementation(9, ExecutionTarget.FPGA, {1: 5}))
    case_base.replace_implementation(1, Implementation(9, ExecutionTarget.FPGA, {1: 6}))
    case_base.remove_implementation(1, 9)
    removed_type = case_base.remove_type(2)
    case_base.bounds = case_base.bounds

    deltas = case_base.delta_log.since(base_revision)
    kinds = [delta.kind for delta in deltas]
    assert kinds == [
        DeltaKind.ADD_IMPLEMENTATION,
        DeltaKind.REPLACE_IMPLEMENTATION,
        DeltaKind.REMOVE_IMPLEMENTATION,
        DeltaKind.REMOVE_TYPE,
        DeltaKind.BOUNDS_CHANGED,
    ]
    assert [delta.revision for delta in deltas] == list(
        range(base_revision + 1, case_base.revision + 1)
    )
    assert deltas[0].implementation.attributes == {1: 5}
    assert deltas[1].previous.attributes == {1: 5}
    assert deltas[1].implementation.attributes == {1: 6}
    assert deltas[2].previous.attributes == {1: 6}
    assert deltas[3].function_type is removed_type


def test_since_returns_none_after_truncation():
    log = DeltaLog(capacity=3)
    for revision in range(1, 7):
        log.record(
            CaseBaseDelta(revision, DeltaKind.ADD_IMPLEMENTATION, type_id=1,
                          implementation_id=revision)
        )
    assert log.since(0) is None  # truncated window
    assert log.since(2) is None
    assert [d.revision for d in log.since(3)] == [4, 5, 6]
    assert log.since(6) == ()
    assert log.base_revision == 3


def test_summary_folds_net_events():
    impl_a = Implementation(7, ExecutionTarget.GPP, {1: 1})
    impl_b = Implementation(7, ExecutionTarget.GPP, {1: 2})

    def delta(revision, kind, **payload):
        return CaseBaseDelta(revision, kind, type_id=1, implementation_id=7, **payload)

    # add + replace folds to one net add carrying the latest object.
    summary = DeltaSummary([
        delta(1, DeltaKind.ADD_IMPLEMENTATION, implementation=impl_a),
        delta(2, DeltaKind.REPLACE_IMPLEMENTATION, implementation=impl_b, previous=impl_a),
    ])
    event = summary.impl_events[1][7]
    assert event.kind == NetImplementationEvent.ADDED
    assert event.implementation is impl_b

    # add + remove inside one window nets out entirely.
    summary = DeltaSummary([
        delta(1, DeltaKind.ADD_IMPLEMENTATION, implementation=impl_a),
        delta(2, DeltaKind.REMOVE_IMPLEMENTATION, previous=impl_a),
    ])
    assert summary.impl_events == {}
    assert summary.touched_types == frozenset()

    # remove + re-add is a net replacement.
    summary = DeltaSummary([
        delta(1, DeltaKind.REMOVE_IMPLEMENTATION, previous=impl_a),
        delta(2, DeltaKind.ADD_IMPLEMENTATION, implementation=impl_b),
    ])
    assert summary.impl_events[1][7].kind == NetImplementationEvent.REPLACED

    # replace + remove is a net removal.
    summary = DeltaSummary([
        delta(1, DeltaKind.REPLACE_IMPLEMENTATION, implementation=impl_b, previous=impl_a),
        delta(2, DeltaKind.REMOVE_IMPLEMENTATION, previous=impl_b),
    ])
    assert summary.impl_events[1][7].kind == NetImplementationEvent.REMOVED

    # type-level churn absorbs implementation events into a reset.
    summary = DeltaSummary([
        delta(1, DeltaKind.ADD_IMPLEMENTATION, implementation=impl_a),
        CaseBaseDelta(2, DeltaKind.REMOVE_TYPE, type_id=1),
        CaseBaseDelta(3, DeltaKind.ADD_TYPE, type_id=1),
        delta(4, DeltaKind.ADD_IMPLEMENTATION, implementation=impl_b),
    ])
    assert summary.reset_types == frozenset({1})
    assert summary.impl_events == {}
    assert summary.touched_types == frozenset({1})


def test_bounds_preservation_checks():
    bounds = BoundsTable()
    bounds.define(1, 0, 100)
    bounds.define(2, 10, 20)

    def add(attributes):
        return CaseBaseDelta(
            1, DeltaKind.ADD_IMPLEMENTATION, type_id=1, implementation_id=5,
            implementation=Implementation(5, ExecutionTarget.GPP, attributes),
        )

    def remove(attributes):
        return CaseBaseDelta(
            1, DeltaKind.REMOVE_IMPLEMENTATION, type_id=1, implementation_id=5,
            previous=Implementation(5, ExecutionTarget.GPP, attributes),
        )

    assert deltas_preserve_derived_bounds([add({1: 50, 2: 15})], bounds)
    assert not deltas_preserve_derived_bounds([add({1: 101})], bounds)  # outside
    assert not deltas_preserve_derived_bounds([add({3: 1})], bounds)  # new attribute
    assert deltas_preserve_derived_bounds([remove({1: 50})], bounds)  # mid-range
    assert not deltas_preserve_derived_bounds([remove({2: 20})], bounds)  # endpoint
    assert not deltas_preserve_derived_bounds(
        [CaseBaseDelta(1, DeltaKind.BOUNDS_CHANGED)], bounds
    )
    # A populated type addition is treated per member implementation.
    donor = _case_base()
    assert deltas_preserve_derived_bounds(
        [CaseBaseDelta(1, DeltaKind.ADD_TYPE, type_id=9,
                       function_type=donor.get_type(1))],
        donor.bounds,
    )


# -- the shared cache ----------------------------------------------------------------


def test_revision_tracked_cache_applies_incrementally():
    case_base = _case_base()
    seen = []
    cache = RevisionTrackedCache(
        case_base,
        rebuild=lambda: seen.append("rebuild"),
        apply=lambda summary: (seen.append(sorted(summary.touched_types)), True)[1],
    )
    cache.ensure_current()  # first sight: rebuild
    assert seen == ["rebuild"]
    cache.ensure_current()  # current: no-op
    assert seen == ["rebuild"]
    case_base.add_implementation(2, Implementation(8, ExecutionTarget.DSP, {1: 1}))
    cache.ensure_current()
    assert seen == ["rebuild", [2]]
    assert cache.rebuild_count == 1 and cache.incremental_count == 1
    cache.invalidate()
    cache.ensure_current()
    assert seen[-1] == "rebuild"


def test_revision_tracked_cache_falls_back_on_truncation_and_refusal():
    case_base = _case_base()
    case_base.delta_log = DeltaLog(capacity=2)
    calls = {"rebuild": 0, "apply": 0}

    def rebuild():
        calls["rebuild"] += 1

    def apply(summary):
        calls["apply"] += 1
        return False  # consumer refuses: must rebuild

    cache = RevisionTrackedCache(case_base, rebuild=rebuild, apply=apply)
    cache.ensure_current()
    case_base.add_implementation(1, Implementation(8, ExecutionTarget.DSP, {1: 1}))
    cache.ensure_current()
    assert calls == {"rebuild": 2, "apply": 1}

    # Truncated log: apply is never consulted.
    for implementation_id in range(9, 13):
        case_base.add_implementation(
            1, Implementation(implementation_id, ExecutionTarget.DSP, {1: 1})
        )
    cache.ensure_current()
    assert calls == {"rebuild": 3, "apply": 1}


# -- CaseBase.copy() log consistency -------------------------------------------------


def test_copy_rebases_log_and_never_leaks_source_deltas():
    case_base = _case_base()
    case_base.add_implementation(1, Implementation(7, ExecutionTarget.GPP, {1: 4}))
    snapshot = case_base.copy()
    assert snapshot.revision == case_base.revision
    assert len(snapshot.delta_log) == 0
    assert snapshot.delta_log.base_revision == snapshot.revision

    # Post-copy mutations of the source must not appear in the snapshot.
    copy_revision = snapshot.revision
    case_base.add_implementation(1, Implementation(8, ExecutionTarget.GPP, {1: 5}))
    case_base.remove_implementation(2, 1)
    assert snapshot.revision == copy_revision
    assert snapshot.delta_log.since(copy_revision) == ()
    assert 8 not in snapshot.get_type(1)
    assert 1 in snapshot.get_type(2)

    # And vice versa: snapshot mutations stay in the snapshot's log.
    snapshot.add_implementation(2, Implementation(9, ExecutionTarget.GPP, {1: 6}))
    assert case_base.delta_log.since(case_base.revision) == ()
    assert 9 not in case_base.get_type(2)

    # The documented staleness-snapshot idiom: a consumer of the snapshot
    # keeps serving the frozen contents while the source evolves.
    from repro.core import RetrievalEngine, FunctionRequest

    frozen = RetrievalEngine(snapshot, backend="vectorized")
    live = RetrievalEngine(case_base, backend="vectorized")
    request = FunctionRequest(1, [(1, 5)])
    assert 8 in [e.implementation_id for e in live.retrieve_n_best(request, 10)]
    assert 8 not in [e.implementation_id for e in frozen.retrieve_n_best(request, 10)]


# -- segmented tree encoder parity ---------------------------------------------------


def test_splice_window_with_shifting_and_growing_followers():
    """Regression: one window shifting a follower that itself grew past its
    old region (splice must not rebase pending followers' stale content)."""
    bounds = BoundsTable()
    for attribute_id in range(1, 6):
        bounds.define(attribute_id, 0, 100)
    case_base = CaseBase(bounds=bounds)
    first = case_base.add_type(1)
    first.add(Implementation(1, ExecutionTarget.GPP, {1: 5, 2: 6}))
    tiny = case_base.add_type(2)
    tiny.add(Implementation(1, ExecutionTarget.GPP, {1: 7}))
    encoder = SegmentedTreeEncoder()
    base_revision = case_base.revision
    encoder.encode_full(case_base)
    # One delta window: a tail retain into type 1 (shifts type 2's base) plus
    # three retains into tiny type 2 (its new segment outgrows its old words).
    case_base.add_implementation(1, Implementation(2, ExecutionTarget.GPP, {1: 9, 2: 10, 3: 11}))
    for implementation_id in (2, 3, 4):
        case_base.add_implementation(
            2, Implementation(implementation_id, ExecutionTarget.GPP, {1: 20 + implementation_id})
        )
    summary = case_base.delta_log.summary_since(base_revision)
    spliced = encoder.encode_update(case_base, summary)
    fresh = encode_tree(case_base)
    assert spliced.words == fresh.words
    assert spliced.address_map.attribute_lists == fresh.address_map.attribute_lists


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_segmented_encoder_matches_encode_tree_under_mutations(seed):
    rng = random.Random(seed)
    case_base = _case_base()
    encoder = SegmentedTreeEncoder()

    def apply(summary):
        encoder.encode_update(case_base, summary)
        return True

    tracked = RevisionTrackedCache(
        case_base, rebuild=lambda: encoder.encode_full(case_base), apply=apply
    )
    tracked.ensure_current()
    next_id = 50
    for step in range(25):
        choice = rng.random()
        type_ids = case_base.type_ids()
        if choice < 0.45:
            type_id = rng.choice(type_ids)
            attributes = {a: rng.randint(0, 100) for a in rng.sample(range(1, 6), 3)}
            case_base.add_implementation(
                type_id, Implementation(next_id, ExecutionTarget.GPP, attributes)
            )
            next_id += 1
        elif choice < 0.65:
            type_id = rng.choice(type_ids)
            implementations = case_base.implementations(type_id)
            if len(implementations) > 1:
                case_base.remove_implementation(
                    type_id, rng.choice(implementations).implementation_id
                )
        elif choice < 0.85:
            type_id = rng.choice(type_ids)
            implementation = rng.choice(case_base.implementations(type_id))
            case_base.replace_implementation(
                type_id, implementation.with_attributes({1: rng.randint(0, 100)})
            )
        elif choice < 0.95 and len(type_ids) > 1:
            case_base.remove_type(rng.choice(type_ids))
        else:
            case_base.add_type(30 + step, name=f"grown-{step}")
            case_base.add_implementation(
                30 + step, Implementation(1, ExecutionTarget.FPGA, {1: step % 100})
            )
        tracked.ensure_current()
        fresh = encode_tree(case_base)
        latest = encoder.encode_update(case_base, DeltaSummary(()))  # no-op reassembly
        assert latest.words == fresh.words
        assert latest.address_map.implementation_lists == fresh.address_map.implementation_lists
        assert latest.address_map.attribute_lists == fresh.address_map.attribute_lists
    assert tracked.incremental_count > 0
