"""Unit tests for the reference retrieval engine."""

import pytest

from repro.core import (
    CaseBase,
    ExecutionTarget,
    FunctionRequest,
    Implementation,
    MinimumAmalgamation,
    RetrievalEngine,
    RetrievalError,
    UnknownFunctionTypeError,
    paper_case_base,
    paper_request,
)


class TestScoring:
    def test_score_breaks_down_local_similarities(self, paper_engine, paper_req, paper_cb):
        implementation = paper_cb.get_implementation(1, 2)
        scored = paper_engine.score(paper_req, implementation)
        assert scored.similarity == pytest.approx(0.964, abs=0.001)
        assert len(scored.local_similarities) == 3
        by_attribute = {value.attribute_id: value for value in scored.local_similarities}
        assert by_attribute[3].similarity == pytest.approx(1.0)
        assert by_attribute[4].distance == 4

    def test_missing_attribute_scores_zero_locally(self, paper_engine, paper_cb):
        request = FunctionRequest(2, [(1, 16), (3, 1)])
        implementation = paper_cb.get_implementation(2, 1)  # FFT has no output mode
        scored = paper_engine.score(request, implementation)
        missing = [v for v in scored.local_similarities if v.attribute_id == 3][0]
        assert missing.missing and missing.similarity == 0.0

    def test_empty_request_rejected(self, paper_engine, paper_cb):
        with pytest.raises(RetrievalError):
            paper_engine.score(FunctionRequest(1, ()), paper_cb.get_implementation(1, 1))

    def test_statistics_accumulate(self, paper_engine, paper_req):
        result = paper_engine.retrieve_best(paper_req)
        stats = result.statistics
        assert stats.implementations_visited == 3
        assert stats.attributes_requested == 9
        assert stats.attribute_lookups == 9
        assert stats.best_updates >= 1


class TestRetrieveBest:
    def test_paper_example_best_is_dsp(self, paper_engine, paper_req):
        result = paper_engine.retrieve_best(paper_req)
        assert result.best_id == 2
        assert result.best_similarity == pytest.approx(0.964, abs=0.001)

    def test_unknown_type_raises(self, paper_engine):
        with pytest.raises(UnknownFunctionTypeError):
            paper_engine.retrieve_best(FunctionRequest(77, [(1, 16)]))

    def test_type_without_implementations_raises(self):
        case_base = CaseBase()
        case_base.add_type(1)
        engine = RetrievalEngine(case_base)
        with pytest.raises(RetrievalError):
            engine.retrieve_best(FunctionRequest(1, [(1, 16)]))

    def test_tie_keeps_first_visited(self):
        case_base = CaseBase()
        function_type = case_base.add_type(1)
        function_type.add(Implementation(1, ExecutionTarget.FPGA, {1: 10}))
        function_type.add(Implementation(2, ExecutionTarget.DSP, {1: 10}))
        result = RetrievalEngine(case_base).retrieve_best(FunctionRequest(1, [(1, 10)]))
        assert result.best_id == 1
        assert result.statistics.best_updates == 1


class TestNBestAndThreshold:
    def test_n_best_returns_ranked_order(self, paper_engine, paper_req):
        result = paper_engine.retrieve_n_best(paper_req, 3)
        assert result.ids() == [2, 1, 3]
        similarities = [entry.similarity for entry in result]
        assert similarities == sorted(similarities, reverse=True)

    def test_n_best_truncates(self, paper_engine, paper_req):
        assert len(paper_engine.retrieve_n_best(paper_req, 2)) == 2
        assert len(paper_engine.retrieve_n_best(paper_req, 10)) == 3

    def test_n_must_be_positive(self, paper_engine, paper_req):
        with pytest.raises(RetrievalError):
            paper_engine.retrieve_n_best(paper_req, 0)

    def test_threshold_rejects_low_similarity(self, paper_engine, paper_req):
        result = paper_engine.retrieve_above_threshold(paper_req, 0.5)
        assert result.ids() == [2, 1]
        assert result.threshold == 0.5
        all_results = paper_engine.retrieve_above_threshold(paper_req, 0.0)
        assert len(all_results) == 3

    def test_threshold_validation(self, paper_engine, paper_req):
        with pytest.raises(RetrievalError):
            paper_engine.retrieve_above_threshold(paper_req, 1.5)

    def test_combined_retrieve_applies_both(self, paper_engine, paper_req):
        result = paper_engine.retrieve(paper_req, n=2, threshold=0.9)
        assert result.ids() == [2]
        default = paper_engine.retrieve(paper_req)
        assert default.best_id == 2 and len(default) == 1

    def test_combined_retrieve_validates_arguments(self, paper_engine, paper_req):
        with pytest.raises(RetrievalError):
            paper_engine.retrieve(paper_req, n=-1)
        with pytest.raises(RetrievalError):
            paper_engine.retrieve(paper_req, threshold=2.0)

    def test_empty_result_has_none_best(self, paper_engine, paper_req):
        result = paper_engine.retrieve_above_threshold(paper_req, 0.99)
        assert result.best is None and result.best_id is None
        assert result.best_similarity is None


class TestAlternativeAmalgamation:
    def test_minimum_amalgamation_changes_winner_sensitivity(self, paper_cb, paper_req):
        engine = RetrievalEngine(paper_cb, amalgamation=MinimumAmalgamation())
        result = engine.retrieve_n_best(paper_req, 3)
        # With worst-constraint semantics the DSP variant still wins (all its
        # constraints are close), but the FPGA variant drops because of its
        # surround-vs-stereo mismatch.
        assert result.ids()[0] == 2
        assert result.ranked[1].similarity <= 1 - 1 / 3 + 1e-9


class TestRelaxedRerequest:
    def test_relaxed_request_gives_low_end_variant_a_chance(self, paper_engine, paper_req):
        """Section 3: repeating the request with relaxed constraints."""
        strict = paper_engine.retrieve_above_threshold(paper_req, 0.5)
        assert 3 not in strict.ids()
        relaxed = paper_req.relaxed({4: 0.5, 1: 0.5})
        relaxed_result = paper_engine.retrieve_above_threshold(relaxed, 0.5)
        assert 3 in relaxed_result.ids()
