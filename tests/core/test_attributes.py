"""Unit tests for the attribute type system, schemas and bounds tables."""

import pytest

from repro.core import (
    AttributeBounds,
    AttributeSchema,
    AttributeType,
    BoundsTable,
    SchemaError,
    paper_bounds,
    paper_schema,
)


class TestAttributeType:
    def test_basic_construction(self):
        attribute = AttributeType(1, "bitwidth", unit="bit")
        assert attribute.attribute_id == 1
        assert not attribute.is_symbolic

    def test_rejects_non_positive_id(self):
        with pytest.raises(SchemaError):
            AttributeType(0, "zero")
        with pytest.raises(SchemaError):
            AttributeType(-3, "negative")

    def test_rejects_id_wider_than_16_bits(self):
        with pytest.raises(SchemaError):
            AttributeType(1 << 16, "too-wide")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            AttributeType(1, "")

    def test_symbol_encoding_round_trip(self):
        attribute = AttributeType(3, "output_mode", symbols=("mono", "stereo", "surround"))
        assert attribute.is_symbolic
        assert attribute.encode_symbol("stereo") == 1
        assert attribute.decode_symbol(2) == "surround"

    def test_unknown_symbol_raises(self):
        attribute = AttributeType(3, "output_mode", symbols=("mono", "stereo"))
        with pytest.raises(SchemaError):
            attribute.encode_symbol("quadrophonic")

    def test_decode_out_of_range_raises(self):
        attribute = AttributeType(3, "output_mode", symbols=("mono", "stereo"))
        with pytest.raises(SchemaError):
            attribute.decode_symbol(5)

    def test_decode_on_numeric_attribute_raises(self):
        attribute = AttributeType(1, "bitwidth")
        with pytest.raises(SchemaError):
            attribute.decode_symbol(0)

    def test_coerce_accepts_numbers_and_symbols(self):
        attribute = AttributeType(3, "output_mode", symbols=("mono", "stereo"))
        assert attribute.coerce("stereo") == 1
        assert attribute.coerce(0) == 0


class TestAttributeSchema:
    def test_define_and_lookup(self):
        schema = AttributeSchema()
        schema.define(1, "bitwidth")
        schema.define(4, "sampling_rate", unit="kSamples/s")
        assert 1 in schema and 4 in schema
        assert schema.get(4).unit == "kSamples/s"
        assert schema.by_name("bitwidth").attribute_id == 1
        assert schema.ids() == [1, 4]

    def test_duplicate_id_rejected(self):
        schema = AttributeSchema()
        schema.define(1, "bitwidth")
        with pytest.raises(SchemaError):
            schema.define(1, "other")

    def test_duplicate_name_rejected(self):
        schema = AttributeSchema()
        schema.define(1, "bitwidth")
        with pytest.raises(SchemaError):
            schema.define(2, "bitwidth")

    def test_unknown_lookups_raise(self):
        schema = AttributeSchema()
        with pytest.raises(SchemaError):
            schema.get(7)
        with pytest.raises(SchemaError):
            schema.by_name("missing")

    def test_iteration_is_sorted_by_id(self):
        schema = AttributeSchema()
        schema.define(9, "late")
        schema.define(2, "early")
        assert [a.attribute_id for a in schema] == [2, 9]

    def test_coerce_through_schema(self):
        schema = paper_schema()
        assert schema.coerce(3, "surround") == 2
        assert schema.coerce(1, 16) == 16


class TestAttributeBounds:
    def test_dmax_and_reciprocal(self):
        bounds = AttributeBounds(4, 8, 44)
        assert bounds.dmax == 36
        assert bounds.reciprocal == pytest.approx(1.0 / 37.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(SchemaError):
            AttributeBounds(1, 10, 5)

    def test_contains_and_clamp(self):
        bounds = AttributeBounds(1, 8, 16)
        assert bounds.contains(8) and bounds.contains(16)
        assert not bounds.contains(17)
        assert bounds.clamp(20) == 16
        assert bounds.clamp(1) == 8
        assert bounds.clamp(12) == 12

    def test_zero_width_range(self):
        bounds = AttributeBounds(2, 5, 5)
        assert bounds.dmax == 0
        assert bounds.reciprocal == 1.0


class TestBoundsTable:
    def test_define_and_query(self):
        table = BoundsTable()
        table.define(1, 8, 16)
        assert table.dmax(1) == 8
        assert 1 in table and 2 not in table
        assert table.ids() == [1]

    def test_duplicate_rejected(self):
        table = BoundsTable()
        table.define(1, 0, 1)
        with pytest.raises(SchemaError):
            table.define(1, 0, 2)

    def test_missing_lookup_raises(self):
        with pytest.raises(SchemaError):
            BoundsTable().get(1)

    def test_from_observations(self):
        table = BoundsTable.from_observations({1: [8, 16, 12], 4: [22, 44]})
        assert table.get(1).lower == 8 and table.get(1).upper == 16
        assert table.dmax(4) == 22

    def test_from_observations_rejects_empty(self):
        with pytest.raises(SchemaError):
            BoundsTable.from_observations({1: []})

    def test_merged_with_takes_widest_range(self):
        a = BoundsTable([AttributeBounds(1, 0, 10), AttributeBounds(2, 5, 6)])
        b = BoundsTable([AttributeBounds(1, 5, 20), AttributeBounds(3, 0, 1)])
        merged = a.merged_with(b)
        assert merged.get(1).lower == 0 and merged.get(1).upper == 20
        assert merged.ids() == [1, 2, 3]

    def test_paper_bounds_match_table1_dmax(self):
        bounds = paper_bounds()
        assert bounds.dmax(1) == 8
        assert bounds.dmax(3) == 2
        assert bounds.dmax(4) == 36
