"""Unit tests for function requests and the request builder."""

import pytest

from repro.core import (
    FunctionRequest,
    RequestAttribute,
    RequestBuilder,
    RequestError,
    paper_request,
    paper_schema,
)


class TestRequestAttribute:
    def test_invalid_id_rejected(self):
        with pytest.raises(RequestError):
            RequestAttribute(0, 5)

    def test_negative_weight_rejected(self):
        with pytest.raises(RequestError):
            RequestAttribute(1, 5, -0.1)


class TestFunctionRequest:
    def test_weights_are_normalised_by_default(self):
        request = FunctionRequest(1, [(1, 16), (3, 1), (4, 40)])
        weights = request.weights()
        assert weights[1] == pytest.approx(1.0 / 3.0)
        assert request.total_weight() == pytest.approx(1.0)

    def test_unequal_weights_normalise_proportionally(self):
        request = FunctionRequest(1, [(1, 16, 1.0), (4, 40, 3.0)])
        weights = request.weights()
        assert weights[1] == pytest.approx(0.25)
        assert weights[4] == pytest.approx(0.75)

    def test_normalisation_can_be_disabled(self):
        request = FunctionRequest(1, [(1, 16, 0.5), (4, 40, 0.5)], normalize_weights=False)
        assert request.total_weight() == pytest.approx(1.0)
        request = FunctionRequest(1, [(1, 16, 2.0)], normalize_weights=False)
        assert request.get(1).weight == 2.0

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(RequestError):
            FunctionRequest(1, [(1, 16), (1, 8)])

    def test_invalid_type_id_rejected(self):
        with pytest.raises(RequestError):
            FunctionRequest(0, [(1, 16)])
        with pytest.raises(RequestError):
            FunctionRequest(1 << 16, [(1, 16)])

    def test_bad_entry_shape_rejected(self):
        with pytest.raises(RequestError):
            FunctionRequest(1, [(1,)])

    def test_normalise_empty_or_zero_weights_raises(self):
        with pytest.raises(RequestError):
            FunctionRequest(1, [(1, 16, 0.0), (2, 3, 0.0)])
        request = FunctionRequest(1, ())
        assert len(request) == 0

    def test_sorted_attributes_and_contains(self):
        request = FunctionRequest(1, [(4, 40), (1, 16)])
        assert request.attribute_ids() == [1, 4]
        assert 4 in request and 9 not in request
        assert [a.attribute_id for a in request] == [1, 4]

    def test_values_and_get(self):
        request = paper_request()
        assert request.values() == {1: 16, 3: 1, 4: 40}
        assert request.get(3).value == 1
        with pytest.raises(RequestError):
            request.get(2)

    def test_signature_is_stable_and_distinguishes_requests(self):
        a = FunctionRequest(1, [(1, 16), (4, 40)])
        b = FunctionRequest(1, [(4, 40), (1, 16)])
        c = FunctionRequest(1, [(1, 16), (4, 44)])
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()
        assert hash(a.signature()) == hash(b.signature())

    def test_relaxed_scales_selected_attributes(self):
        request = paper_request()
        relaxed = request.relaxed({4: 0.5})
        assert relaxed.get(4).value == pytest.approx(20)
        assert relaxed.get(1).value == 16
        assert relaxed.requester == request.requester

    def test_without_drops_constraints_and_renormalises(self):
        request = paper_request()
        reduced = request.without([3])
        assert reduced.attribute_ids() == [1, 4]
        assert reduced.total_weight() == pytest.approx(1.0)
        emptied = request.without([1, 3, 4])
        assert len(emptied) == 0


class TestRequestBuilder:
    def test_builds_paper_request_from_names(self):
        builder = RequestBuilder(paper_schema(), type_id=1, requester="audio-app")
        request = (
            builder.constrain("bitwidth", 16)
            .constrain("output_mode", "stereo")
            .constrain("sampling_rate", 40)
            .build()
        )
        assert request.values() == paper_request().values()
        assert request.requester == "audio-app"

    def test_weights_pass_through(self):
        builder = RequestBuilder(paper_schema(), type_id=1)
        request = builder.constrain("bitwidth", 16, weight=3.0).constrain(
            "sampling_rate", 40, weight=1.0
        ).build()
        assert request.get(1).weight == pytest.approx(0.75)

    def test_unknown_name_raises(self):
        builder = RequestBuilder(paper_schema(), type_id=1)
        with pytest.raises(Exception):
            builder.constrain("nonexistent", 1)
