"""Unit tests for the amalgamation (global similarity) functions."""

import pytest

from repro.core import (
    AMALGAMATIONS,
    MaximumAmalgamation,
    MinimumAmalgamation,
    RetrievalError,
    WeightedGeometricMean,
    WeightedSum,
    get_amalgamation,
    verify_amalgamation_properties,
)


class TestWeightedSum:
    def test_equation_2_on_table1_rows(self):
        """Recomputes the three S_global values of Table 1."""
        weighted_sum = WeightedSum()
        weights = [1 / 3] * 3
        fpga = weighted_sum.combine([1.0, 1 - 1 / 3, 1 - 4 / 37], weights)
        dsp = weighted_sum.combine([1.0, 1.0, 1 - 4 / 37], weights)
        gpp = weighted_sum.combine([1 - 8 / 9, 1 - 1 / 3, 1 - 18 / 37], weights)
        assert fpga == pytest.approx(0.85, abs=0.005)
        assert dsp == pytest.approx(0.96, abs=0.005)
        assert gpp == pytest.approx(0.43, abs=0.005)

    def test_boundary_conditions(self):
        weighted_sum = WeightedSum()
        assert weighted_sum.combine([0, 0, 0], [1, 1, 1]) == 0.0
        assert weighted_sum.combine([1, 1, 1], [1, 1, 1]) == pytest.approx(1.0)

    def test_weights_are_normalised_internally(self):
        weighted_sum = WeightedSum()
        assert weighted_sum.combine([0.5, 1.0], [2, 2]) == pytest.approx(0.75)
        assert weighted_sum.combine([0.5, 1.0], [0.5, 0.5]) == pytest.approx(0.75)

    def test_length_mismatch_rejected(self):
        with pytest.raises(RetrievalError):
            WeightedSum().combine([1.0], [0.5, 0.5])

    def test_empty_vector_rejected(self):
        with pytest.raises(RetrievalError):
            WeightedSum().combine([], [])

    def test_negative_weight_rejected(self):
        with pytest.raises(RetrievalError):
            WeightedSum().combine([1.0], [-1.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(RetrievalError):
            WeightedSum().combine([1.0, 0.5], [0.0, 0.0])


class TestOtherAmalgamations:
    def test_minimum_picks_worst(self):
        assert MinimumAmalgamation().combine([0.9, 0.2, 0.7], [1, 1, 1]) == 0.2

    def test_minimum_ignores_zero_weight_entries(self):
        assert MinimumAmalgamation().combine([0.9, 0.2], [1, 0]) == 0.9

    def test_maximum_picks_best(self):
        assert MaximumAmalgamation().combine([0.1, 0.8, 0.3], [1, 1, 1]) == 0.8

    def test_geometric_mean_penalises_poor_match_more_than_sum(self):
        weights = [0.5, 0.5]
        values = [1.0, 0.1]
        geometric = WeightedGeometricMean().combine(values, weights)
        weighted = WeightedSum().combine(values, weights)
        assert geometric < weighted

    def test_geometric_mean_zero_component_gives_zero(self):
        assert WeightedGeometricMean().combine([1.0, 0.0], [0.5, 0.5]) == 0.0


class TestRegistryAndProperties:
    def test_registry_contains_all_functions(self):
        assert set(AMALGAMATIONS) == {
            "weighted_sum",
            "minimum",
            "maximum",
            "geometric_mean",
        }
        assert isinstance(get_amalgamation("weighted_sum"), WeightedSum)

    def test_unknown_name_raises(self):
        with pytest.raises(RetrievalError):
            get_amalgamation("does-not-exist")

    @pytest.mark.parametrize("name", sorted(AMALGAMATIONS))
    def test_paper_properties_hold_for_all(self, name):
        """All amalgamations satisfy range, boundary and monotonicity requirements."""
        assert verify_amalgamation_properties(AMALGAMATIONS[name], dimension=4, samples=48)
