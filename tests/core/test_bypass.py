"""Unit tests for bypass tokens and the bypass cache (paper section 3)."""

import pytest

from repro.core import BypassCache, FunctionRequest, paper_case_base, paper_request


@pytest.fixture
def cache() -> BypassCache:
    return BypassCache()


class TestBypassCache:
    def test_miss_then_hit(self, cache, paper_cb, paper_req):
        assert cache.lookup(paper_req, paper_cb) is None
        cache.store(paper_req, paper_cb, implementation_id=2, similarity=0.96)
        token = cache.lookup(paper_req, paper_cb)
        assert token is not None
        assert token.implementation_id == 2
        assert token.hits == 1
        assert cache.statistics.hits == 1 and cache.statistics.misses == 1
        assert cache.statistics.hit_rate == pytest.approx(0.5)

    def test_same_signature_different_requester_misses(self, cache, paper_cb):
        a = FunctionRequest(1, [(1, 16)], requester="app-a")
        b = FunctionRequest(1, [(1, 16)], requester="app-b")
        cache.store(a, paper_cb, 1, 0.9)
        assert cache.lookup(b, paper_cb) is None
        assert cache.lookup(a, paper_cb) is not None

    def test_case_base_revision_invalidates(self, cache, paper_cb, paper_req):
        cache.store(paper_req, paper_cb, 2, 0.96)
        paper_cb.add_type(50)  # any structural change bumps the revision
        assert cache.lookup(paper_req, paper_cb) is None
        assert cache.statistics.invalidations == 1
        assert len(cache) == 0

    def test_revoked_token_is_not_served(self, cache, paper_cb, paper_req):
        token = cache.store(paper_req, paper_cb, 2, 0.96)
        token.revoke()
        assert cache.lookup(paper_req, paper_cb) is None

    def test_invalidate_implementation_revokes_matching_tokens(self, cache, paper_cb):
        first = FunctionRequest(1, [(1, 16)], requester="a")
        second = FunctionRequest(1, [(4, 44)], requester="b")
        cache.store(first, paper_cb, 2, 0.9)
        cache.store(second, paper_cb, 3, 0.7)
        revoked = cache.invalidate_implementation(1, 2)
        assert revoked == 1
        assert cache.lookup(first, paper_cb) is None
        assert cache.lookup(second, paper_cb) is not None

    def test_invalidate_request_and_clear(self, cache, paper_cb, paper_req):
        cache.store(paper_req, paper_cb, 2, 0.96)
        assert cache.invalidate_request(paper_req) is True
        assert cache.invalidate_request(paper_req) is False
        cache.store(paper_req, paper_cb, 2, 0.96)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_evicts_least_recently_used(self, paper_cb):
        cache = BypassCache(capacity=2)
        requests = [FunctionRequest(1, [(1, value)], requester="app") for value in (10, 11, 12)]
        cache.store(requests[0], paper_cb, 1, 0.5)
        cache.store(requests[1], paper_cb, 1, 0.5)
        # Touch the first entry so the second becomes the LRU victim.
        assert cache.lookup(requests[0], paper_cb) is not None
        cache.store(requests[2], paper_cb, 1, 0.5)
        assert len(cache) == 2
        assert cache.lookup(requests[1], paper_cb) is None
        assert cache.lookup(requests[0], paper_cb) is not None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BypassCache(capacity=0)

    def test_token_ids_are_unique_and_increasing(self, cache, paper_cb):
        tokens = [
            cache.store(FunctionRequest(1, [(1, v)], requester="x"), paper_cb, 1, 0.5)
            for v in range(1, 5)
        ]
        ids = [token.token_id for token in tokens]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_tokens_listing(self, cache, paper_cb, paper_req):
        cache.store(paper_req, paper_cb, 2, 0.96)
        assert len(cache.tokens()) == 1
