"""Durable delta journal: fsync groups, compaction, crash-shaped file states.

The journal's contract is narrow but strict: a reader sees exactly the
records covered by a commit marker (never a torn or uncommitted tail),
one generation exists at a time, and a snapshot plus the journalled delta
windows rebuilds the case base even after the bounded in-memory
``DeltaLog`` has truncated.
"""

import json

import pytest

from repro.api import schemas
from repro.core import CaseBase, ReproError
from repro.core.deltas import DeltaLog
from repro.core.journal import (
    DeltaJournal,
    JournalError,
    JournalState,
    recover_case_base,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


@pytest.fixture
def generator():
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=4,
            implementations_per_type=5,
            attributes_per_implementation=6,
            attribute_type_count=8,
        ),
        seed=21,
    )


def _snapshot_document(case_base: CaseBase) -> dict:
    return schemas.attach_envelope(
        "journal-snapshot",
        {
            "case_base": case_base.to_dict(),
            "revision": case_base.revision,
            "implementations": case_base.count_implementations(),
        },
    )


def _journal_path(journal: DeltaJournal):
    return journal.directory / f"journal-{journal.generation}.jsonl"


class TestWriteReadRoundTrip:
    def test_committed_groups_round_trip(self, tmp_path, generator):
        journal = DeltaJournal(tmp_path)
        journal.begin(0, _snapshot_document(generator.case_base()))
        journal.append({"kind": "journal-learn", "position": 0, "events": []})
        journal.append({"kind": "journal-trace", "batch": {"index": 0}})
        assert journal.commit(batch=0) == 2
        journal.append({"kind": "journal-learn", "position": 1, "events": []})
        assert journal.commit() == 1
        journal.close()

        state = DeltaJournal.load(tmp_path)
        assert state.generation == 0
        assert state.snapshot["kind"] == "journal-snapshot"
        assert [record["kind"] for record in state.records] == [
            "journal-learn", "journal-trace", "journal-learn",
        ]
        assert journal.records_since_snapshot == 3

    def test_empty_directory_loads_as_no_generation(self, tmp_path):
        assert DeltaJournal.load(tmp_path) == JournalState()
        assert DeltaJournal.load(tmp_path / "missing") == JournalState()

    def test_append_before_begin_is_an_error(self, tmp_path):
        journal = DeltaJournal(tmp_path)
        with pytest.raises(JournalError, match="begin"):
            journal.append({"kind": "journal-learn"})
        with pytest.raises(JournalError, match="begin"):
            journal.commit()

    def test_generations_must_advance(self, tmp_path, generator):
        snapshot = _snapshot_document(generator.case_base())
        journal = DeltaJournal(tmp_path)
        journal.begin(2, snapshot)
        with pytest.raises(JournalError, match="advance"):
            journal.begin(2, snapshot)
        with pytest.raises(JournalError, match="advance"):
            journal.begin(1, snapshot)


class TestCrashShapedStates:
    """Exactly the on-disk states a crash can produce are tolerated."""

    def _journal_with_one_group(self, tmp_path, generator):
        journal = DeltaJournal(tmp_path)
        journal.begin(0, _snapshot_document(generator.case_base()))
        journal.append({"kind": "journal-trace", "batch": {"index": 0}})
        journal.commit(batch=0)
        return journal

    def test_uncommitted_records_are_dropped(self, tmp_path, generator):
        journal = self._journal_with_one_group(tmp_path, generator)
        # Crash between write and fsync: records on disk but no marker.
        with open(_journal_path(journal), "a", encoding="utf-8") as stream:
            stream.write(json.dumps({"kind": "journal-learn", "position": 9}) + "\n")
        journal.close()
        state = DeltaJournal.load(tmp_path)
        assert [record["kind"] for record in state.records] == ["journal-trace"]

    def test_torn_final_line_is_dropped(self, tmp_path, generator):
        journal = self._journal_with_one_group(tmp_path, generator)
        with open(_journal_path(journal), "a", encoding="utf-8") as stream:
            stream.write('{"kind": "journal-le')  # crash mid-write
        journal.close()
        state = DeltaJournal.load(tmp_path)
        assert [record["kind"] for record in state.records] == ["journal-trace"]

    def test_missing_journal_file_after_compaction(self, tmp_path, generator):
        journal = self._journal_with_one_group(tmp_path, generator)
        journal.close()
        _journal_path(journal).unlink()
        state = DeltaJournal.load(tmp_path)
        assert state.generation == 0
        assert state.records == []

    def test_garbage_mid_file_raises(self, tmp_path, generator):
        journal = self._journal_with_one_group(tmp_path, generator)
        path = _journal_path(journal)
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("not json at all\n")
            stream.write(json.dumps({"kind": "journal-commit", "records": 0}) + "\n")
        journal.close()
        with pytest.raises(JournalError, match="corrupt"):
            DeltaJournal.load(tmp_path)

    def test_unknown_record_kind_raises(self, tmp_path, generator):
        journal = self._journal_with_one_group(tmp_path, generator)
        path = _journal_path(journal)
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps({"kind": "journal-mystery"}) + "\n")
            stream.write(json.dumps({"kind": "journal-commit", "records": 1}) + "\n")
        journal.close()
        with pytest.raises(JournalError, match="unknown kind"):
            DeltaJournal.load(tmp_path)

    def test_unparsable_snapshot_raises(self, tmp_path):
        (tmp_path / "snapshot-0.json").write_text("{broken", encoding="utf-8")
        with pytest.raises(JournalError, match="unreadable"):
            DeltaJournal.load(tmp_path)

    def test_wrong_document_kind_raises(self, tmp_path):
        (tmp_path / "snapshot-0.json").write_text(
            json.dumps({"kind": "serving-capture"}), encoding="utf-8"
        )
        with pytest.raises(JournalError, match="journal-snapshot"):
            DeltaJournal.load(tmp_path)


class TestCompaction:
    def test_begin_rotates_generations_atomically(self, tmp_path, generator):
        case_base = generator.case_base()
        journal = DeltaJournal(tmp_path)
        journal.begin(0, _snapshot_document(case_base))
        journal.append({"kind": "journal-trace", "batch": {"index": 0}})
        journal.commit()
        assert journal.records_since_snapshot == 1

        journal.begin(1, _snapshot_document(case_base))
        journal.close()
        names = sorted(path.name for path in tmp_path.iterdir())
        assert names == ["journal-1.jsonl", "snapshot-1.json"]
        state = DeltaJournal.load(tmp_path)
        assert state.generation == 1
        assert state.records == []
        assert journal.records_since_snapshot == 0

    def test_newest_generation_wins_when_both_survive(self, tmp_path, generator):
        # Simulate a crash between writing snapshot-1 and deleting gen 0.
        snapshot = _snapshot_document(generator.case_base())
        for generation in (0, 1):
            path = tmp_path / f"snapshot-{generation}.json"
            path.write_text(
                json.dumps(dict(snapshot, generation=generation)), encoding="utf-8"
            )
        state = DeltaJournal.load(tmp_path)
        assert state.generation == 1
        assert state.snapshot["generation"] == 1


class TestRecoverCaseBase:
    def test_journal_outlives_the_delta_log(self, tmp_path, generator):
        """Snapshot + journalled windows rebuild past in-memory truncation."""
        case_base = generator.case_base()
        case_base.delta_log = DeltaLog(capacity=2)
        case_base.delta_log.rebase(case_base.revision)

        journal = DeltaJournal(tmp_path)
        journal.begin(0, _snapshot_document(case_base))
        taps = []
        case_base.delta_log.attach_tap(taps.append)
        type_id = case_base.type_ids()[0]
        implementation = case_base.implementations(type_id)[0]
        for _ in range(6):  # 3x the log capacity: the in-memory window truncates
            case_base.replace_implementation(type_id, implementation)
        case_base.remove_implementation(
            type_id, case_base.implementations(type_id)[1].implementation_id
        )
        case_base.delta_log.detach_tap(taps.append)
        assert case_base.delta_log.since(0) is None  # truncated for live readers
        for delta in taps:
            journal.append({
                "kind": "journal-deltas",
                "revision": delta.revision,
                "replayable": True,
                "events": schemas.delta_to_wire_events(delta),
            })
        journal.commit()
        journal.close()

        recovered = recover_case_base(DeltaJournal.load(tmp_path))
        assert recovered.to_dict() == case_base.to_dict()
        assert recovered.count_implementations() == case_base.count_implementations()

    def test_no_snapshot_is_an_error(self):
        with pytest.raises(JournalError, match="no snapshot"):
            recover_case_base(JournalState())

    def test_non_replayable_window_is_an_error(self, tmp_path, generator):
        journal = DeltaJournal(tmp_path)
        journal.begin(0, _snapshot_document(generator.case_base()))
        journal.append({
            "kind": "journal-deltas",
            "revision": 1,
            "replayable": False,
            "events": [],
        })
        journal.commit()
        journal.close()
        with pytest.raises(JournalError, match="non-replayable"):
            recover_case_base(DeltaJournal.load(tmp_path))


class TestDeltaWireForms:
    def test_every_mutation_kind_round_trips_through_events(self, generator):
        source = generator.case_base()
        target = CaseBase.from_dict(source.to_dict())
        taps = []
        source.delta_log.attach_tap(taps.append)
        type_id = source.type_ids()[0]
        victim = source.implementations(type_id)[1]
        source.replace_implementation(type_id, source.implementations(type_id)[0])
        source.remove_implementation(type_id, victim.implementation_id)
        source.remove_type(source.type_ids()[-1])
        for delta in taps:
            schemas.apply_mutation_events(target, schemas.delta_to_wire_events(delta))
        assert target.to_dict() == source.to_dict()

    def test_bounds_changes_have_no_wire_form(self, generator):
        from repro.core.deltas import CaseBaseDelta, DeltaKind

        delta = CaseBaseDelta(revision=1, kind=DeltaKind.BOUNDS_CHANGED)
        with pytest.raises(ReproError, match="no wire mutation form"):
            schemas.delta_to_wire_events(delta)
