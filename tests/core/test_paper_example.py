"""Reproduction tests for Table 1 / Fig. 3 of the paper (experiment E1)."""

import pytest

from repro.core import (
    RetrievalEngine,
    TABLE1_BEST_IMPLEMENTATION_ID,
    TABLE1_DMAX,
    TABLE1_EXPECTED_SIMILARITIES,
    paper_case_base,
    paper_example,
    paper_request,
)


class TestPaperExampleConstruction:
    def test_case_base_matches_figure_3(self):
        case_base = paper_case_base()
        fpga = case_base.get_implementation(1, 1)
        dsp = case_base.get_implementation(1, 2)
        gpp = case_base.get_implementation(1, 3)
        assert fpga.attributes == {1: 16, 2: 0, 3: 2, 4: 44}
        assert dsp.attributes == {1: 16, 2: 0, 3: 1, 4: 44}
        assert gpp.attributes == {1: 8, 2: 0, 3: 0, 4: 22}

    def test_request_matches_figure_3(self):
        request = paper_request()
        assert request.type_id == 1
        assert request.values() == {1: 16, 3: 1, 4: 40}
        assert all(w == pytest.approx(1 / 3) for w in request.weights().values())

    def test_dmax_values_match_table_1(self):
        _, _, bounds, _ = paper_example()
        for attribute_id, expected in TABLE1_DMAX.items():
            assert bounds.dmax(attribute_id) == expected

    def test_optional_fft_branch(self):
        assert len(paper_case_base(include_fft=True)) == 2
        assert len(paper_case_base(include_fft=False)) == 1


class TestTable1Reproduction:
    def test_global_similarities_match_table_1(self, paper_engine, paper_req):
        """The headline numbers: S = 0.85 / 0.96 / 0.43 with the DSP variant best."""
        result = paper_engine.retrieve_n_best(paper_req, 3)
        measured = {entry.implementation_id: entry.similarity for entry in result}
        for implementation_id, expected in TABLE1_EXPECTED_SIMILARITIES.items():
            assert measured[implementation_id] == pytest.approx(expected, abs=0.005)

    def test_best_is_the_dsp_variant(self, paper_engine, paper_req):
        assert paper_engine.retrieve_best(paper_req).best_id == TABLE1_BEST_IMPLEMENTATION_ID

    def test_ranking_matches_paper_discussion(self, paper_engine, paper_req):
        """DSP best, FPGA second, plain software a distant third."""
        result = paper_engine.retrieve_n_best(paper_req, 3)
        assert result.ids() == [2, 1, 3]
        similarities = [entry.similarity for entry in result]
        assert similarities[0] - similarities[1] < similarities[1] - similarities[2]

    def test_threshold_would_reject_the_software_variant(self, paper_engine, paper_req):
        """Section 3: 'reject all results below a given threshold similarity'."""
        surviving = paper_engine.retrieve_above_threshold(paper_req, 0.5).ids()
        assert surviving == [2, 1]
