"""Unit tests for local similarity measures and the Mahalanobis baseline."""

import pytest

from repro.core import (
    BoundsTable,
    EuclideanDistance,
    LocalSimilarity,
    MahalanobisSimilarity,
    ManhattanDistance,
    RetrievalError,
    ThresholdLocalSimilarity,
    paper_bounds,
)


@pytest.fixture
def bounds() -> BoundsTable:
    return paper_bounds()


class TestDistanceMetrics:
    def test_manhattan_is_absolute_difference(self):
        metric = ManhattanDistance()
        assert metric.distance(16, 8) == 8
        assert metric.distance(8, 16) == 8
        assert metric.distance(5, 5) == 0

    def test_euclidean_equals_manhattan_for_scalars(self):
        manhattan, euclidean = ManhattanDistance(), EuclideanDistance()
        for a, b in [(0, 0), (3, 10), (44, 8)]:
            assert euclidean.distance(a, b) == pytest.approx(manhattan.distance(a, b))

    def test_operation_costs_are_ordered(self):
        assert EuclideanDistance.operation_cost > ManhattanDistance.operation_cost


class TestLocalSimilarity(object):
    def test_identical_values_give_one(self, bounds):
        measure = LocalSimilarity(bounds)
        assert measure.value(1, 16, 16) == pytest.approx(1.0)

    def test_table1_local_similarities(self, bounds):
        """The per-attribute values of Table 1 (0.89, 0.66, 0.11, 0.51...)."""
        measure = LocalSimilarity(bounds)
        assert measure.value(4, 40, 44) == pytest.approx(1 - 4 / 37)
        assert measure.value(3, 1, 2) == pytest.approx(1 - 1 / 3)
        assert measure.value(1, 16, 8) == pytest.approx(1 - 8 / 9)
        assert measure.value(4, 40, 22) == pytest.approx(1 - 18 / 37)

    def test_missing_attribute_gives_configured_similarity(self, bounds):
        measure = LocalSimilarity(bounds)
        result = measure.similarity(1, 16, None)
        assert result.missing and result.similarity == 0.0
        lenient = LocalSimilarity(bounds, missing_similarity=0.25)
        assert lenient.value(1, 16, None) == 0.25

    def test_invalid_missing_similarity_rejected(self, bounds):
        with pytest.raises(RetrievalError):
            LocalSimilarity(bounds, missing_similarity=1.5)

    def test_clamps_when_distance_exceeds_dmax(self, bounds):
        measure = LocalSimilarity(bounds)
        # dmax for attribute 3 is 2; a distance of 5 would give a negative value.
        assert measure.value(3, 0, 5) == 0.0
        unclamped = LocalSimilarity(bounds, clamp=False)
        assert unclamped.value(3, 0, 5) < 0.0

    def test_result_carries_diagnostics(self, bounds):
        result = LocalSimilarity(bounds).similarity(4, 40, 44)
        assert result.distance == 4
        assert result.dmax == 36
        assert result.request_value == 40 and result.case_value == 44

    def test_unknown_attribute_bounds_raise(self, bounds):
        with pytest.raises(Exception):
            LocalSimilarity(bounds).value(99, 1, 2)


class TestThresholdLocalSimilarity:
    def test_step_behaviour(self, bounds):
        measure = ThresholdLocalSimilarity(bounds, tolerance=2)
        assert measure.value(4, 40, 42) == 1.0
        assert measure.value(4, 40, 44) == 0.0
        assert measure.value(4, 40, None) == 0.0

    def test_negative_tolerance_rejected(self, bounds):
        with pytest.raises(RetrievalError):
            ThresholdLocalSimilarity(bounds, tolerance=-1)


class TestMahalanobisSimilarity:
    @pytest.fixture
    def library(self):
        return [
            {1: 16, 3: 2, 4: 44},
            {1: 16, 3: 1, 4: 44},
            {1: 8, 3: 0, 4: 22},
            {1: 12, 3: 1, 4: 32},
        ]

    def test_identical_vectors_are_most_similar(self, library):
        measure = MahalanobisSimilarity([1, 3, 4], library)
        request = {1: 16, 3: 1, 4: 44}
        self_similarity = measure.similarity(request, request)
        other = measure.similarity(request, {1: 8, 3: 0, 4: 22})
        assert self_similarity == pytest.approx(1.0)
        assert other < self_similarity

    def test_partial_request_is_imputed(self, library):
        measure = MahalanobisSimilarity([1, 3, 4], library)
        value = measure.similarity({1: 16}, {1: 16, 3: 1, 4: 44})
        assert 0.0 <= value <= 1.0

    def test_results_stay_in_unit_interval(self, library):
        measure = MahalanobisSimilarity([1, 3, 4], library)
        for case in library:
            value = measure.similarity({1: 40, 3: 2, 4: 90}, case)
            assert 0.0 <= value <= 1.0

    def test_distance_is_symmetric(self, library):
        measure = MahalanobisSimilarity([1, 3, 4], library)
        a, b = {1: 16, 3: 2, 4: 44}, {1: 8, 3: 0, 4: 22}
        assert measure.distance(a, b) == pytest.approx(measure.distance(b, a))

    def test_operation_cost_grows_quadratically(self, library):
        small = MahalanobisSimilarity([1, 3], library)
        large = MahalanobisSimilarity([1, 3, 4], library)
        assert large.operation_cost > small.operation_cost
        assert large.operation_cost > ManhattanDistance.operation_cost

    def test_requires_attributes_and_vectors(self):
        with pytest.raises(RetrievalError):
            MahalanobisSimilarity([], [{1: 1}])
        with pytest.raises(RetrievalError):
            MahalanobisSimilarity([1], [])
