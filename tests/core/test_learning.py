"""Unit tests for the revise/retain CBR-cycle extension (paper section 5)."""

import pytest

from repro.core import (
    CaseBaseError,
    CaseRetainer,
    CaseReviser,
    CBRCycle,
    ExecutionTarget,
    FunctionRequest,
    OutcomeRecord,
    RetrievalEngine,
    paper_case_base,
    paper_request,
)


class TestCaseReviser:
    def test_blends_measured_values(self, paper_cb):
        reviser = CaseReviser(learning_rate=0.5)
        outcome = OutcomeRecord(1, 2, {4: 40})  # DSP variant measured at 40 kS/s
        report = reviser.revise(paper_cb, outcome)
        assert report.changed
        assert paper_cb.get_implementation(1, 2).get(4) == 42  # halfway, rounded

    def test_learning_rate_one_overwrites(self, paper_cb):
        CaseReviser(learning_rate=1.0).revise(paper_cb, OutcomeRecord(1, 2, {4: 40}))
        assert paper_cb.get_implementation(1, 2).get(4) == 40

    def test_learning_rate_zero_keeps_stored_value(self, paper_cb):
        report = CaseReviser(learning_rate=0.0).revise(paper_cb, OutcomeRecord(1, 2, {4: 40}))
        assert not report.changed
        assert paper_cb.get_implementation(1, 2).get(4) == 44

    def test_unknown_measured_attribute_is_ignored(self, paper_cb):
        report = CaseReviser().revise(paper_cb, OutcomeRecord(1, 2, {99: 5}))
        assert not report.changed

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(CaseBaseError):
            CaseReviser(learning_rate=1.5)

    def test_revision_bumps_case_base_revision(self, paper_cb):
        before = paper_cb.revision
        CaseReviser(1.0).revise(paper_cb, OutcomeRecord(1, 2, {4: 40}))
        assert paper_cb.revision > before


class TestCaseRetainer:
    def test_retains_novel_behaviour(self, paper_cb):
        engine = RetrievalEngine(paper_cb)
        retainer = CaseRetainer(engine, novelty_threshold=0.95)
        outcome = OutcomeRecord(1, 2, {1: 32, 3: 2, 4: 96}, note="measured high-end variant")
        learned = retainer.retain(outcome, ExecutionTarget.DSP, name="learned DSP")
        assert learned is not None
        assert learned.implementation_id == 4  # next free ID after 1..3
        assert learned.implementation_id in paper_cb.get_type(1)

    def test_does_not_retain_near_duplicate(self, paper_cb):
        engine = RetrievalEngine(paper_cb)
        retainer = CaseRetainer(engine, novelty_threshold=0.95)
        outcome = OutcomeRecord(1, 2, {1: 16, 3: 1, 4: 44})  # identical to stored DSP case
        assert retainer.retain(outcome, ExecutionTarget.DSP) is None
        assert len(paper_cb.get_type(1)) == 3

    def test_capacity_limit_blocks_retention(self, paper_cb):
        engine = RetrievalEngine(paper_cb)
        retainer = CaseRetainer(engine, max_implementations_per_type=3)
        outcome = OutcomeRecord(1, 2, {1: 32, 3: 2, 4: 96})
        assert retainer.retain(outcome, ExecutionTarget.DSP) is None

    def test_invalid_parameters_rejected(self, paper_cb):
        engine = RetrievalEngine(paper_cb)
        with pytest.raises(CaseBaseError):
            CaseRetainer(engine, novelty_threshold=2.0)
        with pytest.raises(CaseBaseError):
            CaseRetainer(engine, max_implementations_per_type=0)


class TestCBRCycle:
    def test_solve_then_feedback_revises_and_retains(self, paper_cb, paper_req):
        engine = RetrievalEngine(paper_cb)
        cycle = CBRCycle(engine)
        report = cycle.solve(paper_req, n=2)
        assert report.reused is not None and report.reused.implementation_id == 2
        outcome = OutcomeRecord(1, 2, {1: 32, 3: 2, 4: 96})
        cycle.feedback(report, outcome, retain_target=ExecutionTarget.DSP)
        assert report.revision is not None
        assert report.retained is not None
        assert len(cycle.history) == 1

    def test_retrieval_after_learning_prefers_learned_case(self, paper_cb):
        """A retained high-quality case wins subsequent high-demand requests."""
        engine = RetrievalEngine(paper_cb)
        cycle = CBRCycle(engine)
        report = cycle.solve(paper_request())
        cycle.feedback(
            report,
            OutcomeRecord(1, 2, {1: 16, 2: 0, 3: 1, 4: 96}),
            retain_target=ExecutionTarget.FPGA,
        )
        demanding = FunctionRequest(1, [(1, 16), (3, 1), (4, 96)])
        # Bounds must cover the new value range for the comparison to be fair.
        engine.bounds = paper_cb.derive_bounds()
        engine.local_similarity.bounds = engine.bounds
        result = engine.retrieve_best(demanding)
        assert result.best_id == 4
