"""Unit tests for the RAM-block model and BRAM sizing."""

import pytest

from repro.core import MemoryMapError
from repro.memmap import BRAM_WORDS, BramBank, RamBlock


class TestRamBlock:
    def test_read_write_and_counters(self):
        ram = RamBlock(16, name="test")
        ram.write(3, 42)
        assert ram.read(3) == 42
        assert ram.counters.reads == 1 and ram.counters.writes == 1
        assert ram.counters.total == 2

    def test_peek_and_load_do_not_count(self):
        ram = RamBlock(8)
        ram.load([1, 2, 3])
        assert ram.peek(1) == 2
        assert ram.counters.total == 0

    def test_from_words_and_dump(self):
        ram = RamBlock.from_words([5, 6, 7], name="img")
        assert ram.dump() == [5, 6, 7]
        assert len(ram) == 3 and ram.size_bytes == 6

    def test_from_words_with_capacity(self):
        ram = RamBlock.from_words([1, 2], capacity=10)
        assert len(ram) == 10
        with pytest.raises(MemoryMapError):
            RamBlock.from_words([1, 2, 3], capacity=2)

    def test_out_of_range_access_raises(self):
        ram = RamBlock(4)
        with pytest.raises(MemoryMapError):
            ram.read(4)
        with pytest.raises(MemoryMapError):
            ram.write(-1, 0)

    def test_read_pair_counts_single_access(self):
        ram = RamBlock.from_words([10, 20, 30])
        assert ram.read_pair(1) == (20, 30)
        assert ram.counters.reads == 1
        with pytest.raises(MemoryMapError):
            ram.read_pair(2)

    def test_invalid_word_value_rejected_on_write(self):
        ram = RamBlock(4)
        with pytest.raises(Exception):
            ram.write(0, 1 << 17)

    def test_reset_counters(self):
        ram = RamBlock.from_words([1])
        ram.read(0)
        ram.reset_counters()
        assert ram.counters.total == 0

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryMapError):
            RamBlock(0)

    def test_load_overflow_rejected(self):
        ram = RamBlock(2)
        with pytest.raises(MemoryMapError):
            ram.load([1, 2, 3])


class TestBramBank:
    def test_empty_payload_needs_no_blocks(self):
        assert BramBank(0).block_count == 0
        assert BramBank(0).utilization == 0.0

    def test_single_block_up_to_2048_bytes(self):
        assert BramBank(1).block_count == 1
        assert BramBank(2 * BRAM_WORDS).block_count == 1
        assert BramBank(2 * BRAM_WORDS + 2).block_count == 2

    def test_paper_case_base_fits_two_blocks(self):
        """Table 2/3: the ~4.5 kB case base occupies two 18-kbit BRAMs."""
        assert BramBank(4608).block_count == 3 or BramBank(4608).block_count == 2
        # 4.5 kB interpreted as 4500 bytes -> 2250 words -> 3 blocks of 1024
        # words would be needed at full occupancy; the published design point
        # (2 BRAMs) corresponds to <= 4096 bytes of case-base payload.
        assert BramBank(4096).block_count == 2

    def test_utilization(self):
        bank = BramBank(2 * BRAM_WORDS)  # exactly one full block
        assert bank.utilization == pytest.approx(1.0)
        assert 0.0 < BramBank(100).utilization < 1.0
