"""Unit tests for the 16-bit word primitives."""

import pytest

from repro.core import EncodingError
from repro.memmap import (
    END_OF_LIST,
    WORD_BITS,
    WORD_BYTES,
    WORD_MAX,
    bytes_to_words,
    check_id,
    check_word,
    encode_value,
    validate_words,
    words_to_bytes,
)


class TestWordChecks:
    def test_constants(self):
        assert WORD_BITS == 16 and WORD_BYTES == 2 and WORD_MAX == 0xFFFF
        assert END_OF_LIST == 0

    def test_check_word_accepts_range(self):
        assert check_word(0) == 0
        assert check_word(WORD_MAX) == WORD_MAX

    def test_check_word_rejects_out_of_range_and_non_int(self):
        with pytest.raises(EncodingError):
            check_word(-1)
        with pytest.raises(EncodingError):
            check_word(1 << 16)
        with pytest.raises(EncodingError):
            check_word(1.5)  # type: ignore[arg-type]

    def test_check_id_rejects_null(self):
        assert check_id(1) == 1
        with pytest.raises(EncodingError):
            check_id(END_OF_LIST)

    def test_encode_value_accepts_integral_floats(self):
        assert encode_value(44.0) == 44
        assert encode_value(True) == 1

    def test_encode_value_rejects_fractional(self):
        with pytest.raises(EncodingError):
            encode_value(44.1)

    def test_validate_words_reports_position(self):
        with pytest.raises(EncodingError) as excinfo:
            validate_words([1, 2, 1 << 20])
        assert "word[2]" in str(excinfo.value)


class TestSizeConversions:
    def test_round_trip(self):
        assert words_to_bytes(32) == 64
        assert bytes_to_words(64) == 32

    def test_invalid_inputs(self):
        with pytest.raises(EncodingError):
            words_to_bytes(-1)
        with pytest.raises(EncodingError):
            bytes_to_words(3)
