"""Unit tests for the request-list encoding (Fig. 4 left)."""

import pytest

from repro.core import EncodingError, FunctionRequest, paper_request
from repro.fixedpoint import UQ0_16
from repro.memmap import (
    END_OF_LIST,
    decode_request,
    encode_request,
    request_size_bytes,
    request_size_words,
)


class TestEncodeRequest:
    def test_layout_of_paper_request(self):
        encoded = encode_request(paper_request())
        words = encoded.words
        assert words[0] == 1  # type ID
        assert words[1] == 1 and words[2] == 16  # first attribute block
        assert words[4] == 3 and words[5] == 1
        assert words[7] == 4 and words[8] == 40
        assert words[-1] == END_OF_LIST
        assert encoded.attribute_count == 3
        assert encoded.size_words == 1 + 3 * 3 + 1

    def test_weights_are_quantised_fractions(self):
        encoded = encode_request(paper_request())
        weight_words = [encoded.words[3], encoded.words[6], encoded.words[9]]
        for raw in weight_words:
            assert UQ0_16.to_float(raw) == pytest.approx(1 / 3, abs=UQ0_16.resolution)

    def test_attributes_are_sorted_by_id(self):
        request = FunctionRequest(1, [(9, 5), (2, 7)])
        encoded = encode_request(request)
        assert encoded.words[1] == 2 and encoded.words[4] == 9

    def test_empty_request_rejected(self):
        with pytest.raises(EncodingError):
            encode_request(FunctionRequest(1, ()))

    def test_worst_case_request_is_64_bytes(self):
        """Table 3: a 10-attribute request occupies 64 bytes of 16-bit words."""
        assert request_size_words(10) == 32
        assert request_size_bytes(10) == 64
        request = FunctionRequest(1, [(i, i) for i in range(1, 11)])
        assert encode_request(request).size_bytes == 64

    def test_size_helpers_validate_input(self):
        with pytest.raises(EncodingError):
            request_size_words(-1)


class TestDecodeRequest:
    def test_round_trip_preserves_values_and_order(self):
        original = paper_request()
        decoded = decode_request(encode_request(original).words)
        assert decoded.type_id == original.type_id
        assert decoded.values() == original.values()
        assert decoded.attribute_ids() == original.attribute_ids()

    def test_round_trip_weights_within_quantisation(self):
        decoded = decode_request(encode_request(paper_request()).words)
        for weight in decoded.weights().values():
            assert weight == pytest.approx(1 / 3, abs=UQ0_16.resolution)

    def test_empty_image_rejected(self):
        with pytest.raises(EncodingError):
            decode_request([])

    def test_missing_terminator_rejected(self):
        words = list(encode_request(paper_request()).words)[:-1]
        with pytest.raises(EncodingError):
            decode_request(words)

    def test_truncated_block_rejected(self):
        words = [1, 2, 5]  # attribute ID + value but no weight, no terminator
        with pytest.raises(EncodingError):
            decode_request(words)

    def test_non_ascending_ids_rejected(self):
        words = [1, 4, 10, 100, 2, 5, 100, END_OF_LIST]
        with pytest.raises(EncodingError):
            decode_request(words)

    def test_leading_terminator_rejected(self):
        with pytest.raises(EncodingError):
            decode_request([END_OF_LIST])
