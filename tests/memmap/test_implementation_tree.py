"""Unit tests for the three-level implementation-tree encoding (Fig. 5)."""

import pytest

from repro.core import CaseBase, EncodingError, ExecutionTarget, Implementation, paper_case_base
from repro.memmap import (
    END_OF_LIST,
    decode_tree,
    encode_tree,
    tree_size_bytes,
    tree_size_words,
)


class TestEncodeTree:
    def test_level0_layout_and_pointers(self, paper_cb):
        encoded = encode_tree(paper_cb)
        words = encoded.words
        assert words[0] == 1  # first type ID
        assert words[2] == 2  # second type ID
        assert words[4] == END_OF_LIST
        # The type pointers reference positions inside the image.
        assert 0 < words[1] < len(words)
        assert 0 < words[3] < len(words)
        assert encoded.address_map.type_list == 0

    def test_address_map_is_consistent_with_pointers(self, paper_cb):
        encoded = encode_tree(paper_cb)
        words = encoded.words
        for type_id, address in encoded.address_map.implementation_lists.items():
            # Find the pointer of this type in level 0 and compare.
            cursor = 0
            while words[cursor] != type_id:
                cursor += 2
            assert words[cursor + 1] == address
        for (type_id, impl_id), address in encoded.address_map.attribute_lists.items():
            impl_list = encoded.address_map.implementation_lists[type_id]
            cursor = impl_list
            while words[cursor] != impl_id:
                cursor += 2
            assert words[cursor + 1] == address

    def test_counts(self, paper_cb):
        encoded = encode_tree(paper_cb)
        assert encoded.type_count == 2
        assert encoded.implementation_count == 5
        assert encoded.attribute_entry_count == paper_cb.count_attributes()

    def test_attribute_lists_are_sorted(self, paper_cb):
        encoded = encode_tree(paper_cb)
        address = encoded.address_map.attribute_lists[(1, 1)]
        ids = []
        cursor = address
        while encoded.words[cursor] != END_OF_LIST:
            ids.append(encoded.words[cursor])
            cursor += 2
        assert ids == sorted(ids) == [1, 2, 3, 4]

    def test_empty_case_base_rejected(self):
        with pytest.raises(EncodingError):
            encode_tree(CaseBase())

    def test_analytic_size_matches_encoder_for_uniform_tree(self, small_generator):
        case_base = small_generator.case_base()
        spec = small_generator.spec
        encoded = encode_tree(case_base)
        assert encoded.size_words == tree_size_words(
            spec.type_count, spec.implementations_per_type, spec.attributes_per_implementation
        )

    def test_table3_analytic_sizes(self):
        """The Table 3 sizing: 15 types x 10 implementations x 10 attributes."""
        words = tree_size_words(15, 10, 10)
        assert words == 31 + 15 * 21 + 150 * 21
        assert tree_size_bytes(15, 10, 10) == 2 * words

    def test_size_helpers_validate_input(self):
        with pytest.raises(EncodingError):
            tree_size_words(-1, 1, 1)


class TestDecodeTree:
    def test_round_trip_paper_case_base(self, paper_cb):
        decoded = decode_tree(encode_tree(paper_cb).words)
        assert set(decoded) == {1, 2}
        assert decoded[1][1] == {1: 16, 2: 0, 3: 2, 4: 44}
        assert decoded[1][3] == {1: 8, 2: 0, 3: 0, 4: 22}
        assert decoded[2][2] == {1: 16, 2: 0, 4: 22}

    def test_round_trip_generated_case_base(self, small_case_base):
        decoded = decode_tree(encode_tree(small_case_base).words)
        for type_id, implementation in small_case_base.all_implementations():
            assert decoded[type_id][implementation.implementation_id] == implementation.attributes

    def test_empty_image_rejected(self):
        with pytest.raises(EncodingError):
            decode_tree([])

    def test_missing_terminator_rejected(self):
        words = list(encode_tree(paper_case_base()).words)
        # Remove the final END_OF_LIST of the last attribute list.
        with pytest.raises(EncodingError):
            decode_tree(words[:-1] + [7])

    def test_unsorted_attribute_list_rejected(self):
        # Hand-built image: one type, one implementation, attributes out of order.
        words = [
            1, 3, END_OF_LIST,          # level 0
            1, 6, END_OF_LIST,          # level 1
            4, 10, 2, 20, END_OF_LIST,  # level 2 (IDs 4 then 2: invalid)
        ]
        with pytest.raises(EncodingError):
            decode_tree(words)

    def test_implementation_without_attributes_round_trips(self):
        case_base = CaseBase()
        function_type = case_base.add_type(1)
        function_type.add(Implementation(1, ExecutionTarget.GPP, {}))
        decoded = decode_tree(encode_tree(case_base).words)
        assert decoded[1][1] == {}
