"""Unit tests for the attribute-supplemental list encoding (Fig. 4 right)."""

import pytest

from repro.core import BoundsTable, EncodingError, paper_bounds
from repro.fixedpoint import UQ0_16
from repro.memmap import (
    END_OF_LIST,
    SUPPLEMENTAL_BLOCK_WORDS,
    decode_supplemental,
    encode_supplemental,
    supplemental_size_bytes,
    supplemental_size_words,
)


class TestEncodeSupplemental:
    def test_block_layout(self):
        encoded = encode_supplemental(paper_bounds())
        words = encoded.words
        # First block describes attribute 1 with bounds [8, 16].
        assert words[0] == 1 and words[1] == 8 and words[2] == 16
        assert UQ0_16.to_float(words[3]) == pytest.approx(1 / 9, abs=1e-4)
        assert words[-1] == END_OF_LIST
        assert encoded.size_words == 4 * SUPPLEMENTAL_BLOCK_WORDS + 1

    def test_reciprocal_map_matches_words(self):
        encoded = encode_supplemental(paper_bounds())
        assert set(encoded.reciprocals) == {1, 2, 3, 4}
        assert UQ0_16.to_float(encoded.reciprocals[4]) == pytest.approx(1 / 37, abs=1e-4)

    def test_blocks_are_sorted_by_attribute_id(self):
        table = BoundsTable()
        table.define(9, 0, 10)
        table.define(2, 0, 5)
        encoded = encode_supplemental(table)
        assert encoded.words[0] == 2 and encoded.words[SUPPLEMENTAL_BLOCK_WORDS] == 9

    def test_empty_table_is_just_a_terminator(self):
        encoded = encode_supplemental(BoundsTable())
        assert encoded.words == (END_OF_LIST,)

    def test_size_helpers(self):
        assert supplemental_size_words(10) == 41
        assert supplemental_size_bytes(10) == 82
        with pytest.raises(EncodingError):
            supplemental_size_words(-2)


class TestDecodeSupplemental:
    def test_round_trip_preserves_bounds(self):
        original = paper_bounds()
        decoded = decode_supplemental(encode_supplemental(original).words)
        assert decoded.ids() == original.ids()
        for attribute_id in original.ids():
            assert decoded.get(attribute_id).lower == original.get(attribute_id).lower
            assert decoded.get(attribute_id).upper == original.get(attribute_id).upper
            assert decoded.dmax(attribute_id) == original.dmax(attribute_id)

    def test_missing_terminator_rejected(self):
        words = list(encode_supplemental(paper_bounds()).words)[:-1]
        with pytest.raises(EncodingError):
            decode_supplemental(words)

    def test_truncated_block_rejected(self):
        with pytest.raises(EncodingError):
            decode_supplemental([1, 8, 16])

    def test_non_ascending_ids_rejected(self):
        words = [4, 0, 5, 100, 2, 0, 5, 100, END_OF_LIST]
        with pytest.raises(EncodingError):
            decode_supplemental(words)
