"""Persistent image store: round-trip fidelity, staleness, and counters.

The contract under test (ISSUE 10 tentpole): a saved store reopens O(1) into
*bit-identical* serving state -- word-for-word CB-MEM images and retrieval
results indistinguishable from a fresh encode -- and anything that could
make the on-disk artefacts lie (mutations, tampered files, other case
bases, layout bumps) must surface as ``stale``/``miss``, never as wrong
results.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import RetrievalEngine
from repro.core.case_base import ExecutionTarget, Implementation
from repro.core.exceptions import EncodingError
from repro.memmap import CaseBaseImage, ImageStore, structure_fingerprint
from repro.memmap.store import LAYOUT_VERSION, MANIFEST_NAME
from repro.observability import MetricsRegistry, catalog
from repro.tools import CaseBaseGenerator, GeneratorSpec

SMALL_SPEC = GeneratorSpec(
    type_count=4,
    implementations_per_type=12,
    attributes_per_implementation=6,
    attribute_type_count=8,
    missing_probability=0.1,
)

#: Deep enough that the CB-MEM tree overflows 16-bit word addressing.
OVERFLOW_SPEC = GeneratorSpec(
    type_count=4,
    implementations_per_type=800,
    attributes_per_implementation=10,
    attribute_type_count=10,
)


@pytest.fixture()
def small_case_base():
    return CaseBaseGenerator(SMALL_SPEC, seed=9).case_base()


def _slim_view(result):
    return [(entry.implementation_id, entry.similarity) for entry in result.ranked]


class TestRoundTrip:
    def test_reopened_words_match_a_fresh_encode(self, small_case_base, tmp_path):
        store = ImageStore(tmp_path)
        store.save(small_case_base)
        reopened = store.open(small_case_base)
        assert reopened is not None
        assert reopened.revision == small_case_base.revision
        fresh = CaseBaseImage(small_case_base)
        assert np.array_equal(
            np.asarray(reopened.image.tree.words),
            np.asarray(fresh.tree.words),
        )
        assert np.array_equal(
            np.asarray(reopened.image.supplemental.words),
            np.asarray(fresh.supplemental.words),
        )
        assert reopened.image.tree.address_map == fresh.tree.address_map
        assert reopened.image.supplemental.reciprocals == fresh.supplemental.reciprocals

    def test_adopted_matrices_serve_bit_identically(self, small_case_base, tmp_path):
        generator = CaseBaseGenerator(SMALL_SPEC, seed=9)
        store = ImageStore(tmp_path)
        store.save(small_case_base)
        reopened = store.open(small_case_base)
        fresh = RetrievalEngine(small_case_base, backend="vectorized")
        adopted = RetrievalEngine(small_case_base, backend="vectorized")
        assert reopened.install(adopted) is True
        for salt in range(6):
            request = generator.request(salt=salt, attribute_count=4)
            expected = fresh.retrieve_n_best(request, 5)
            observed = adopted.retrieve_n_best(request, 5)
            assert _slim_view(observed) == _slim_view(expected)
            assert observed.statistics == expected.statistics

    def test_install_declines_naive_backends(self, small_case_base, tmp_path):
        store = ImageStore(tmp_path)
        store.save(small_case_base)
        reopened = store.open(small_case_base)
        naive = RetrievalEngine(small_case_base, backend="naive")
        assert reopened.install(naive) is False

    def test_save_is_idempotent_and_cleans_stale_generations(
        self, small_case_base, tmp_path
    ):
        store = ImageStore(tmp_path)
        store.save(small_case_base)
        first_files = set(path.name for path in tmp_path.iterdir())
        small_case_base.add_implementation(
            1,
            Implementation(
                implementation_id=999,
                target=ExecutionTarget.GPP,
                attributes={1: 5},
            ),
        )
        store.save(small_case_base)
        second_files = set(path.name for path in tmp_path.iterdir())
        # Old-revision array files are gone once the new manifest is durable.
        assert not (second_files - {MANIFEST_NAME}) & (first_files - {MANIFEST_NAME})
        assert store.open(small_case_base) is not None


class TestStaleness:
    def test_empty_directory_is_a_miss(self, small_case_base, tmp_path):
        assert ImageStore(tmp_path).open(small_case_base) is None

    def test_mutation_turns_the_store_stale(self, small_case_base, tmp_path):
        store = ImageStore(tmp_path)
        store.save(small_case_base)
        implementation = small_case_base.get_type(1).sorted_implementations()[0]
        small_case_base.remove_implementation(1, implementation.implementation_id)
        assert store.open(small_case_base) is None

    def test_a_different_case_base_is_stale_even_at_equal_revision(
        self, small_case_base, tmp_path
    ):
        """Two freshly loaded dumps both sit at revision 0; the structural
        fingerprint must tell them apart."""
        other_spec = dataclasses.replace(SMALL_SPEC, implementations_per_type=13)
        other = CaseBaseGenerator(other_spec, seed=9).case_base()
        assert other.revision == small_case_base.revision
        assert structure_fingerprint(other) != structure_fingerprint(small_case_base)
        store = ImageStore(tmp_path)
        store.save(small_case_base)
        assert store.open(other) is None

    def test_truncated_array_file_is_stale(self, small_case_base, tmp_path):
        store = ImageStore(tmp_path)
        manifest = store.save(small_case_base)
        victim = tmp_path / manifest["types"][0]["files"]["values"]["file"]
        victim.write_bytes(victim.read_bytes()[:-8])
        assert store.open(small_case_base) is None

    def test_layout_version_bump_is_stale(self, small_case_base, tmp_path):
        store = ImageStore(tmp_path)
        store.save(small_case_base)
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        assert manifest["layout"] == LAYOUT_VERSION
        manifest["layout"] = LAYOUT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        assert store.open(small_case_base) is None

    def test_open_or_build_recovers_and_then_hits(self, small_case_base, tmp_path):
        registry = MetricsRegistry()
        store = ImageStore(tmp_path, registry=registry)
        reopened, outcome = store.open_or_build(small_case_base)
        assert outcome == "miss" and reopened is not None
        reopened, outcome = store.open_or_build(small_case_base)
        assert outcome == "hit" and reopened is not None
        counts = catalog.image_reopens(registry).values()
        assert counts[("miss",)] == 1.0
        assert counts[("hit",)] == 1.0

    def test_reopen_counter_labels_every_outcome(self, small_case_base, tmp_path):
        registry = MetricsRegistry()
        store = ImageStore(tmp_path, registry=registry)
        store.open(small_case_base)  # miss
        store.save(small_case_base)
        store.open(small_case_base)  # hit
        implementation = small_case_base.get_type(2).sorted_implementations()[0]
        small_case_base.remove_implementation(2, implementation.implementation_id)
        store.open(small_case_base)  # stale
        counts = catalog.image_reopens(registry).values()
        assert counts == {("miss",): 1.0, ("hit",): 1.0, ("stale",): 1.0}


class TestWordImagePolicy:
    def test_never_skips_words_but_keeps_matrices(self, small_case_base, tmp_path):
        store = ImageStore(tmp_path)
        store.save(small_case_base, include_words="never")
        reopened = store.open(small_case_base)
        assert reopened is not None
        assert reopened.image is None
        assert set(reopened.matrices) == {
            function_type.type_id
            for function_type in small_case_base.sorted_types()
        }

    def test_auto_drops_words_on_16_bit_overflow(self, tmp_path):
        huge = CaseBaseGenerator(OVERFLOW_SPEC, seed=4).case_base()
        with pytest.raises(EncodingError):
            CaseBaseImage(huge)
        store = ImageStore(tmp_path)
        manifest = store.save(huge)  # include_words="auto"
        assert manifest["tree"] is None
        reopened = store.open(huge)
        assert reopened is not None and reopened.image is None
        assert len(reopened.matrices) == OVERFLOW_SPEC.type_count

    def test_always_propagates_the_overflow(self, tmp_path):
        huge = CaseBaseGenerator(OVERFLOW_SPEC, seed=4).case_base()
        with pytest.raises(EncodingError):
            ImageStore(tmp_path).save(huge, include_words="always")
