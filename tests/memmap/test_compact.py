"""Unit tests for the compact (shared-directory) case-base encoding."""

import pytest

from repro.core import CaseBase, EncodingError, ExecutionTarget, Implementation
from repro.memmap import (
    MISSING_VALUE,
    compact_size_bytes,
    compact_size_words,
    decode_compact_tree,
    decode_tree,
    encode_compact_tree,
    encode_tree,
)


class TestEncodeCompactTree:
    def test_round_trip_paper_case_base(self, paper_cb):
        decoded = decode_compact_tree(encode_compact_tree(paper_cb).words)
        assert decoded[1][2] == {1: 16, 2: 0, 3: 1, 4: 44}
        assert decoded[2][1] == {1: 16, 2: 0, 4: 44}

    def test_round_trip_generated_case_base(self, small_case_base):
        decoded = decode_compact_tree(encode_compact_tree(small_case_base).words)
        plain = decode_tree(encode_tree(small_case_base).words)
        assert decoded == plain

    def test_missing_attributes_survive_round_trip(self):
        case_base = CaseBase()
        function_type = case_base.add_type(1)
        function_type.add(Implementation(1, ExecutionTarget.FPGA, {1: 5, 3: 7}))
        function_type.add(Implementation(2, ExecutionTarget.GPP, {1: 9}))  # no attribute 3
        decoded = decode_compact_tree(encode_compact_tree(case_base).words)
        assert decoded[1][1] == {1: 5, 3: 7}
        assert decoded[1][2] == {1: 9}

    def test_compact_is_smaller_than_plain_for_table3_sizing(self):
        """The compact layout is what brings the footprint near the paper's 4.5 kB."""
        plain = compact_size_bytes(15, 10, 10)
        from repro.memmap import tree_size_bytes

        assert plain < tree_size_bytes(15, 10, 10)
        assert 3_000 < plain < 5_000

    def test_value_colliding_with_missing_marker_rejected(self):
        case_base = CaseBase()
        function_type = case_base.add_type(1)
        function_type.add(Implementation(1, ExecutionTarget.FPGA, {1: MISSING_VALUE}))
        with pytest.raises(EncodingError):
            encode_compact_tree(case_base)

    def test_empty_case_base_rejected(self):
        with pytest.raises(EncodingError):
            encode_compact_tree(CaseBase())

    def test_counts(self, paper_cb):
        encoded = encode_compact_tree(paper_cb)
        assert encoded.type_count == 2
        assert encoded.implementation_count == 5

    def test_analytic_size_matches_encoder_for_uniform_tree(self, small_generator):
        case_base = small_generator.case_base()
        spec = small_generator.spec
        encoded = encode_compact_tree(case_base)
        # The analytic formula assumes every implementation uses the same
        # attribute set; the generated case base samples per implementation, so
        # the directory can be larger.  The formula is therefore a lower bound.
        assert encoded.size_words >= compact_size_words(
            spec.type_count, spec.implementations_per_type, spec.attributes_per_implementation
        ) - spec.type_count * spec.attribute_type_count

    def test_size_helpers_validate_input(self):
        with pytest.raises(EncodingError):
            compact_size_words(1, -1, 1)


class TestDecodeCompactTree:
    def test_empty_image_rejected(self):
        with pytest.raises(EncodingError):
            decode_compact_tree([])

    def test_truncated_rows_rejected(self, paper_cb):
        words = list(encode_compact_tree(paper_cb).words)
        with pytest.raises(EncodingError):
            decode_compact_tree(words[:-3])
