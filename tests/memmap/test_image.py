"""Unit tests for the combined case-base memory image (CB-MEM / Req-MEM)."""

import pytest

from repro.core import paper_request
from repro.memmap import (
    CaseBaseImage,
    END_OF_LIST,
    build_memories,
    decode_request,
    decode_supplemental,
    decode_tree,
    request_size_bytes,
)
from repro.tools import CaseBaseGenerator, table3_spec


class TestCaseBaseImage:
    def test_case_base_ram_concatenates_tree_and_supplemental(self, paper_cb):
        image = CaseBaseImage(paper_cb)
        ram, supplemental_base = image.build_case_base_ram()
        assert supplemental_base == image.tree.size_words
        words = ram.dump()
        decoded_tree = decode_tree(words[:supplemental_base])
        assert set(decoded_tree) == {1, 2}
        decoded_bounds = decode_supplemental(words[supplemental_base:])
        assert decoded_bounds.ids() == [1, 2, 3, 4]

    def test_request_ram_is_padded_for_wide_fetch(self, paper_cb):
        image = CaseBaseImage(paper_cb)
        ram, encoded = image.build_request_ram(paper_request())
        assert len(ram) == len(encoded.words) + 1
        assert ram.peek(len(encoded.words) - 1) == END_OF_LIST
        decoded = decode_request(encoded.words)
        assert decoded.values() == paper_request().values()

    def test_footprint_default_request_is_worst_case(self, paper_cb):
        footprint = CaseBaseImage(paper_cb).footprint()
        assert footprint.request_bytes == request_size_bytes(10) == 64
        assert footprint.case_base_bytes == footprint.tree_bytes + footprint.supplemental_bytes
        assert footprint.total_bytes == footprint.case_base_bytes + footprint.request_bytes

    def test_footprint_with_explicit_request(self, paper_cb):
        footprint = CaseBaseImage(paper_cb).footprint(paper_request())
        assert footprint.request_bytes == (1 + 3 * 3 + 1) * 2

    def test_compact_footprint_is_smaller(self, paper_cb):
        footprint = CaseBaseImage(paper_cb).footprint()
        assert footprint.compact_tree_bytes < footprint.tree_bytes
        assert footprint.compact_case_base_bytes < footprint.case_base_bytes

    def test_table3_footprint_shape(self):
        """Table 3: case base of a few kB, request 64 bytes, a couple of BRAMs."""
        case_base = CaseBaseGenerator(table3_spec(), seed=5).case_base()
        footprint = CaseBaseImage(case_base).footprint()
        assert footprint.request_bytes == 64
        # The plain pairwise encoding is ~7 kB, the compact one ~3.7 kB; the
        # paper's 4.5 kB sits between the two.
        assert 6_000 < footprint.tree_bytes < 8_000
        assert 3_000 < footprint.compact_tree_bytes < 4_608
        assert footprint.bram_blocks() >= 2


class TestBuildMemories:
    def test_build_memories_returns_consistent_objects(self, paper_cb):
        ram, supplemental_base, request_ram, image = build_memories(paper_cb, paper_request())
        assert supplemental_base == image.tree.size_words
        assert request_ram.peek(0) == 1
        assert ram.peek(0) == 1
