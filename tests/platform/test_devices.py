"""Unit tests for FPGA and processor device models."""

import pytest

from repro.core import DeploymentInfo, ExecutionTarget, Implementation, PlatformError
from repro.platform import (
    DeviceKind,
    FpgaDevice,
    PlacedTask,
    ProcessorDevice,
    SlotSpec,
    audio_dsp,
    host_cpu,
    virtex2_3000_fpga,
)


def fpga_impl(implementation_id=1, area_slices=1000, power_mw=300.0):
    return Implementation(
        implementation_id,
        ExecutionTarget.FPGA,
        {1: 16},
        DeploymentInfo(area_slices=area_slices, power_mw=power_mw,
                       configuration_size_bytes=50_000),
    )


def software_impl(implementation_id=1, load=0.4, target=ExecutionTarget.GPP):
    return Implementation(
        implementation_id,
        target,
        {1: 16},
        DeploymentInfo(load_fraction=load, power_mw=100.0),
    )


def task(handle, implementation, **kwargs):
    return PlacedTask(handle=handle, type_id=1, implementation=implementation,
                      power_mw=implementation.deployment.power_mw, **kwargs)


class TestDeviceKind:
    def test_target_compatibility(self):
        assert DeviceKind.FPGA.supports(ExecutionTarget.FPGA)
        assert not DeviceKind.FPGA.supports(ExecutionTarget.GPP)
        assert DeviceKind.CPU.supports(ExecutionTarget.GPP)
        assert DeviceKind.DSP.supports(ExecutionTarget.DSP)


class TestFpgaDevice:
    def test_slot_geometry(self):
        spec = SlotSpec(slot_count=8, slices_per_slot=1500)
        assert spec.total_slices == 12000
        assert spec.slots_needed(1) == 1
        assert spec.slots_needed(1500) == 1
        assert spec.slots_needed(1501) == 2
        with pytest.raises(PlatformError):
            SlotSpec(0, 10)

    def test_place_and_remove_updates_slots(self):
        fpga = FpgaDevice("fpga0", SlotSpec(4, 1000))
        fpga.place(task(1, fpga_impl(area_slices=1800)))  # needs 2 slots
        assert fpga.free_slots() == 2
        assert fpga.utilization() == pytest.approx(0.5)
        assert fpga.placement(1) == (0, 2)
        fpga.remove(1)
        assert fpga.free_slots() == 4

    def test_capacity_check_requires_contiguous_slots(self):
        fpga = FpgaDevice("fpga0", SlotSpec(4, 1000))
        fpga.place(task(1, fpga_impl(1, area_slices=900)))      # slot 0
        fpga.place(task(2, fpga_impl(2, area_slices=900)))      # slot 1
        fpga.place(task(3, fpga_impl(3, area_slices=900)))      # slot 2
        fpga.remove(2)                                          # hole at slot 1
        assert fpga.has_capacity_for(fpga_impl(4, area_slices=900))
        assert not fpga.has_capacity_for(fpga_impl(4, area_slices=1800))

    def test_cannot_place_without_capacity(self):
        fpga = FpgaDevice("fpga0", SlotSpec(2, 1000))
        fpga.place(task(1, fpga_impl(1, area_slices=2000)))
        with pytest.raises(PlatformError):
            fpga.place(task(2, fpga_impl(2, area_slices=100)))

    def test_cannot_host_software_targets(self):
        fpga = FpgaDevice("fpga0", SlotSpec(2, 1000))
        assert not fpga.can_host(software_impl())
        with pytest.raises(PlatformError):
            fpga.place(task(1, software_impl()))

    def test_duplicate_handle_rejected(self):
        fpga = FpgaDevice("fpga0", SlotSpec(4, 1000))
        fpga.place(task(1, fpga_impl(1)))
        with pytest.raises(PlatformError):
            fpga.place(task(1, fpga_impl(2)))

    def test_power_accounts_for_idle_and_tasks(self):
        fpga = FpgaDevice("fpga0", SlotSpec(4, 1000), idle_power_mw=100.0)
        assert fpga.power_mw() == 100.0
        fpga.place(task(1, fpga_impl(power_mw=400.0)))
        assert fpga.power_mw() == 500.0

    def test_virtex2_3000_preset(self):
        fpga = virtex2_3000_fpga()
        assert fpga.slots.total_slices + fpga.static_region_slices <= 14336
        assert fpga.slots.slot_count == 8

    def test_preemption_candidates_sorted_by_age(self):
        fpga = FpgaDevice("fpga0", SlotSpec(4, 1000))
        fpga.place(task(1, fpga_impl(1), placed_at_us=50.0))
        fpga.place(task(2, fpga_impl(2), placed_at_us=10.0))
        fpga.place(task(3, fpga_impl(3), placed_at_us=30.0, preemptible=False))
        candidates = fpga.preemption_candidates()
        assert [c.handle for c in candidates] == [2, 1]


class TestProcessorDevice:
    def test_load_accounting(self):
        cpu = ProcessorDevice("cpu0", DeviceKind.CPU, load_limit=0.8)
        cpu.place(task(1, software_impl(1, load=0.3)))
        assert cpu.current_load() == pytest.approx(0.3)
        assert cpu.has_capacity_for(software_impl(2, load=0.5))
        assert not cpu.has_capacity_for(software_impl(2, load=0.6))
        assert cpu.utilization() == pytest.approx(0.375)

    def test_overload_rejected(self):
        cpu = ProcessorDevice("cpu0", DeviceKind.CPU, load_limit=0.5)
        cpu.place(task(1, software_impl(1, load=0.4)))
        with pytest.raises(PlatformError):
            cpu.place(task(2, software_impl(2, load=0.2)))

    def test_dsp_hosts_only_dsp_targets(self):
        dsp = audio_dsp()
        assert dsp.can_host(software_impl(target=ExecutionTarget.DSP))
        assert not dsp.can_host(software_impl(target=ExecutionTarget.GPP))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(PlatformError):
            ProcessorDevice("x", DeviceKind.FPGA)
        with pytest.raises(PlatformError):
            ProcessorDevice("x", DeviceKind.CPU, load_limit=0.0)

    def test_presets(self):
        assert host_cpu().kind is DeviceKind.CPU
        assert audio_dsp().kind is DeviceKind.DSP

    def test_task_lookup_and_missing_handle(self):
        cpu = host_cpu()
        cpu.place(task(7, software_impl(1, load=0.2)))
        assert cpu.task(7).handle == 7
        assert 7 in cpu
        with pytest.raises(PlatformError):
            cpu.task(8)
        with pytest.raises(PlatformError):
            cpu.remove(8)
