"""Unit tests for the device fleet (workers, image sync, outages)."""

import pytest

from repro.core import PlatformError, paper_case_base
from repro.platform import (
    DeviceFleet,
    LocalRuntimeController,
    RetrievalWorker,
    host_cpu,
)


@pytest.fixture
def fleet():
    return DeviceFleet.build(
        paper_case_base(), hardware_devices=2, software_devices=1
    )


class TestFleetConstruction:
    def test_build_registers_heterogeneous_workers(self, fleet):
        assert len(fleet) == 3
        assert [worker.name for worker in fleet.hardware_workers] == ["fpga0", "fpga1"]
        assert [worker.name for worker in fleet.software_workers] == ["cpu0"]
        # Workers of one kind share one host-side unit: it *is* the image
        # every device of that kind mirrors.
        hw0, hw1 = fleet.hardware_workers
        assert hw0.unit is hw1.unit
        assert hw0.clock_mhz == 66.0

    def test_workers_are_registered_with_the_resource_state(self, fleet):
        snapshot = fleet.snapshot()
        assert set(snapshot["workers"]) == {"fpga0", "fpga1", "cpu0"}
        assert set(snapshot["system"].devices) == {"fpga0", "fpga1", "cpu0"}
        assert snapshot["workers"]["fpga0"]["device_kind"] == "fpga"
        assert snapshot["workers"]["cpu0"]["kind"] == "software"

    def test_needs_at_least_one_device(self):
        with pytest.raises(PlatformError):
            DeviceFleet.build(paper_case_base(), hardware_devices=0, software_devices=0)
        with pytest.raises(PlatformError):
            DeviceFleet.build(paper_case_base(), hardware_devices=-1)

    def test_worker_names_must_be_unique(self):
        case_base = paper_case_base()
        workers = [
            RetrievalWorker(
                "cpu0", LocalRuntimeController(host_cpu("cpu0")),
                kind="software", clock_mhz=66.0, case_base=case_base,
            )
            for _ in range(2)
        ]
        with pytest.raises(PlatformError):
            DeviceFleet(case_base, workers)

    def test_hardware_worker_requires_a_reconfiguration_port(self):
        case_base = paper_case_base()
        with pytest.raises(PlatformError):
            RetrievalWorker(
                "cpu0", LocalRuntimeController(host_cpu("cpu0")),
                kind="hardware", clock_mhz=66.0, case_base=case_base,
            )

    def test_worker_lookup(self, fleet):
        assert fleet.worker("fpga1").kind == "hardware"
        with pytest.raises(PlatformError):
            fleet.worker("nonexistent")


class TestImageSync:
    def test_fresh_fleet_has_nothing_to_sync(self, fleet):
        assert fleet.sync(0.0) == []

    def test_small_delta_streams_incrementally(self):
        case_base = paper_case_base()
        fleet = DeviceFleet.build(case_base, hardware_devices=2, software_devices=1)
        full_bytes = fleet.image_word_count() * 2
        implementation = case_base.get_implementation(1, 1)
        case_base.replace_implementation(1, implementation)
        events = fleet.sync(100.0)
        assert [event.worker for event in events] == ["fpga0", "fpga1", "cpu0"]
        hardware_events = events[:2]
        for event in hardware_events:
            assert event.incremental
            assert 0 < event.bytes_streamed < full_bytes
            assert event.duration_us > 0
            assert event.start_us >= 100.0
        # Software workers adopt the image instantaneously (opcode is
        # fetched per placement, not per retrieval).
        assert events[2].duration_us == 0.0
        assert events[2].bytes_streamed == 0
        assert all(
            worker.image_revision == case_base.revision for worker in fleet.workers
        )
        # Re-syncing at the same revision is a no-op.
        assert fleet.sync(200.0) == []

    def test_truncated_log_streams_the_full_image(self):
        case_base = paper_case_base()
        fleet = DeviceFleet.build(case_base, hardware_devices=1)
        full_bytes = fleet.image_word_count() * 2
        implementation = case_base.get_implementation(1, 1)
        for _ in range(case_base.delta_log.capacity + 1):
            case_base.replace_implementation(1, implementation)
        (event,) = [e for e in fleet.sync(0.0) if e.worker == "fpga0"]
        assert not event.incremental
        assert event.bytes_streamed == full_bytes

    def test_sync_occupies_the_reconfiguration_port(self):
        case_base = paper_case_base()
        fleet = DeviceFleet.build(case_base, hardware_devices=1, software_devices=0)
        worker = fleet.worker("fpga0")
        case_base.replace_implementation(1, case_base.get_implementation(1, 1))
        (event,) = fleet.sync(50.0)
        # The device is unavailable until the stream completes.
        assert worker.available_from(50.0) == pytest.approx(event.end_us)
        assert worker.available_from(event.end_us + 1.0) == event.end_us + 1.0

    def test_fixed_reconfig_us_overrides_the_bandwidth_model(self):
        case_base = paper_case_base()
        fleet = DeviceFleet.build(
            case_base, hardware_devices=1, software_devices=0, reconfig_us=123.0
        )
        case_base.replace_implementation(1, case_base.get_implementation(1, 1))
        (event,) = fleet.sync(0.0)
        assert event.duration_us == 123.0

    def test_reset_timing_clears_port_state_but_not_revisions(self):
        case_base = paper_case_base()
        fleet = DeviceFleet.build(case_base, hardware_devices=1)
        worker = fleet.worker("fpga0")
        case_base.replace_implementation(1, case_base.get_implementation(1, 1))
        fleet.sync(0.0)
        assert worker.sync_events
        fleet.reset_timing()
        assert worker.sync_events == []
        assert worker.available_from(0.0) == 0.0
        assert worker.image_revision == case_base.revision


class TestOutages:
    def test_outage_window_delays_availability(self, fleet):
        worker = fleet.worker("fpga0")
        worker.add_outage(100.0, 300.0)
        assert worker.available_from(50.0) == 50.0
        assert worker.available_from(100.0) == 300.0
        assert worker.available_from(299.0) == 300.0
        assert worker.available_from(300.0) == 300.0

    def test_service_may_not_overlap_an_outage(self, fleet):
        """Work that would still be running at the outage starts after it."""
        worker = fleet.worker("fpga0")
        worker.add_outage(1_000.0, 2_000.0)
        # A zero-length probe just before the window is unaffected...
        assert worker.available_from(999.0) == 999.0
        # ...but a job whose service crosses into the window must wait.
        assert worker.available_from(999.0, 5_000.0) == 2_000.0
        assert worker.available_from(500.0, 400.0) == 500.0
        assert worker.available_from(500.0, 501.0) == 2_000.0

    def test_back_to_back_outages_chain(self, fleet):
        worker = fleet.worker("fpga0")
        worker.add_outage(400.0, 500.0)
        worker.add_outage(100.0, 400.0)
        assert worker.outages() == [(100.0, 400.0), (400.0, 500.0)]
        assert worker.available_from(150.0) == 500.0

    def test_invalid_outage_windows_are_rejected(self, fleet):
        worker = fleet.worker("fpga0")
        with pytest.raises(PlatformError):
            worker.add_outage(300.0, 300.0)
        with pytest.raises(PlatformError):
            worker.add_outage(-1.0, 300.0)
