"""Unit tests for local run-time controllers and the system resource state."""

import pytest

from repro.core import DeploymentInfo, ExecutionTarget, Implementation, PlatformError, paper_case_base
from repro.platform import (
    ConfigurationRepository,
    LocalRuntimeController,
    SlotSpec,
    FpgaDevice,
    SystemResourceState,
    host_cpu,
    virtex2_3000_fpga,
)


def fpga_impl(implementation_id=1, area_slices=1000, size=80_000):
    return Implementation(
        implementation_id, ExecutionTarget.FPGA, {1: 16},
        DeploymentInfo(area_slices=area_slices, configuration_size_bytes=size,
                       power_mw=300.0, setup_time_us=100.0),
    )


def cpu_impl(implementation_id=1, load=0.3):
    return Implementation(
        implementation_id, ExecutionTarget.GPP, {1: 16},
        DeploymentInfo(load_fraction=load, power_mw=120.0, setup_time_us=50.0,
                       configuration_size_bytes=4_000),
    )


class TestLocalRuntimeController:
    def test_fpga_placement_includes_reconfiguration_time(self):
        repository = ConfigurationRepository.from_case_base(paper_case_base())
        controller = LocalRuntimeController(virtex2_3000_fpga(), repository)
        implementation = paper_case_base().get_implementation(1, 1)
        report = controller.place(1, implementation, now_us=0.0)
        assert report.reconfiguration_time_us > 0
        assert report.repository_fetch_time_us > 0
        assert report.total_deploy_time_us > report.setup_time_us
        assert controller.utilization() > 0

    def test_software_placement_has_no_reconfiguration(self):
        controller = LocalRuntimeController(host_cpu())
        report = controller.place(1, cpu_impl())
        assert report.reconfiguration_time_us == 0.0
        assert report.setup_time_us == 50.0

    def test_place_rejects_wrong_target(self):
        controller = LocalRuntimeController(host_cpu())
        with pytest.raises(PlatformError):
            controller.place(1, fpga_impl())

    def test_place_rejects_when_full(self):
        controller = LocalRuntimeController(FpgaDevice("tiny", SlotSpec(1, 1000)))
        controller.place(1, fpga_impl(1, area_slices=900))
        with pytest.raises(PlatformError):
            controller.place(1, fpga_impl(2, area_slices=900))

    def test_remove_frees_capacity(self):
        controller = LocalRuntimeController(FpgaDevice("tiny", SlotSpec(1, 1000)))
        report = controller.place(1, fpga_impl(1, area_slices=900))
        controller.remove(report.handle)
        assert controller.can_place(fpga_impl(2, area_slices=900))

    def test_handles_are_globally_unique(self):
        a = LocalRuntimeController(host_cpu("cpu-a"))
        b = LocalRuntimeController(host_cpu("cpu-b"))
        handle_a = a.place(1, cpu_impl(1)).handle
        handle_b = b.place(1, cpu_impl(2)).handle
        assert handle_a != handle_b

    def test_preempt_for_removes_just_enough_tasks(self):
        controller = LocalRuntimeController(FpgaDevice("fpga", SlotSpec(2, 1000)))
        controller.place(1, fpga_impl(1, area_slices=900), now_us=0.0)
        controller.place(2, fpga_impl(2, area_slices=900), now_us=10.0)
        victims = controller.preempt_for(fpga_impl(3, area_slices=900))
        assert len(victims) == 1
        assert controller.can_place(fpga_impl(3, area_slices=900))

    def test_preempt_for_rolls_back_when_impossible(self):
        controller = LocalRuntimeController(FpgaDevice("fpga", SlotSpec(2, 1000)))
        controller.place(1, fpga_impl(1, area_slices=900))
        victims = controller.preempt_for(fpga_impl(2, area_slices=5000))  # can never fit
        assert victims == []
        assert len(controller.tasks()) == 1


class TestSystemResourceState:
    def _system(self, power_budget=None):
        return SystemResourceState(
            [LocalRuntimeController(virtex2_3000_fpga("fpga0")),
             LocalRuntimeController(host_cpu("cpu0"))],
            power_budget_mw=power_budget,
        )

    def test_snapshot_contains_all_devices(self):
        system = self._system()
        snapshot = system.snapshot()
        assert set(snapshot.devices) == {"fpga0", "cpu0"}
        assert snapshot.total_power_mw == pytest.approx(system.total_power_mw())
        assert snapshot.average_utilization() == 0.0

    def test_duplicate_controller_rejected(self):
        system = self._system()
        with pytest.raises(PlatformError):
            system.add_controller(LocalRuntimeController(host_cpu("cpu0")))

    def test_unknown_controller_lookup_raises(self):
        with pytest.raises(PlatformError):
            self._system().controller("dsp9")

    def test_power_budget_and_headroom(self):
        system = self._system(power_budget=1000.0)
        assert system.headroom_mw() == pytest.approx(1000.0 - system.total_power_mw())
        assert system.snapshot().within_power_budget
        with pytest.raises(PlatformError):
            SystemResourceState([], power_budget_mw=0.0)

    def test_headroom_without_budget_is_none(self):
        assert self._system().headroom_mw() is None

    def test_utilization_reflects_placements(self):
        system = self._system()
        system.controller("cpu0").place(1, cpu_impl(load=0.4))
        snapshot = system.snapshot()
        assert snapshot.utilization_of("cpu0") > 0.0
        assert snapshot.devices["cpu0"].task_count == 1
