"""Unit tests for the configuration repository and reconfiguration timing."""

import pytest

from repro.core import ExecutionTarget, PlatformError, paper_case_base
from repro.platform import (
    ConfigurationEntry,
    ConfigurationKind,
    ConfigurationRepository,
    ReconfigurationController,
)


class TestConfigurationRepository:
    def test_store_and_fetch(self):
        repository = ConfigurationRepository()
        repository.store(ConfigurationEntry(1, 1, ConfigurationKind.BITSTREAM, 96_000))
        entry = repository.fetch(1, 1)
        assert entry.size_bytes == 96_000
        assert repository.statistics.fetches == 1
        assert repository.statistics.bytes_read == 96_000

    def test_fetch_unknown_raises(self):
        with pytest.raises(PlatformError):
            ConfigurationRepository().fetch(1, 1)

    def test_kind_for_target(self):
        assert ConfigurationKind.for_target(ExecutionTarget.FPGA) is ConfigurationKind.BITSTREAM
        assert ConfigurationKind.for_target(ExecutionTarget.GPP) is ConfigurationKind.OPCODE
        assert ConfigurationKind.for_target(ExecutionTarget.DSP) is ConfigurationKind.OPCODE

    def test_fetch_time_scales_with_size_and_bandwidth(self):
        repository = ConfigurationRepository(read_bandwidth_mb_s=20.0)
        repository.store(ConfigurationEntry(1, 1, ConfigurationKind.BITSTREAM, 40_000))
        assert repository.fetch_time_us(1, 1) == pytest.approx(2000.0)
        fast = ConfigurationRepository(read_bandwidth_mb_s=40.0)
        fast.store(ConfigurationEntry(1, 1, ConfigurationKind.BITSTREAM, 40_000))
        assert fast.fetch_time_us(1, 1) == pytest.approx(1000.0)

    def test_from_case_base_covers_all_implementations(self):
        case_base = paper_case_base()
        repository = ConfigurationRepository.from_case_base(case_base)
        assert len(repository) == case_base.count_implementations()
        assert (1, 1) in repository and (2, 2) in repository
        entry = repository.fetch(1, 1)
        assert entry.kind is ConfigurationKind.BITSTREAM
        assert repository.fetch(1, 3).kind is ConfigurationKind.OPCODE
        assert repository.total_bytes() > 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(PlatformError):
            ConfigurationRepository(read_bandwidth_mb_s=0)
        with pytest.raises(PlatformError):
            ConfigurationEntry(1, 1, ConfigurationKind.OPCODE, -5)


class TestReconfigurationController:
    def test_transfer_time_follows_bandwidth(self):
        controller = ReconfigurationController("fpga0", bandwidth_mb_s=50.0, setup_overhead_us=25.0)
        assert controller.transfer_time_us(100_000) == pytest.approx(2000.0)
        assert controller.reconfiguration_time_us(100_000) == pytest.approx(2025.0)

    def test_serial_port_queues_overlapping_requests(self):
        controller = ReconfigurationController("fpga0", bandwidth_mb_s=50.0, setup_overhead_us=0.0)
        first = controller.schedule(1, 100_000, now_us=0.0)
        second = controller.schedule(2, 50_000, now_us=100.0)
        assert first.end_us == pytest.approx(2000.0)
        assert second.start_us == pytest.approx(first.end_us)
        assert controller.busy_until_us() == pytest.approx(second.end_us)

    def test_idle_port_starts_immediately(self):
        controller = ReconfigurationController("fpga0")
        event = controller.schedule(1, 10_000, now_us=500.0)
        assert event.start_us == 500.0

    def test_total_time_and_reset(self):
        controller = ReconfigurationController("fpga0", setup_overhead_us=0.0)
        controller.schedule(1, 50_000, 0.0)
        controller.schedule(2, 50_000, 0.0)
        assert controller.total_reconfiguration_time_us() == pytest.approx(2 * 1000.0)
        controller.reset()
        assert controller.busy_until_us() == 0.0
        assert controller.events == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PlatformError):
            ReconfigurationController("x", bandwidth_mb_s=0)
        with pytest.raises(PlatformError):
            ReconfigurationController("x", setup_overhead_us=-1)
        with pytest.raises(PlatformError):
            ReconfigurationController("x").transfer_time_us(-1)
