"""HugeCaseBaseWorkload: reserved-range contribution, traffic, end-to-end.

Small-scale unit coverage of the ISSUE-10 scale driver; the 10^5-row gates
live in ``benchmarks/test_bench_hugecb.py``.
"""

import random

import pytest

from repro.apps import HugeCaseBaseWorkload, build_case_base, default_workloads
from repro.apps.schema import platform_bounds, platform_schema
from repro.core import RetrievalEngine
from repro.core.case_base import CaseBase
from repro.core.exceptions import ReproError
from repro.serving.loadgen import trace_from_workloads

SMALL = dict(implementations=64, types=2, attributes=4, seed=3)


@pytest.fixture()
def workload():
    return HugeCaseBaseWorkload(**SMALL)


class TestConstruction:
    def test_counts_must_be_positive(self):
        with pytest.raises(ReproError, match="positive"):
            HugeCaseBaseWorkload(implementations=0)
        with pytest.raises(ReproError, match="positive"):
            HugeCaseBaseWorkload(types=0)

    def test_implementations_must_split_evenly(self):
        with pytest.raises(ReproError, match="do not split evenly"):
            HugeCaseBaseWorkload(implementations=100, types=3)

    def test_per_type_id_range_is_16_bit(self):
        with pytest.raises(ReproError, match="16-bit"):
            HugeCaseBaseWorkload(implementations=2 * 0x10000, types=2)

    def test_interarrival_must_be_positive(self):
        with pytest.raises(ReproError, match="mean_interarrival_us"):
            HugeCaseBaseWorkload(**{**SMALL, "mean_interarrival_us": 0.0})


class TestContribution:
    def test_synthetic_ids_stay_clear_of_the_platform_ranges(self, workload):
        case_base = build_case_base(default_workloads() + [workload])
        platform_attribute_ids = {
            attribute.attribute_id for attribute in platform_schema()
        }
        synthetic_types = [
            function_type.type_id
            for function_type in case_base.sorted_types()
            if function_type.type_id > HugeCaseBaseWorkload.TYPE_ID_BASE
        ]
        assert len(synthetic_types) == SMALL["types"]
        for type_id in synthetic_types:
            for implementation in case_base.get_type(type_id):
                assert all(
                    attribute_id > HugeCaseBaseWorkload.ATTRIBUTE_ID_BASE
                    for attribute_id in implementation.attribute_ids()
                )
                assert not set(implementation.attribute_ids()) & platform_attribute_ids
        case_base.validate()  # schema + bounds cover the extension

    def test_contribution_is_deterministic(self, workload):
        first = build_case_base([workload])
        second = build_case_base([HugeCaseBaseWorkload(**SMALL)])
        for function_type in first.sorted_types():
            twin = second.get_type(function_type.type_id)
            for implementation in function_type:
                assert (
                    twin.get(implementation.implementation_id).attributes
                    == implementation.attributes
                )

    def test_schema_extension_tolerates_predefined_attributes(self, workload):
        """Re-defining a synthetic attribute would raise SchemaError; the
        contribute guards must skip IDs another source already registered."""
        case_base = CaseBase(schema=platform_schema(), bounds=platform_bounds())
        shifted = HugeCaseBaseWorkload.ATTRIBUTE_ID_BASE + 1
        case_base.schema.define(shifted, "synthetic_attribute_1")
        case_base.bounds.define(shifted, 0, 1000)
        workload.contribute(case_base)
        case_base.validate()

    def test_total_library_size(self, workload):
        case_base = build_case_base([workload])
        synthetic = [
            function_type
            for function_type in case_base.sorted_types()
            if function_type.type_id > HugeCaseBaseWorkload.TYPE_ID_BASE
        ]
        assert sum(len(t) for t in synthetic) == SMALL["implementations"]


class TestTraffic:
    def test_requests_constrain_only_synthetic_names(self, workload):
        requests = workload.requests(random.Random(1), duration_us=100_000.0)
        assert requests
        for request in requests:
            assert request.type_id > HugeCaseBaseWorkload.TYPE_ID_BASE
            assert len(request.constraints) == workload.CONSTRAINTS_PER_REQUEST
            assert all(
                name.startswith("synthetic_attribute_")
                for name in request.constraints
            )
            assert set(request.weights) == set(request.constraints)

    def test_traffic_is_deterministic_in_the_rng(self, workload):
        first = workload.requests(random.Random(9), duration_us=50_000.0)
        second = workload.requests(random.Random(9), duration_us=50_000.0)
        assert [(r.issue_time_us, r.type_id, r.constraints) for r in first] == [
            (r.issue_time_us, r.type_id, r.constraints) for r in second
        ]


class TestEndToEnd:
    def test_trace_resolves_and_serves_bit_identically_across_prefilters(
        self, workload
    ):
        case_base = build_case_base([workload])
        trace = trace_from_workloads(
            [workload], duration_us=200_000.0, seed=3, schema=case_base.schema
        )
        assert trace
        off = RetrievalEngine(case_base, backend="vectorized", prefilter="off")
        bounds = RetrievalEngine(case_base, backend="vectorized", prefilter="bounds")
        for entry in trace[:8]:
            expected = off.retrieve_n_best(entry.request, 3)
            observed = bounds.retrieve_n_best(entry.request, 3)
            assert [
                (e.implementation_id, e.similarity) for e in observed.ranked
            ] == [(e.implementation_id, e.similarity) for e in expected.ranked]

    def test_out_of_core_library_serves_software_through_the_engine(self):
        """Past 16-bit CB-MEM addressing the serving stack must not crash:
        the host engine serves everything software-side, unpriced."""
        from repro.serving import ServingSpec

        workload = HugeCaseBaseWorkload(
            implementations=4096, types=2, attributes=10, seed=5
        )
        case_base = build_case_base([workload])
        trace = trace_from_workloads(
            [workload], duration_us=100_000.0, seed=5, schema=case_base.schema
        )
        assert trace
        spec = ServingSpec(prefilter="bounds")
        with spec.build_engine(case_base) as engine:
            report = engine.serve(trace)
        assert engine.admission.hardware_unit is None
        statuses = {record.status.value for record in report.served}
        assert statuses == {"served_software"}
        assert all(ranking for ranking in report.rankings())

    def test_unextended_platform_schema_cannot_resolve_the_constraints(
        self, workload
    ):
        case_base = build_case_base([workload])
        with pytest.raises(ReproError):
            trace_from_workloads([workload], duration_us=200_000.0, seed=3)
        # the served schema is the one that works
        trace = trace_from_workloads(
            [workload], duration_us=200_000.0, seed=3, schema=case_base.schema
        )
        assert trace
