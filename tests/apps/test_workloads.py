"""Tests for the example application workload models."""

import random

import pytest

from repro.apps import (
    AutomotiveEcuWorkload,
    CruiseControlWorkload,
    Mp3PlayerWorkload,
    VideoPlayerWorkload,
    build_case_base,
    default_workloads,
    platform_bounds,
    platform_schema,
)
from repro.core import CaseBase, RetrievalEngine


class TestPlatformSchema:
    def test_paper_attribute_ids_are_preserved(self):
        schema = platform_schema()
        assert schema.by_name("bitwidth").attribute_id == 1
        assert schema.by_name("output_mode").attribute_id == 3
        assert schema.by_name("sampling_rate").attribute_id == 4

    def test_bounds_cover_all_schema_attributes(self):
        schema = platform_schema()
        bounds = platform_bounds()
        for attribute in schema:
            assert attribute.attribute_id in bounds


class TestWorkloadContributions:
    def test_combined_case_base_is_valid(self):
        case_base = build_case_base()
        case_base.validate()
        assert len(case_base) == 7  # function types contributed by the four apps
        assert case_base.count_implementations() >= 15

    def test_each_workload_contributes_disjoint_types(self):
        seen = set()
        for workload in default_workloads():
            case_base = CaseBase(schema=platform_schema(), bounds=platform_bounds())
            workload.contribute(case_base)
            types = set(case_base.type_ids())
            assert types, f"{workload.name} contributes no function types"
            assert not (types & seen), f"{workload.name} re-uses another app's type IDs"
            seen |= types

    def test_every_type_has_variants_on_multiple_targets(self):
        case_base = build_case_base()
        for function_type in case_base:
            targets = {impl.target for impl in function_type}
            assert len(targets) >= 2, f"type {function_type.type_id} has a single target"

    def test_all_workload_attributes_stay_within_bounds(self):
        case_base = build_case_base()
        bounds = platform_bounds()
        for _, implementation in case_base.all_implementations():
            for attribute_id, value in implementation.attributes.items():
                assert bounds.get(attribute_id).contains(value)


class TestRequestGeneration:
    @pytest.mark.parametrize("workload_cls", [
        Mp3PlayerWorkload, VideoPlayerWorkload, AutomotiveEcuWorkload, CruiseControlWorkload,
    ])
    def test_requests_are_time_ordered_and_typed(self, workload_cls):
        workload = workload_cls()
        requests = workload.requests(random.Random(1), 2_000_000.0)
        assert requests, f"{workload.name} generated no requests"
        times = [request.issue_time_us for request in requests]
        assert times == sorted(times)
        case_base = build_case_base()
        for request in requests:
            assert request.type_id in case_base
            assert request.constraints
            assert request.hold_time_us > 0

    def test_generation_is_deterministic_per_seed(self):
        workload = Mp3PlayerWorkload()
        a = workload.requests(random.Random(7), 1_000_000.0)
        b = workload.requests(random.Random(7), 1_000_000.0)
        assert [(r.issue_time_us, r.type_id, r.constraints) for r in a] == [
            (r.issue_time_us, r.type_id, r.constraints) for r in b
        ]

    def test_workload_requests_are_satisfiable_by_the_case_base(self):
        """Every generated request retrieves at least one variant above 0.3."""
        case_base = build_case_base()
        engine = RetrievalEngine(case_base)
        schema = platform_schema()
        for workload in default_workloads():
            for request in workload.requests(random.Random(3), 1_500_000.0):
                constraints = [
                    (schema.by_name(name).attribute_id, schema.by_name(name).coerce(value))
                    for name, value in request.constraints.items()
                ]
                from repro.core import FunctionRequest

                result = engine.retrieve_best(FunctionRequest(request.type_id, constraints))
                assert result.best_similarity is not None
                assert result.best_similarity > 0.3

    def test_policies_are_distinct(self):
        policies = {workload.name: workload.policy() for workload in default_workloads()}
        assert policies["automotive-ecu"].accept_preemption is False
        assert policies["video-player"].accept_preemption is True
        assert policies["cruise-control"].minimum_similarity >= 0.8
