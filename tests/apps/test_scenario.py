"""Tests for the multi-application allocation scenario (experiment E10 substrate)."""

import pytest

from repro.apps import ScenarioRunner, build_platform, build_scenario
from repro.core import ReproError


class TestScenarioConstruction:
    def test_build_scenario_wires_everything(self):
        scenario = build_scenario()
        assert len(scenario.system) == 4  # 2 FPGAs + CPU + DSP
        assert scenario.manager.case_base is scenario.case_base
        assert len(scenario.repository) == scenario.case_base.count_implementations()
        assert set(scenario.application_api.applications()) == {
            "mp3-player", "video-player", "automotive-ecu", "cruise-control",
        }

    def test_platform_fpga_count_is_configurable(self):
        assert len(build_platform(fpga_count=1)) == 3
        assert len(build_platform(fpga_count=3)) == 5


class TestScenarioRun:
    def test_run_serves_most_requests_on_ample_platform(self):
        scenario = build_scenario(fpga_count=2)
        result = ScenarioRunner(scenario, seed=11).run(2_000_000.0)
        assert result.request_count > 10
        assert result.success_rate > 0.9
        summary = result.per_application()
        assert set(summary) <= {
            "mp3-player", "video-player", "automotive-ecu", "cruise-control",
        }
        assert sum(successes for _, successes in summary.values()) == result.success_count

    def test_constrained_platform_produces_contention(self):
        """With a single FPGA and a tight power budget some requests degrade or fail."""
        ample = build_scenario(fpga_count=2, power_budget_mw=None)
        tight = build_scenario(fpga_count=1, power_budget_mw=1800.0)
        ample_result = ScenarioRunner(ample, seed=11).run(2_500_000.0)
        tight_result = ScenarioRunner(tight, seed=11).run(2_500_000.0)
        assert tight_result.success_rate <= ample_result.success_rate
        tight_stats = tight.manager.statistics
        assert (
            tight_stats.allocated_alternative
            + tight_stats.rejected_infeasible
            + tight_stats.rejected_by_application
            + tight_stats.allocated_after_preemption
        ) > 0

    def test_run_is_deterministic_per_seed(self):
        a = ScenarioRunner(build_scenario(), seed=5).run(1_500_000.0)
        b = ScenarioRunner(build_scenario(), seed=5).run(1_500_000.0)
        assert a.request_count == b.request_count
        assert a.success_count == b.success_count
        assert [event.status for event in a.events] == [event.status for event in b.events]

    def test_platform_is_empty_after_the_run(self):
        scenario = build_scenario()
        ScenarioRunner(scenario, seed=3).run(1_000_000.0)
        snapshot = scenario.system.snapshot()
        assert all(device.task_count == 0 for device in snapshot.devices.values())

    def test_hardware_backend_scenario_records_cycles(self):
        scenario = build_scenario(retrieval_backend="hardware")
        result = ScenarioRunner(scenario, seed=2).run(1_000_000.0)
        assert result.request_count > 0
        assert scenario.manager.statistics.average_retrieval_cycles > 0
