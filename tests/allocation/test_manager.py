"""Integration-level tests for the allocation manager (request -> placement)."""

import pytest

from repro.allocation import (
    AllocationManager,
    AllocationStatus,
    ApplicationPolicy,
    QoSNegotiator,
)
from repro.core import (
    AllocationError,
    DeploymentInfo,
    ExecutionTarget,
    FunctionRequest,
    Implementation,
    paper_case_base,
    paper_request,
)
from repro.hardware import HardwareConfig
from repro.platform import (
    FpgaDevice,
    LocalRuntimeController,
    SlotSpec,
    SystemResourceState,
    audio_dsp,
    host_cpu,
)


def build_system(*, with_dsp=True, fpga_slots=4, power_budget=None):
    controllers = [
        LocalRuntimeController(FpgaDevice("fpga0", SlotSpec(fpga_slots, 1000), idle_power_mw=0.0)),
        LocalRuntimeController(host_cpu("cpu0")),
    ]
    if with_dsp:
        controllers.append(LocalRuntimeController(audio_dsp("dsp0")))
    return SystemResourceState(controllers, power_budget_mw=power_budget)


def build_manager(system=None, case_base=None, **kwargs):
    case_base = case_base if case_base is not None else paper_case_base()
    system = system if system is not None else build_system()
    return AllocationManager(case_base, system, **kwargs)


class TestBasicAllocation:
    def test_paper_request_lands_on_the_dsp(self):
        manager = build_manager()
        decision = manager.allocate(paper_request())
        assert decision.status is AllocationStatus.ALLOCATED
        assert decision.implementation.implementation_id == 2
        assert decision.device_name == "dsp0"
        assert decision.similarity == pytest.approx(0.96, abs=0.01)
        assert decision.handle is not None
        assert manager.statistics.successes == 1

    def test_unknown_function_type_is_rejected(self):
        manager = build_manager()
        decision = manager.allocate(FunctionRequest(42, [(1, 16)], requester="x"))
        assert decision.status is AllocationStatus.REJECTED_UNKNOWN_TYPE
        assert not decision.succeeded

    def test_threshold_rejects_everything(self):
        manager = build_manager(similarity_threshold=0.99)
        decision = manager.allocate(paper_request())
        assert decision.status is AllocationStatus.REJECTED_BELOW_THRESHOLD

    def test_alternative_when_best_target_is_missing(self):
        """Without a DSP on the platform the FPGA variant (second best) is used."""
        manager = build_manager(system=build_system(with_dsp=False))
        decision = manager.allocate(paper_request())
        assert decision.status is AllocationStatus.ALLOCATED_ALTERNATIVE
        assert decision.implementation.implementation_id == 1
        assert decision.device_name == "fpga0"

    def test_release_frees_the_platform(self):
        manager = build_manager()
        decision = manager.allocate(paper_request())
        manager.release(decision.handle)
        assert manager.statistics.releases == 1
        assert decision.handle not in manager.active_allocations()
        with pytest.raises(AllocationError):
            manager.release(decision.handle)

    def test_statistics_track_every_request(self):
        manager = build_manager()
        manager.allocate(paper_request())
        manager.allocate(FunctionRequest(42, [(1, 16)], requester="x"))
        assert manager.statistics.requests == 2
        assert manager.statistics.success_rate == pytest.approx(0.5)


class TestBypassTokens:
    def test_repeated_identical_call_uses_bypass(self):
        manager = build_manager()
        first = manager.allocate(paper_request())
        second = manager.allocate(paper_request())
        assert first.status is AllocationStatus.ALLOCATED
        assert second.status is AllocationStatus.ALLOCATED_VIA_BYPASS
        assert second.used_bypass
        assert manager.statistics.bypass_hits == 1
        # Only one platform placement exists.
        assert len(manager.active_allocations()) == 1

    def test_bypass_is_not_used_after_release(self):
        manager = build_manager()
        first = manager.allocate(paper_request())
        manager.release(first.handle)
        second = manager.allocate(paper_request())
        assert second.status is AllocationStatus.ALLOCATED
        assert not second.used_bypass

    def test_case_base_update_invalidates_bypass(self):
        manager = build_manager()
        manager.allocate(paper_request())
        manager.case_base.add_type(99)
        decision = manager.allocate(paper_request())
        assert not decision.used_bypass


class TestNegotiationPaths:
    def test_application_can_reject_all_offers(self):
        negotiator = QoSNegotiator()
        negotiator.register_policy(
            "audio-app", ApplicationPolicy(minimum_similarity=0.99, max_relaxations=0)
        )
        manager = build_manager(negotiator=negotiator)
        decision = manager.allocate(paper_request())
        assert decision.status is AllocationStatus.REJECTED_BY_APPLICATION

    def test_relaxation_round_can_rescue_a_request(self):
        """A request that is too demanding succeeds after the policy relaxes it."""
        negotiator = QoSNegotiator()
        negotiator.register_policy(
            "audio-app",
            ApplicationPolicy(
                minimum_similarity=0.95,
                relaxation_factors={4: 0.5},
                max_relaxations=1,
            ),
        )
        manager = build_manager(negotiator=negotiator, max_negotiation_rounds=2)
        # Requesting 80 kSamples/s makes even the DSP variant miss the 0.95 bar;
        # halving the demand brings it above the bar.
        request = FunctionRequest(1, [(1, 16), (3, 1), (4, 80)], requester="audio-app")
        decision = manager.allocate(request)
        assert decision.succeeded

    def test_preemption_is_reported(self):
        case_base = paper_case_base()
        system = build_system(fpga_slots=2, with_dsp=False)
        # Fill the FPGA with a non-requested function so the FPGA equalizer
        # variant needs a preemption.
        blocker = Implementation(
            9, ExecutionTarget.FPGA, {1: 16},
            DeploymentInfo(area_slices=1800, configuration_size_bytes=10_000),
        )
        case_base.add_implementation(2, blocker)
        system.controller("fpga0").place(2, blocker, requester="other")
        negotiator = QoSNegotiator(ApplicationPolicy(minimum_similarity=0.5, accept_preemption=True))
        manager = AllocationManager(case_base, system, negotiator=negotiator, n_candidates=2,
                                    similarity_threshold=0.5)
        decision = manager.allocate(paper_request())
        assert decision.status is AllocationStatus.ALLOCATED_AFTER_PREEMPTION
        assert len(decision.preempted_handles) == 1
        assert manager.statistics.preemptions == 1

    def test_infeasible_when_nothing_fits_and_no_preemption_allowed(self):
        case_base = paper_case_base()
        system = build_system(fpga_slots=1, with_dsp=False)
        # Occupy the CPU beyond the software variant's load requirement and the
        # single FPGA slot, so no candidate fits.
        cpu_blocker = Implementation(
            9, ExecutionTarget.GPP, {1: 16}, DeploymentInfo(load_fraction=0.8)
        )
        fpga_blocker = Implementation(
            8, ExecutionTarget.FPGA, {1: 16},
            DeploymentInfo(area_slices=900, configuration_size_bytes=10_000),
        )
        case_base.add_implementation(2, cpu_blocker)
        case_base.add_implementation(2, fpga_blocker)
        system.controller("cpu0").place(
            2, cpu_blocker, requester="other", preemptible=False
        )
        system.controller("fpga0").place(
            2, fpga_blocker, requester="other", preemptible=False
        )
        negotiator = QoSNegotiator(ApplicationPolicy(minimum_similarity=0.0, accept_preemption=True))
        manager = AllocationManager(case_base, system, negotiator=negotiator)
        decision = manager.allocate(paper_request())
        assert decision.status is AllocationStatus.REJECTED_INFEASIBLE


class TestHardwareBackend:
    def test_hardware_backend_reports_cycles_and_same_decision(self):
        reference = build_manager(retrieval_backend="reference")
        hardware = build_manager(retrieval_backend="hardware")
        ref_decision = reference.allocate(paper_request())
        hw_decision = hardware.allocate(paper_request())
        assert hw_decision.retrieval_cycles is not None and hw_decision.retrieval_cycles > 0
        assert hw_decision.implementation.implementation_id == ref_decision.implementation.implementation_id
        assert hardware.statistics.average_retrieval_cycles > 0

    def test_hardware_backend_follows_case_base_updates(self):
        manager = build_manager(retrieval_backend="hardware")
        manager.allocate(paper_request())
        # Add a better DSP variant and re-request: the new unit image must see it.
        manager.case_base.add_implementation(
            1,
            Implementation(
                7, ExecutionTarget.DSP, {1: 16, 2: 0, 3: 1, 4: 40},
                DeploymentInfo(load_fraction=0.1),
            ),
        )
        decision = manager.allocate(paper_request())
        assert decision.implementation.implementation_id == 7

    def test_hardware_config_n_best_is_widened_to_candidates(self):
        manager = build_manager(
            retrieval_backend="hardware",
            hardware_config=HardwareConfig(n_best=1),
            n_candidates=3,
        )
        decision = manager.allocate(paper_request())
        assert decision.succeeded
        assert len(decision.candidates) >= 1


class TestConstructorValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(AllocationError):
            build_manager(n_candidates=0)
        with pytest.raises(AllocationError):
            build_manager(similarity_threshold=1.5)
        with pytest.raises(AllocationError):
            build_manager(retrieval_backend="quantum")
        with pytest.raises(AllocationError):
            build_manager(max_negotiation_rounds=0)
