"""Unit tests for QoS negotiation policies and the negotiator."""

import pytest

from repro.allocation import ApplicationPolicy, Offer, QoSNegotiator
from repro.allocation.feasibility import FeasibilityReport, FeasibilityVerdict
from repro.core import ExecutionTarget, Implementation, NegotiationError, ScoredImplementation
from repro.core import paper_request


def make_offer(similarity: float, implementation_id: int = 1, preemption: bool = False) -> Offer:
    implementation = Implementation(implementation_id, ExecutionTarget.DSP, {1: 16})
    candidate = ScoredImplementation(1, implementation, similarity)
    verdict = (
        FeasibilityVerdict.FEASIBLE_WITH_PREEMPTION if preemption else FeasibilityVerdict.FEASIBLE
    )
    report = FeasibilityReport(verdict=verdict, implementation=implementation)
    return Offer(candidate=candidate, feasibility=report, requires_preemption=preemption)


class TestApplicationPolicy:
    def test_rejects_below_minimum_similarity(self):
        policy = ApplicationPolicy(minimum_similarity=0.7)
        assert policy.decide(make_offer(0.9))
        assert not policy.decide(make_offer(0.5))

    def test_preemption_tolerance(self):
        tolerant = ApplicationPolicy(accept_preemption=True)
        strict = ApplicationPolicy(accept_preemption=False)
        offer = make_offer(0.9, preemption=True)
        assert tolerant.decide(offer)
        assert not strict.decide(offer)

    def test_relax_applies_compounding_factors(self):
        policy = ApplicationPolicy(relaxation_factors={4: 0.5}, max_relaxations=2)
        request = paper_request()
        first = policy.relax(request, 0)
        second = policy.relax(request, 1)
        assert first.get(4).value == pytest.approx(20)
        assert second.get(4).value == pytest.approx(10)
        assert policy.relax(request, 2) is None

    def test_relax_without_factors_gives_up(self):
        policy = ApplicationPolicy(relaxation_factors={}, max_relaxations=3)
        assert policy.relax(paper_request(), 0) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(NegotiationError):
            ApplicationPolicy(minimum_similarity=1.5)
        with pytest.raises(NegotiationError):
            ApplicationPolicy(max_relaxations=-1)


class TestQoSNegotiator:
    def test_accepts_best_acceptable_offer(self):
        negotiator = QoSNegotiator(ApplicationPolicy(minimum_similarity=0.6))
        outcome = negotiator.negotiate("app", [make_offer(0.9, 1), make_offer(0.7, 2)])
        assert outcome.agreed
        assert outcome.accepted.candidate.implementation_id == 1
        assert outcome.offers_made == 1

    def test_skips_unacceptable_offers(self):
        negotiator = QoSNegotiator(ApplicationPolicy(minimum_similarity=0.6, accept_preemption=False))
        outcome = negotiator.negotiate(
            "app", [make_offer(0.9, 1, preemption=True), make_offer(0.7, 2)]
        )
        assert outcome.agreed
        assert outcome.accepted.candidate.implementation_id == 2
        assert outcome.offers_made == 2

    def test_failure_when_all_offers_refused(self):
        negotiator = QoSNegotiator(ApplicationPolicy(minimum_similarity=0.95))
        outcome = negotiator.negotiate("app", [make_offer(0.9), make_offer(0.8)])
        assert not outcome.agreed
        assert outcome.offers_made == 2
        assert "refused" in outcome.reason

    def test_per_application_policies(self):
        negotiator = QoSNegotiator(ApplicationPolicy(minimum_similarity=0.5))
        negotiator.register_policy("picky", ApplicationPolicy(minimum_similarity=0.99))
        assert negotiator.negotiate("easy", [make_offer(0.8)]).agreed
        assert not negotiator.negotiate("picky", [make_offer(0.8)]).agreed

    def test_propose_relaxation_delegates_to_policy(self):
        negotiator = QoSNegotiator()
        negotiator.register_policy(
            "app", ApplicationPolicy(relaxation_factors={4: 0.5}, max_relaxations=1)
        )
        relaxed = negotiator.propose_relaxation("app", paper_request(), 0)
        assert relaxed is not None and relaxed.get(4).value == pytest.approx(20)
        assert negotiator.propose_relaxation("app", paper_request(), 1) is None
