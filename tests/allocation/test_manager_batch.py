"""Batch allocation and batch retrieval through the allocation manager."""

import pytest

from repro.allocation import AllocationManager, AllocationStatus
from repro.core import FunctionRequest, paper_case_base, paper_request
from repro.platform import (
    FpgaDevice,
    LocalRuntimeController,
    SlotSpec,
    SystemResourceState,
    audio_dsp,
    host_cpu,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


def build_system():
    return SystemResourceState(
        [
            LocalRuntimeController(FpgaDevice("fpga0", SlotSpec(4, 1000), idle_power_mw=0.0)),
            LocalRuntimeController(host_cpu("cpu0")),
            LocalRuntimeController(audio_dsp("dsp0")),
        ]
    )


def build_manager(**kwargs):
    return AllocationManager(paper_case_base(), build_system(), **kwargs)


class TestManagerBackendSelection:
    def test_vectorized_backend_accepted(self):
        manager = build_manager(retrieval_backend="vectorized")
        assert manager.engine.backend_name == "vectorized"
        decision = manager.allocate(paper_request())
        assert decision.succeeded
        assert decision.implementation.implementation_id == 2

    def test_naive_alias_accepted(self):
        assert build_manager(retrieval_backend="naive").engine.backend_name == "naive"

    def test_vectorized_and_reference_make_identical_decisions(self):
        requests = [
            paper_request(),
            FunctionRequest(1, [(1, 8), (4, 20)], requester="app"),
            FunctionRequest(2, [(1, 16), (2, 1)], requester="app"),
        ]
        decisions = {}
        for backend in ("reference", "vectorized"):
            manager = build_manager(retrieval_backend=backend)
            decisions[backend] = [manager.allocate(request) for request in requests]
        for reference, vectorized in zip(decisions["reference"], decisions["vectorized"]):
            assert reference.status == vectorized.status
            assert reference.similarity == vectorized.similarity
            if reference.implementation is not None:
                assert (
                    reference.implementation.implementation_id
                    == vectorized.implementation.implementation_id
                )


class TestRetrieveBatch:
    def test_defaults_mirror_manager_settings(self):
        manager = build_manager(retrieval_backend="vectorized", n_candidates=2)
        results = manager.retrieve_batch([paper_request(), paper_request()])
        for result in results:
            assert len(result) == 2
            assert result.best_id == 2

    def test_explicit_threshold(self):
        manager = build_manager(retrieval_backend="vectorized")
        (result,) = manager.retrieve_batch([paper_request()], threshold=0.9)
        assert result.ids() == [2]


class TestAllocateBatch:
    def test_batch_matches_sequential_allocation(self):
        requests = [
            FunctionRequest(1, [(1, 16), (3, 1), (4, 40)], requester="audio"),
            FunctionRequest(2, [(1, 16), (2, 1)], requester="video"),
            FunctionRequest(1, [(1, 8), (4, 20)], requester="audio"),
        ]
        sequential_manager = build_manager(retrieval_backend="vectorized")
        sequential = [sequential_manager.allocate(request) for request in requests]
        batch_manager = build_manager(retrieval_backend="vectorized")
        batched = batch_manager.allocate_batch(requests)
        assert len(batched) == len(sequential)
        for one, many in zip(sequential, batched):
            assert one.status == many.status
            assert one.similarity == many.similarity
            assert one.device_name == many.device_name

    def test_unknown_type_is_rejected_per_request_not_raised(self):
        manager = build_manager(retrieval_backend="vectorized")
        decisions = manager.allocate_batch(
            [paper_request(), FunctionRequest(77, [(1, 16)], requester="x")]
        )
        assert decisions[0].succeeded
        assert decisions[1].status is AllocationStatus.REJECTED_UNKNOWN_TYPE

    def test_repeated_request_in_batch_hits_bypass(self):
        manager = build_manager(retrieval_backend="vectorized")
        first, second = manager.allocate_batch([paper_request(), paper_request()])
        assert first.status is AllocationStatus.ALLOCATED
        assert second.status is AllocationStatus.ALLOCATED_VIA_BYPASS

    def test_duplicate_signature_requests_prefetched_once(self):
        manager = build_manager(retrieval_backend="vectorized")
        duplicates = [paper_request() for _ in range(5)]
        prefetched = manager.prefetch_candidates(duplicates)
        # All five indices get (copies of) the single retrieval's candidates.
        assert sorted(prefetched) == [0, 1, 2, 3, 4]
        ids = [[c.implementation_id for c in candidates] for candidates in prefetched.values()]
        assert all(entry == ids[0] for entry in ids)
        decisions = manager.allocate_batch(duplicates)
        assert decisions[0].status is AllocationStatus.ALLOCATED
        assert all(
            d.status is AllocationStatus.ALLOCATED_VIA_BYPASS for d in decisions[1:]
        )

    def test_bypass_served_requests_are_not_prefetched(self):
        manager = build_manager(retrieval_backend="vectorized")
        manager.allocate(paper_request())
        hits_before = manager.bypass.statistics.hits
        prefetched = manager.prefetch_candidates([paper_request(), paper_request()])
        # The token peek neither prefetches nor perturbs the hit/miss counters.
        assert prefetched == {}
        assert manager.bypass.statistics.hits == hits_before
        decisions = manager.allocate_batch([paper_request()])
        assert decisions[0].status is AllocationStatus.ALLOCATED_VIA_BYPASS

    def test_unscreenable_scoring_error_matches_sequential_semantics(self):
        """A constrained attribute that implementations describe but the bounds
        table omits raises SchemaError during scoring; batch allocation must
        still serve the earlier requests before the error surfaces, exactly
        like sequential calls."""
        from repro.core import (
            BoundsTable,
            CaseBase,
            ExecutionTarget,
            Implementation,
            SchemaError,
        )

        def build_case_base():
            bounds = BoundsTable()
            bounds.define(1, 0, 100)  # attribute 2 deliberately unregistered
            case_base = CaseBase(bounds=bounds)
            case_base.add_type(1).add(
                Implementation(1, ExecutionTarget.GPP, {1: 50, 2: 7})
            )
            return case_base

        def run(mode):
            manager = AllocationManager(
                build_case_base(), build_system(), retrieval_backend="vectorized"
            )
            good = FunctionRequest(1, [(1, 50)], requester="x")
            bad = FunctionRequest(1, [(2, 5)], requester="x")
            with pytest.raises(SchemaError):
                if mode == "batch":
                    manager.allocate_batch([good, bad])
                else:
                    manager.allocate(good)
                    manager.allocate(bad)
            return len(manager.active_allocations())

        assert run("batch") == run("sequential") == 1

    def test_hardware_backend_still_works_without_prefetch(self):
        manager = build_manager(retrieval_backend="hardware")
        decisions = manager.allocate_batch([paper_request()])
        assert decisions[0].succeeded
        assert decisions[0].retrieval_cycles is not None

    @pytest.mark.parametrize("cycle_engine", ["stepwise", "vectorized", "auto"])
    def test_hardware_batch_matches_sequential_decisions(self, cycle_engine):
        requests = [
            paper_request(),
            FunctionRequest(1, [(1, 8), (4, 20)], requester="app"),
            FunctionRequest(2, [(1, 16), (2, 1)], requester="app"),
            paper_request(),
        ]
        batch_manager = build_manager(
            retrieval_backend="hardware", cycle_engine=cycle_engine
        )
        sequential_manager = build_manager(
            retrieval_backend="hardware", cycle_engine=cycle_engine
        )
        batched = batch_manager.allocate_batch(requests)
        sequential = [sequential_manager.allocate(request) for request in requests]
        for batch_decision, sequential_decision in zip(batched, sequential):
            assert batch_decision.status == sequential_decision.status
            assert batch_decision.similarity == sequential_decision.similarity
            assert batch_decision.retrieval_cycles == sequential_decision.retrieval_cycles

    def test_hardware_batch_prefetch_populates_candidates(self):
        manager = build_manager(retrieval_backend="hardware")
        requests = [paper_request(), FunctionRequest(2, [(1, 16), (2, 1)], requester="x")]
        prefetched = manager.prefetch_candidates(requests)
        assert set(prefetched) == {0, 1}
        assert prefetched[0][0].implementation_id == 2

    def test_unknown_cycle_engine_rejected(self):
        from repro.core.exceptions import AllocationError

        with pytest.raises(AllocationError, match="unknown cycle engine"):
            build_manager(cycle_engine="warp")

    def test_large_random_batch(self):
        generator = CaseBaseGenerator(
            GeneratorSpec(type_count=4, implementations_per_type=6,
                          attributes_per_implementation=5, attribute_type_count=8),
            seed=6,
        )
        manager = AllocationManager(
            generator.case_base(), build_system(), retrieval_backend="vectorized"
        )
        requests = [
            generator.request(salt=salt, attribute_count=4) for salt in range(24)
        ]
        decisions = manager.allocate_batch(requests)
        assert len(decisions) == 24
        assert manager.statistics.requests >= 24
