"""Unit tests for allocation decision records and statistics."""

import pytest

from repro.allocation import AllocationDecision, AllocationStatistics, AllocationStatus


def decision(status, *, bypass=False, cycles=None, preempted=()):
    return AllocationDecision(
        status=status,
        requester="app",
        type_id=1,
        used_bypass=bypass,
        retrieval_cycles=cycles,
        preempted_handles=list(preempted),
    )


class TestAllocationStatus:
    def test_success_classification(self):
        successes = {
            AllocationStatus.ALLOCATED,
            AllocationStatus.ALLOCATED_ALTERNATIVE,
            AllocationStatus.ALLOCATED_AFTER_PREEMPTION,
            AllocationStatus.ALLOCATED_VIA_BYPASS,
        }
        for status in AllocationStatus:
            assert status.is_success == (status in successes)


class TestAllocationStatistics:
    def test_every_status_is_counted_in_its_bucket(self):
        statistics = AllocationStatistics()
        for status in AllocationStatus:
            statistics.record(decision(status))
        assert statistics.requests == len(AllocationStatus)
        assert statistics.allocated == 2  # ALLOCATED + ALLOCATED_VIA_BYPASS
        assert statistics.allocated_alternative == 1
        assert statistics.allocated_after_preemption == 1
        assert statistics.rejected_no_match == 1
        assert statistics.rejected_below_threshold == 1
        assert statistics.rejected_infeasible == 1
        assert statistics.rejected_by_application == 1
        assert statistics.rejected_unknown_type == 1
        assert statistics.successes == 4
        assert statistics.success_rate == pytest.approx(4 / len(AllocationStatus))

    def test_bypass_and_retrieval_counters(self):
        statistics = AllocationStatistics()
        statistics.record(decision(AllocationStatus.ALLOCATED, cycles=100))
        statistics.record(decision(AllocationStatus.ALLOCATED_VIA_BYPASS, bypass=True))
        statistics.record(decision(AllocationStatus.ALLOCATED, cycles=200))
        assert statistics.bypass_hits == 1
        assert statistics.retrievals == 2
        assert statistics.average_retrieval_cycles == pytest.approx(150.0)

    def test_preemption_counter(self):
        statistics = AllocationStatistics()
        statistics.record(
            decision(AllocationStatus.ALLOCATED_AFTER_PREEMPTION, preempted=(3, 4))
        )
        assert statistics.preemptions == 2

    def test_empty_statistics_edge_cases(self):
        statistics = AllocationStatistics()
        assert statistics.success_rate == 0.0
        assert statistics.average_retrieval_cycles == 0.0


class TestAllocationDecision:
    def test_handle_is_none_without_placement(self):
        record = decision(AllocationStatus.REJECTED_NO_MATCH)
        assert record.handle is None
        assert not record.succeeded

    def test_succeeded_mirrors_status(self):
        assert decision(AllocationStatus.ALLOCATED).succeeded
        assert not decision(AllocationStatus.REJECTED_INFEASIBLE).succeeded
