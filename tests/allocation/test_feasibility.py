"""Unit tests for the feasibility checker of the allocation layer."""

import pytest

from repro.allocation import FeasibilityChecker, FeasibilityVerdict
from repro.core import DeploymentInfo, ExecutionTarget, Implementation
from repro.platform import (
    FpgaDevice,
    LocalRuntimeController,
    SlotSpec,
    SystemResourceState,
    host_cpu,
)


def fpga_impl(implementation_id=1, area_slices=900, power_mw=300.0):
    return Implementation(
        implementation_id, ExecutionTarget.FPGA, {1: 16},
        DeploymentInfo(area_slices=area_slices, power_mw=power_mw,
                       configuration_size_bytes=40_000),
    )


def cpu_impl(implementation_id=1, load=0.3, power_mw=100.0):
    return Implementation(
        implementation_id, ExecutionTarget.GPP, {1: 16},
        DeploymentInfo(load_fraction=load, power_mw=power_mw),
    )


def dsp_impl(implementation_id=1):
    return Implementation(implementation_id, ExecutionTarget.DSP, {1: 16},
                          DeploymentInfo(load_fraction=0.4, power_mw=150.0))


@pytest.fixture
def system():
    return SystemResourceState(
        [
            LocalRuntimeController(FpgaDevice("fpga0", SlotSpec(2, 1000), idle_power_mw=0.0)),
            LocalRuntimeController(host_cpu("cpu0")),
        ],
        power_budget_mw=1500.0,
    )


class TestFeasibilityChecker:
    def test_feasible_on_idle_platform(self, system):
        report = FeasibilityChecker(system).check(fpga_impl())
        assert report.verdict is FeasibilityVerdict.FEASIBLE
        assert report.is_feasible
        assert report.controller is not None and report.controller.name == "fpga0"

    def test_no_hosting_device(self, system):
        report = FeasibilityChecker(system).check(dsp_impl())
        assert report.verdict is FeasibilityVerdict.INFEASIBLE_NO_DEVICE
        assert not report.is_feasible

    def test_power_budget_violation(self, system):
        report = FeasibilityChecker(system).check(fpga_impl(power_mw=5000.0))
        assert report.verdict is FeasibilityVerdict.INFEASIBLE_POWER

    def test_preemption_path(self, system):
        controller = system.controller("fpga0")
        controller.place(1, fpga_impl(1, area_slices=900))
        controller.place(1, fpga_impl(2, area_slices=900))
        report = FeasibilityChecker(system).check(fpga_impl(3, area_slices=900))
        assert report.verdict is FeasibilityVerdict.FEASIBLE_WITH_PREEMPTION
        assert report.preemption_count == 1
        # The dry run must not actually remove anything.
        assert len(controller.tasks()) == 2

    def test_preemption_disabled(self, system):
        controller = system.controller("fpga0")
        controller.place(1, fpga_impl(1, area_slices=900))
        controller.place(1, fpga_impl(2, area_slices=900))
        checker = FeasibilityChecker(system, allow_preemption=False)
        report = checker.check(fpga_impl(3, area_slices=900))
        assert report.verdict is FeasibilityVerdict.INFEASIBLE_CAPACITY

    def test_capacity_exhausted_even_with_preemption(self, system):
        report = FeasibilityChecker(system).check(fpga_impl(area_slices=10_000))
        assert report.verdict is FeasibilityVerdict.INFEASIBLE_CAPACITY

    def test_prefers_least_utilised_device(self):
        fpga_a = LocalRuntimeController(FpgaDevice("fpga0", SlotSpec(2, 1000), idle_power_mw=0.0))
        fpga_b = LocalRuntimeController(FpgaDevice("fpga1", SlotSpec(2, 1000), idle_power_mw=0.0))
        system = SystemResourceState([fpga_a, fpga_b])
        fpga_a.place(1, fpga_impl(1, area_slices=900))
        report = FeasibilityChecker(system).check(fpga_impl(2, area_slices=900))
        assert report.controller.name == "fpga1"

    def test_rank_preserves_order(self, system):
        checker = FeasibilityChecker(system)
        reports = checker.rank([fpga_impl(1), cpu_impl(2), dsp_impl(3)])
        assert [report.implementation.implementation_id for report in reports] == [1, 2, 3]
        assert reports[0].is_feasible and reports[1].is_feasible
        assert not reports[2].is_feasible
