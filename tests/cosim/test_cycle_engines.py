"""Differential suite: the vectorized cycle engine vs the stepwise golden models.

The vectorized engine's contract is *exactness*, not approximation: for every
configuration axis it must reproduce the stepwise models' retrieval decision,
ranked n-best list, raw fixed-point similarities and the complete
cycle/instruction/memory-read accounting, bit for bit and cycle for cycle.
"""

import itertools

import pytest

from repro.core import FunctionRequest, paper_case_base, paper_request
from repro.core.case_base import ExecutionTarget, Implementation
from repro.core.exceptions import (
    EncodingError,
    HardwareModelError,
    ReproError,
    SoftwareModelError,
    UnknownFunctionTypeError,
)
from repro.cosim import (
    ColumnarImage,
    StepwiseCycleEngine,
    VectorizedCycleEngine,
    resolve_cycle_engine,
)
from repro.hardware import HardwareConfig, HardwareRetrievalUnit
from repro.software import (
    SoftwareRetrievalUnit,
    microblaze_cost_model,
    microblaze_soft_multiply_model,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


HW_STAT_FIELDS = (
    "cycles", "case_base_reads", "request_reads", "implementations_visited",
    "attribute_probes", "supplemental_probes", "missing_attributes", "best_updates",
)
SW_STAT_FIELDS = (
    "cycles", "instructions", "memory_reads", "implementations_visited",
    "helper_calls", "missing_attributes",
)


def assert_hardware_identical(stepwise, vectorized):
    assert stepwise.type_id == vectorized.type_id
    assert stepwise.best_id == vectorized.best_id
    assert stepwise.best_similarity_raw == vectorized.best_similarity_raw
    assert stepwise.ranked == vectorized.ranked
    for field in HW_STAT_FIELDS:
        assert getattr(stepwise.statistics, field) == getattr(vectorized.statistics, field), field
    assert stepwise.statistics.memory_reads == vectorized.statistics.memory_reads


def assert_software_identical(stepwise, vectorized):
    assert stepwise.type_id == vectorized.type_id
    assert stepwise.best_id == vectorized.best_id
    assert stepwise.best_similarity_raw == vectorized.best_similarity_raw
    for field in SW_STAT_FIELDS:
        assert getattr(stepwise.statistics, field) == getattr(vectorized.statistics, field), field
    assert stepwise.counters.counts == vectorized.counters.counts


@pytest.fixture(scope="module")
def generated():
    generator = CaseBaseGenerator(
        GeneratorSpec(
            type_count=4,
            implementations_per_type=6,
            attributes_per_implementation=6,
            attribute_type_count=9,
            missing_probability=0.25,
        ),
        seed=31,
    )
    case_base = generator.case_base()
    requests = [generator.request(salt=salt, attribute_count=5) for salt in range(10)]
    return case_base, requests


class TestHardwareDifferential:
    @pytest.mark.parametrize("wide", [False, True])
    @pytest.mark.parametrize("pipelined", [False, True])
    @pytest.mark.parametrize("cache", [False, True])
    @pytest.mark.parametrize("n_best", [1, 3, 8])
    def test_optimisation_axes(self, generated, wide, pipelined, cache, n_best):
        case_base, requests = generated
        unit = HardwareRetrievalUnit(
            case_base,
            config=HardwareConfig(
                wide_attribute_fetch=wide,
                pipelined_datapath=pipelined,
                cache_reciprocals=cache,
                n_best=n_best,
            ),
        )
        for stepwise, vectorized in zip(
            unit.run_batch(requests, engine="stepwise"),
            unit.run_batch(requests, engine="vectorized"),
        ):
            assert_hardware_identical(stepwise, vectorized)

    @pytest.mark.parametrize("restart", [False, True])
    @pytest.mark.parametrize("divider", [False, True])
    def test_design_alternative_axes(self, generated, restart, divider):
        case_base, requests = generated
        unit = HardwareRetrievalUnit(
            case_base,
            config=HardwareConfig(
                restart_attribute_search=restart, use_divider=divider, n_best=2
            ),
        )
        for stepwise, vectorized in zip(
            unit.run_batch(requests, engine="stepwise"),
            unit.run_batch(requests, engine="vectorized"),
        ):
            assert_hardware_identical(stepwise, vectorized)

    def test_paper_example(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb)
        stepwise = unit.run_batch([paper_req], engine="stepwise")[0]
        vectorized = unit.run_batch([paper_req], engine="vectorized")[0]
        assert_hardware_identical(stepwise, vectorized)
        assert vectorized.best_id == 2
        assert vectorized.best_similarity == pytest.approx(0.964, abs=0.002)

    def test_duplicate_requests_grouped(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb)
        results = unit.run_batch([paper_req] * 4, engine="vectorized")
        reference = unit.run(paper_req)
        for result in results:
            assert_hardware_identical(reference, result)

    def test_empty_type_parity(self, paper_cb):
        paper_cb.add_type(9, name="empty")
        request = FunctionRequest(9, [(1, 16)])
        unit = HardwareRetrievalUnit(paper_cb)
        stepwise = unit.run_batch([request], engine="stepwise")[0]
        vectorized = unit.run_batch([request], engine="vectorized")[0]
        assert_hardware_identical(stepwise, vectorized)
        assert vectorized.ranked == []

    @pytest.mark.parametrize("engine", ["stepwise", "vectorized"])
    def test_unknown_type_raises(self, paper_cb, engine):
        unit = HardwareRetrievalUnit(paper_cb)
        with pytest.raises(UnknownFunctionTypeError):
            unit.run_batch([FunctionRequest(99, [(1, 16)])], engine=engine)

    @pytest.mark.parametrize("engine", ["stepwise", "vectorized"])
    def test_missing_bounds_entry_raises_same_message(self, paper_cb, engine):
        unit = HardwareRetrievalUnit(paper_cb)
        with pytest.raises(HardwareModelError, match="attribute 5 has no supplemental"):
            unit.run_batch([FunctionRequest(1, [(5, 3)])], engine=engine)

    @pytest.mark.parametrize("engine", ["stepwise", "vectorized"])
    def test_unconstrained_request_raises(self, paper_cb, engine):
        unit = HardwareRetrievalUnit(paper_cb)
        with pytest.raises(EncodingError):
            unit.run_batch([FunctionRequest(1, [])], engine=engine)

    def test_trace_requires_stepwise(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(trace=True))
        with pytest.raises(HardwareModelError, match="stepwise"):
            unit.run_batch([paper_req], engine="vectorized")
        # "auto" transparently falls back to the stepwise walk.
        result = unit.run_batch([paper_req], engine="auto")[0]
        assert result.trace is not None
        assert result.trace.total_cycles() == result.cycles


class TestSoftwareDifferential:
    @pytest.mark.parametrize("inline", [False, True])
    @pytest.mark.parametrize("soft_multiply", [False, True])
    def test_code_generation_axes(self, generated, inline, soft_multiply):
        case_base, requests = generated
        cost_model = (
            microblaze_soft_multiply_model() if soft_multiply else microblaze_cost_model()
        )
        unit = SoftwareRetrievalUnit(
            case_base, cost_model=cost_model, inline_helpers=inline
        )
        for stepwise, vectorized in zip(
            unit.run_batch(requests, engine="stepwise"),
            unit.run_batch(requests, engine="vectorized"),
        ):
            assert_software_identical(stepwise, vectorized)

    def test_paper_example(self, paper_cb, paper_req):
        unit = SoftwareRetrievalUnit(paper_cb)
        stepwise = unit.run_batch([paper_req], engine="stepwise")[0]
        vectorized = unit.run_batch([paper_req], engine="vectorized")[0]
        assert_software_identical(stepwise, vectorized)

    @pytest.mark.parametrize("engine", ["stepwise", "vectorized"])
    def test_missing_bounds_entry_raises_same_message(self, paper_cb, engine):
        unit = SoftwareRetrievalUnit(paper_cb)
        with pytest.raises(SoftwareModelError, match="attribute 5 has no supplemental"):
            unit.run_batch([FunctionRequest(1, [(5, 3)])], engine=engine)

    def test_empty_type_parity(self, paper_cb):
        paper_cb.add_type(9, name="empty")
        request = FunctionRequest(9, [(1, 16)])
        unit = SoftwareRetrievalUnit(paper_cb)
        assert_software_identical(
            unit.run_batch([request], engine="stepwise")[0],
            unit.run_batch([request], engine="vectorized")[0],
        )


class TestSpeedupParity:
    """The paper's E4 ratio is engine independent (cycle counts are exact)."""

    def test_hw_vs_sw_ratio_identical_across_engines(self, generated):
        case_base, requests = generated
        hardware = HardwareRetrievalUnit(case_base)
        software = SoftwareRetrievalUnit(case_base)
        for engine in ("stepwise", "vectorized"):
            hw = hardware.run_batch(requests, engine=engine)
            sw = software.run_batch(requests, engine=engine)
            ratios = [s.cycles / h.cycles for h, s in zip(hw, sw)]
            assert all(4.0 < ratio < 14.0 for ratio in ratios)
        # and the per-request cycle counts match exactly between engines
        assert [r.cycles for r in hardware.run_batch(requests, engine="stepwise")] == [
            r.cycles for r in hardware.run_batch(requests, engine="vectorized")
        ]


class TestCaching:
    def test_request_cache_reused_and_invalidated(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb)
        first = unit.run(paper_req)
        assert len(unit._request_cache) == 1
        second = unit.run(paper_req)
        assert len(unit._request_cache) == 1
        assert first.cycles == second.cycles
        paper_cb.add_implementation(
            1, Implementation(8, ExecutionTarget.DSP, {1: 16, 2: 0, 3: 1, 4: 40})
        )
        third = unit.run(paper_req)
        assert third.best_id == 8  # the refreshed image sees the new variant
        assert len(unit._request_cache) == 1  # re-encoded after invalidation

    def test_columnar_cache_follows_revision(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb)
        columnar = unit.columnar_image()
        assert unit.columnar_image() is columnar
        paper_cb.add_implementation(
            1, Implementation(8, ExecutionTarget.DSP, {1: 16, 2: 0, 3: 1, 4: 40})
        )
        refreshed = unit.columnar_image()
        assert refreshed is not columnar
        assert refreshed.types[1].implementation_count == 4
        stepwise = unit.run_batch([paper_req], engine="stepwise")[0]
        vectorized = unit.run_batch([paper_req], engine="vectorized")[0]
        assert_hardware_identical(stepwise, vectorized)

    def test_software_unit_follows_revision(self, paper_cb, paper_req):
        unit = SoftwareRetrievalUnit(paper_cb)
        unit.run(paper_req)
        paper_cb.add_implementation(
            1, Implementation(8, ExecutionTarget.DSP, {1: 16, 2: 0, 3: 1, 4: 40})
        )
        assert unit.run_batch([paper_req], engine="vectorized")[0].best_id == 8
        assert_software_identical(
            unit.run_batch([paper_req], engine="stepwise")[0],
            unit.run_batch([paper_req], engine="vectorized")[0],
        )

    def test_request_cache_capacity_is_bounded(self, small_generator):
        case_base = small_generator.case_base()
        unit = HardwareRetrievalUnit(case_base)
        unit.REQUEST_CACHE_CAPACITY = 4
        requests = [small_generator.request(salt=salt, attribute_count=3) for salt in range(9)]
        for request in requests:
            unit.run(request)
        assert len(unit._request_cache) <= 4


class TestEngineResolution:
    def test_resolve_names_and_instances(self):
        assert isinstance(resolve_cycle_engine("stepwise"), StepwiseCycleEngine)
        assert isinstance(resolve_cycle_engine("vectorized"), VectorizedCycleEngine)
        assert isinstance(resolve_cycle_engine("auto"), VectorizedCycleEngine)
        assert isinstance(
            resolve_cycle_engine("auto", prefer_vectorized=False), StepwiseCycleEngine
        )
        engine = StepwiseCycleEngine()
        assert resolve_cycle_engine(engine) is engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError, match="unknown cycle engine"):
            resolve_cycle_engine("warp")

    def test_columnar_image_matches_word_image(self, paper_cb):
        unit = HardwareRetrievalUnit(paper_cb)
        columnar = ColumnarImage(unit.image)
        tree = unit.image.tree
        assert set(columnar.types) == set(tree.address_map.implementation_lists)
        total = sum(columns.implementation_count for columns in columnar.types.values())
        assert total == tree.implementation_count
        assert columnar.supplemental_ids.shape[0] == len(unit.image.supplemental.reciprocals)


class TestConfigurationSweep:
    """One full cartesian sweep on a small case base (the heavy differential)."""

    def test_all_axes_exact(self, small_generator):
        case_base = small_generator.case_base()
        requests = [small_generator.request(salt=salt, attribute_count=4) for salt in range(4)]
        axes = itertools.product(
            [False, True], [False, True], [False, True], [False, True], [1, 4]
        )
        for wide, pipelined, cache, divider, n_best in axes:
            unit = HardwareRetrievalUnit(
                case_base,
                config=HardwareConfig(
                    wide_attribute_fetch=wide,
                    pipelined_datapath=pipelined,
                    cache_reciprocals=cache,
                    use_divider=divider,
                    n_best=n_best,
                ),
            )
            for stepwise, vectorized in zip(
                unit.run_batch(requests, engine="stepwise"),
                unit.run_batch(requests, engine="vectorized"),
            ):
                assert_hardware_identical(stepwise, vectorized)


class TestPredictCycles:
    """The cycles-only prediction path equals the full runs, on every engine."""

    @pytest.mark.parametrize("wide", [False, True])
    @pytest.mark.parametrize("pipelined", [False, True])
    @pytest.mark.parametrize("cache", [False, True])
    @pytest.mark.parametrize("n_best", [1, 3, 8])
    def test_optimisation_axes(self, generated, wide, pipelined, cache, n_best):
        case_base, requests = generated
        unit = HardwareRetrievalUnit(
            case_base,
            config=HardwareConfig(
                wide_attribute_fetch=wide,
                pipelined_datapath=pipelined,
                cache_reciprocals=cache,
                n_best=n_best,
            ),
        )
        golden = [result.cycles for result in unit.run_batch(requests, engine="stepwise")]
        assert unit.predict_cycles(requests, engine="vectorized") == golden
        assert unit.predict_cycles(requests, engine="stepwise") == golden

    @pytest.mark.parametrize("restart", [False, True])
    @pytest.mark.parametrize("divider", [False, True])
    def test_design_alternative_axes(self, generated, restart, divider):
        case_base, requests = generated
        unit = HardwareRetrievalUnit(
            case_base,
            config=HardwareConfig(
                restart_attribute_search=restart,
                use_divider=divider,
            ),
        )
        golden = [result.cycles for result in unit.run_batch(requests, engine="stepwise")]
        assert unit.predict_cycles(requests, engine="vectorized") == golden

    def test_paper_example(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb)
        assert unit.predict_cycles([paper_req]) == [unit.run(paper_req).cycles]

    def test_trace_requires_stepwise(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(trace=True))
        with pytest.raises(HardwareModelError, match="stepwise"):
            unit.predict_cycles([paper_req], engine="vectorized")


class TestSoftwarePredictCycles:
    """The software cycles-only path equals the full runs, on every engine."""

    @pytest.mark.parametrize("inline", [False, True])
    @pytest.mark.parametrize("soft_multiply", [False, True])
    def test_code_generation_axes(self, generated, inline, soft_multiply):
        case_base, requests = generated
        cost_model = (
            microblaze_soft_multiply_model() if soft_multiply else microblaze_cost_model()
        )
        unit = SoftwareRetrievalUnit(
            case_base, cost_model=cost_model, inline_helpers=inline
        )
        golden = [result.cycles for result in unit.run_batch(requests, engine="stepwise")]
        assert unit.predict_cycles(requests, engine="vectorized") == golden
        assert unit.predict_cycles(requests, engine="stepwise") == golden

    def test_paper_example(self, paper_cb, paper_req):
        unit = SoftwareRetrievalUnit(paper_cb)
        assert unit.predict_cycles([paper_req]) == [unit.run(paper_req).cycles]
