"""Tests for the FPGA resource/timing estimator (Table 2)."""

import pytest

from repro.core import paper_case_base
from repro.hardware import (
    HardwareConfig,
    PAPER_TABLE2,
    ResourceEstimator,
    XC2V1000,
    XC2V3000,
)
from repro.memmap import CaseBaseImage
from repro.tools import CaseBaseGenerator, table3_spec


class TestBaselineEstimate:
    def test_matches_table2_shape(self):
        """Table 2: ~441 slices (3 %), 2 MULT18X18 (2 %), 2 BRAM (2 %), ~75 MHz."""
        estimate = ResourceEstimator().estimate()
        assert estimate.multipliers == PAPER_TABLE2["multipliers"]
        assert estimate.bram_blocks == PAPER_TABLE2["bram_blocks"]
        assert estimate.slices == pytest.approx(PAPER_TABLE2["slices"], rel=0.25)
        assert estimate.max_clock_mhz == pytest.approx(PAPER_TABLE2["max_clock_mhz"], rel=0.15)
        assert round(100 * estimate.slice_utilization) == PAPER_TABLE2["slice_percent"]
        assert round(100 * estimate.multiplier_utilization) == PAPER_TABLE2["multiplier_percent"]

    def test_fits_the_target_device_easily(self):
        estimate = ResourceEstimator().estimate()
        assert estimate.fits()
        assert estimate.slice_utilization < 0.05

    def test_table_rows_format(self):
        rows = dict(ResourceEstimator().estimate().as_table_rows())
        assert "CLB-Slices" in rows and "Max. Clock" in rows
        assert "of 14336" in rows["CLB-Slices"]

    def test_component_breakdown_sums_to_total(self):
        estimator = ResourceEstimator()
        estimate = estimator.estimate()
        assert sum(component.slices for component in estimate.components) == estimate.slices

    def test_critical_path_is_positive_and_multiplier_dominated(self):
        estimator = ResourceEstimator()
        path = estimator.critical_path_ns()
        assert 10.0 < path < 16.0


class TestConfigurationVariants:
    def test_n_best_adds_area(self):
        estimator = ResourceEstimator()
        baseline = estimator.estimate(config=HardwareConfig())
        nbest = estimator.estimate(config=HardwareConfig(n_best=4))
        assert nbest.slices > baseline.slices
        assert nbest.multipliers == baseline.multipliers

    def test_wide_fetch_and_pipeline_add_area(self):
        estimator = ResourceEstimator()
        baseline = estimator.estimate(config=HardwareConfig())
        optimised = estimator.estimate(
            config=HardwareConfig(
                wide_attribute_fetch=True, pipelined_datapath=True, cache_reciprocals=True
            )
        )
        assert optimised.slices > baseline.slices

    def test_smaller_device_has_higher_utilization(self):
        big = ResourceEstimator(XC2V3000).estimate()
        small = ResourceEstimator(XC2V1000).estimate()
        assert small.slice_utilization > big.slice_utilization
        assert small.fits()

    def test_footprint_drives_bram_count(self):
        image = CaseBaseImage(paper_case_base())
        estimate = ResourceEstimator().estimate(footprint=image.footprint())
        assert estimate.bram_blocks == 2  # tiny tree + request each need one BRAM

    def test_table3_sized_case_base_needs_more_brams_with_plain_encoding(self):
        case_base = CaseBaseGenerator(table3_spec(), seed=1).case_base()
        estimate = ResourceEstimator().estimate(footprint=CaseBaseImage(case_base).footprint())
        assert estimate.bram_blocks >= 4
        assert estimate.fits()
