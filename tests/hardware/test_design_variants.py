"""Tests for the design-variant flags of the retrieval unit (section 4.1 ablations)."""

import pytest

from repro.core import RetrievalEngine
from repro.hardware import (
    DividerUnit,
    HardwareConfig,
    HardwareRetrievalUnit,
    ResourceEstimator,
)


class TestDividerVariant:
    def test_divider_produces_the_same_decision(self, paper_cb, paper_req, small_generator):
        baseline = HardwareRetrievalUnit(paper_cb).run(paper_req)
        divider = HardwareRetrievalUnit(
            paper_cb, config=HardwareConfig(use_divider=True)
        ).run(paper_req)
        assert divider.best_id == baseline.best_id
        # The divider computes the exact quotient; the reciprocal datapath is
        # quantised, so the raw similarities may differ by a few LSBs.
        assert abs(divider.best_similarity - baseline.best_similarity) < 1e-3
        case_base = small_generator.case_base()
        reference = RetrievalEngine(case_base)
        unit = HardwareRetrievalUnit(case_base, config=HardwareConfig(use_divider=True))
        for salt in range(6):
            request = small_generator.request(salt=salt, attribute_count=5)
            assert unit.run(request).best_id == reference.retrieve_best(request).best_id

    def test_divider_costs_many_more_cycles(self, paper_cb, paper_req):
        baseline = HardwareRetrievalUnit(paper_cb).run(paper_req)
        divider = HardwareRetrievalUnit(
            paper_cb, config=HardwareConfig(use_divider=True)
        ).run(paper_req)
        assert divider.cycles > 1.5 * baseline.cycles

    def test_divider_trades_a_multiplier_for_slices(self):
        estimator = ResourceEstimator()
        baseline = estimator.estimate(config=HardwareConfig())
        divider = estimator.estimate(config=HardwareConfig(use_divider=True))
        assert divider.multipliers == baseline.multipliers - 1
        assert divider.slices > baseline.slices + DividerUnit.cost.slices // 2

    def test_divider_exact_quotient(self):
        unit = DividerUnit()
        assert unit.divide_fraction(4, 37) == (4 << 16) // 37
        assert unit.divide_fraction(0, 9) == 0
        assert unit.divide_fraction(0xFFFF, 1) == 0xFFFF
        with pytest.raises(Exception):
            unit.divide_fraction(5, 0)


class TestRestartSearchVariant:
    def test_restart_gives_same_results_but_more_probes(self, small_generator):
        """Section 4.1: resuming the sorted search keeps the effort linear."""
        case_base = small_generator.case_base()
        resume = HardwareRetrievalUnit(case_base)
        restart = HardwareRetrievalUnit(
            case_base, config=HardwareConfig(restart_attribute_search=True)
        )
        total_resume_probes = 0
        total_restart_probes = 0
        for salt in range(6):
            request = small_generator.request(salt=salt, attribute_count=6)
            a = resume.run(request)
            b = restart.run(request)
            assert a.best_id == b.best_id
            assert a.best_similarity_raw == b.best_similarity_raw
            total_resume_probes += a.statistics.attribute_probes
            total_restart_probes += b.statistics.attribute_probes
            assert b.cycles >= a.cycles
        assert total_restart_probes > total_resume_probes

    def test_restart_overhead_grows_with_attribute_count(self):
        from repro.tools import CaseBaseGenerator, GeneratorSpec

        generator = CaseBaseGenerator(
            GeneratorSpec(type_count=2, implementations_per_type=6,
                          attributes_per_implementation=12, attribute_type_count=12),
            seed=5,
        )
        case_base = generator.case_base()
        request = generator.request(type_id=1, attribute_count=12)
        resume = HardwareRetrievalUnit(case_base).run(request)
        restart = HardwareRetrievalUnit(
            case_base, config=HardwareConfig(restart_attribute_search=True)
        ).run(request)
        # With 12 attributes per list the restart penalty is clearly visible.
        assert restart.cycles > 1.2 * resume.cycles
