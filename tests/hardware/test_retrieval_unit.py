"""Tests for the cycle-accurate hardware retrieval unit (Fig. 6 / Fig. 7)."""

import pytest

from repro.core import (
    FunctionRequest,
    HardwareModelError,
    RetrievalEngine,
    UnknownFunctionTypeError,
    paper_request,
)
from repro.hardware import HardwareConfig, HardwareRetrievalUnit, RetrievalState


class TestFunctionalBehaviour:
    def test_paper_example_selects_dsp_variant(self, paper_cb, paper_req):
        result = HardwareRetrievalUnit(paper_cb).run(paper_req)
        assert result.best_id == 2
        assert result.best_similarity == pytest.approx(0.964, abs=0.002)

    def test_agrees_with_reference_engine_on_paper_example(self, paper_cb, paper_req):
        hardware = HardwareRetrievalUnit(paper_cb).run(paper_req)
        reference = RetrievalEngine(paper_cb).retrieve_best(paper_req)
        assert hardware.best_id == reference.best_id
        assert hardware.best_similarity == pytest.approx(reference.best_similarity, abs=1e-3)

    def test_agrees_with_reference_engine_on_generated_cases(self, small_generator):
        case_base = small_generator.case_base()
        engine = RetrievalEngine(case_base)
        unit = HardwareRetrievalUnit(case_base)
        for salt in range(12):
            request = small_generator.request(salt=salt, attribute_count=5)
            assert unit.run(request).best_id == engine.retrieve_best(request).best_id

    def test_unknown_type_raises(self, paper_cb):
        unit = HardwareRetrievalUnit(paper_cb)
        with pytest.raises(UnknownFunctionTypeError):
            unit.run(FunctionRequest(99, [(1, 16)]))

    def test_missing_attribute_gets_zero_local_similarity(self, paper_cb):
        """FFT implementations lack attribute 3; its weight must not contribute."""
        request = FunctionRequest(2, [(1, 16), (3, 1), (4, 44)])
        result = HardwareRetrievalUnit(paper_cb).run(request)
        reference = RetrievalEngine(paper_cb).retrieve_best(request)
        assert result.best_id == reference.best_id
        assert result.statistics.missing_attributes > 0

    def test_second_type_in_tree_is_reachable(self, paper_cb):
        request = FunctionRequest(2, [(1, 16), (4, 44)])
        result = HardwareRetrievalUnit(paper_cb).run(request)
        assert result.type_id == 2
        assert result.best_id == 1

    def test_n_best_matches_reference_ranking(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(n_best=3))
        result = unit.run(paper_req)
        reference = RetrievalEngine(paper_cb).retrieve_n_best(paper_req, 3)
        assert result.ranked_ids() == reference.ids()

    def test_wide_fetch_and_cache_preserve_the_decision(self, small_generator):
        case_base = small_generator.case_base()
        baseline = HardwareRetrievalUnit(case_base)
        optimised = HardwareRetrievalUnit(
            case_base,
            config=HardwareConfig(
                wide_attribute_fetch=True, pipelined_datapath=True, cache_reciprocals=True
            ),
        )
        for salt in range(8):
            request = small_generator.request(salt=salt, attribute_count=6)
            assert baseline.run(request).best_id == optimised.run(request).best_id

    def test_repeated_runs_are_deterministic(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb)
        first = unit.run(paper_req)
        second = unit.run(paper_req)
        assert first.best_id == second.best_id
        assert first.cycles == second.cycles


class TestCycleAccounting:
    def test_trace_cycles_match_reported_cycles(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(trace=True))
        result = unit.run(paper_req)
        assert result.trace is not None
        assert result.trace.total_cycles() == result.cycles

    def test_cycles_cover_every_memory_read(self, paper_cb, paper_req):
        result = HardwareRetrievalUnit(paper_cb).run(paper_req)
        assert result.cycles >= result.statistics.memory_reads

    def test_time_follows_clock(self, paper_cb, paper_req):
        slow = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(clock_mhz=33.0)).run(paper_req)
        fast = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(clock_mhz=66.0)).run(paper_req)
        assert slow.cycles == fast.cycles
        assert slow.time_us == pytest.approx(2 * fast.time_us)

    def test_wide_fetch_plus_pipeline_reduce_cycles(self, paper_cb, paper_req):
        baseline = HardwareRetrievalUnit(paper_cb).run(paper_req)
        optimised = HardwareRetrievalUnit(
            paper_cb,
            config=HardwareConfig(
                wide_attribute_fetch=True, pipelined_datapath=True, cache_reciprocals=True
            ),
        ).run(paper_req)
        assert optimised.cycles < baseline.cycles

    def test_cycles_grow_with_implementation_count(self, small_generator):
        case_base = small_generator.case_base()
        request = small_generator.request(type_id=1, attribute_count=6)
        baseline = HardwareRetrievalUnit(case_base).run(request).cycles
        # Remove all but one implementation of the requested type and re-run.
        reduced = case_base.copy()
        for implementation in list(reduced.get_type(1).implementations):
            if implementation != 1:
                reduced.remove_implementation(1, implementation)
        smaller = HardwareRetrievalUnit(reduced).run(request).cycles
        assert smaller < baseline

    def test_resume_search_makes_effort_linear(self, small_generator):
        """Section 4.1: sorted lists let the search resume instead of restarting."""
        case_base = small_generator.case_base()
        request = small_generator.request(type_id=2, attribute_count=6)
        result = HardwareRetrievalUnit(case_base).run(request)
        implementations = result.statistics.implementations_visited
        attributes = len(request)
        max_entries_per_list = small_generator.spec.attributes_per_implementation
        # Each implementation's attribute list is walked at most once end to end,
        # so the probe count is bounded by visits * (list length + request length).
        assert result.statistics.attribute_probes <= implementations * (
            max_entries_per_list + attributes
        )

    def test_trace_contains_expected_states(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(trace=True))
        trace = unit.run(paper_req).trace
        states = set(trace.state_visit_counts())
        assert RetrievalState.FETCH_REQUEST_TYPE in states
        assert RetrievalState.SEARCH_FUNCTION_TYPE in states
        assert RetrievalState.COMPUTE_LOCAL_SIMILARITY in states
        assert RetrievalState.DELIVER_RESULT in states

    def test_statistics_counts_are_consistent(self, paper_cb, paper_req):
        result = HardwareRetrievalUnit(paper_cb).run(paper_req)
        stats = result.statistics
        assert stats.implementations_visited == 3
        assert stats.case_base_reads + stats.request_reads == stats.memory_reads
        assert stats.best_updates >= 1


class TestConfigurationValidation:
    def test_invalid_clock_rejected(self):
        with pytest.raises(HardwareModelError):
            HardwareConfig(clock_mhz=0)

    def test_invalid_n_best_rejected(self):
        with pytest.raises(HardwareModelError):
            HardwareConfig(n_best=0)

    def test_missing_bounds_entry_raises(self, paper_cb):
        # Attribute 5 is not covered by the paper bounds table.
        unit = HardwareRetrievalUnit(paper_cb)
        with pytest.raises(HardwareModelError):
            unit.run(FunctionRequest(1, [(5, 3)]))
