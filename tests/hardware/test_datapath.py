"""Unit tests for the datapath components of the retrieval unit (Fig. 7)."""

import pytest

from repro.core import HardwareModelError
from repro.fixedpoint import UQ0_16, reciprocal_raw
from repro.hardware import (
    AbsoluteDifferenceUnit,
    AccumulatorUnit,
    BestComparatorUnit,
    CONTROL_COMPONENTS,
    MultiplierUnit,
    NBestRegisterFile,
    SubtractorUnit,
    standard_datapath_components,
)


class TestAbsoluteDifferenceUnit:
    def test_computes_absolute_difference(self):
        unit = AbsoluteDifferenceUnit()
        assert unit.compute(40, 44) == 4
        assert unit.compute(44, 40) == 4
        assert unit.operations == 2

    def test_rejects_operands_wider_than_16_bits(self):
        with pytest.raises(HardwareModelError):
            AbsoluteDifferenceUnit().compute(1 << 16, 0)

    def test_reset_clears_operation_counter(self):
        unit = AbsoluteDifferenceUnit()
        unit.compute(1, 2)
        unit.reset()
        assert unit.operations == 0


class TestMultiplierUnit:
    def test_integer_times_fraction(self):
        unit = MultiplierUnit()
        penalty = unit.multiply_fraction(4, reciprocal_raw(36))
        assert UQ0_16.to_float(penalty) == pytest.approx(4 / 37, abs=1e-4)

    def test_fraction_times_fraction(self):
        unit = MultiplierUnit()
        result = unit.multiply_fractions(UQ0_16.from_float(0.5), UQ0_16.from_float(1 / 3))
        assert UQ0_16.to_float(result) == pytest.approx(1 / 6, abs=1e-4)

    def test_product_saturates_at_one(self):
        unit = MultiplierUnit()
        assert unit.multiply_fraction(1000, reciprocal_raw(10)) == UQ0_16.max_raw

    def test_operand_range_enforced(self):
        with pytest.raises(HardwareModelError):
            MultiplierUnit().multiply_fraction(1 << 17, 1)
        with pytest.raises(HardwareModelError):
            MultiplierUnit().multiply_fractions(1, 1 << 16)

    def test_uses_one_dedicated_multiplier(self):
        assert MultiplierUnit.cost.multipliers == 1


class TestSubtractorAndAccumulator:
    def test_one_minus_saturates_at_zero(self):
        unit = SubtractorUnit()
        assert unit.one_minus(0) == UQ0_16.max_raw
        assert unit.one_minus(UQ0_16.max_raw) == 0
        assert unit.one_minus(UQ0_16.max_raw + 10) == 0

    def test_accumulator_adds_and_saturates(self):
        accumulator = AccumulatorUnit()
        accumulator.accumulate(UQ0_16.from_float(0.5))
        accumulator.accumulate(UQ0_16.from_float(0.3))
        assert UQ0_16.to_float(accumulator.value) == pytest.approx(0.8, abs=1e-4)
        accumulator.accumulate(UQ0_16.from_float(0.9))
        assert accumulator.value == UQ0_16.max_raw
        accumulator.clear()
        assert accumulator.value == 0


class TestBestComparator:
    def test_strict_greater_than_update_rule(self):
        comparator = BestComparatorUnit()
        assert comparator.consider(100, 1) is True
        assert comparator.consider(100, 2) is False  # ties keep the first
        assert comparator.consider(101, 3) is True
        assert comparator.best_id == 3

    def test_clear_resets_registers(self):
        comparator = BestComparatorUnit()
        comparator.consider(5, 1)
        comparator.clear()
        assert comparator.best_id == 0 and comparator.best_similarity_raw == -1


class TestNBestRegisterFile:
    def test_keeps_n_best_in_descending_order(self):
        register_file = NBestRegisterFile(3)
        for similarity, implementation_id in [(10, 1), (50, 2), (30, 3), (40, 4), (5, 5)]:
            register_file.consider(similarity, implementation_id)
        assert [entry[1] for entry in register_file.entries] == [2, 4, 3]

    def test_insertion_cost_grows_with_position(self):
        register_file = NBestRegisterFile(4)
        first = register_file.consider(10, 1)
        worst = register_file.consider(1, 2)
        assert first == 1
        assert worst >= 1

    def test_area_grows_linearly_with_capacity(self):
        assert NBestRegisterFile(4).cost.slices == 2 * NBestRegisterFile(2).cost.slices

    def test_invalid_capacity_rejected(self):
        with pytest.raises(HardwareModelError):
            NBestRegisterFile(0)


class TestComponentInventory:
    def test_standard_components_are_the_fig7_blocks(self):
        components = standard_datapath_components()
        assert set(components) == {
            "absolute_difference",
            "reciprocal_multiplier",
            "weight_multiplier",
            "one_minus",
            "accumulator",
            "best_comparator",
        }

    def test_exactly_two_multipliers_in_baseline_datapath(self):
        components = standard_datapath_components()
        multipliers = sum(component.cost.multipliers for component in components.values())
        assert multipliers == 2  # matches Table 2

    def test_control_components_have_positive_area(self):
        assert all(component.slices > 0 for component in CONTROL_COMPONENTS)
