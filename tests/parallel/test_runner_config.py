"""Environment-knob resolution of the parallel runner (ISSUE 10 satellite).

``REPRO_PARALLEL_TIMEOUT_S`` is resolved when a pool is *constructed*, not
when :mod:`repro.parallel` is imported -- test harnesses and operators set
it after import all the time, and a baked-in import-time snapshot silently
ignored them.
"""

import pytest

from repro.core.exceptions import RetrievalError
from repro.parallel.runner import (
    REPLY_TIMEOUT_S,
    ShardWorkerPool,
    default_start_method,
    reply_timeout_s,
)


class TestReplyTimeoutResolution:
    def test_default_without_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_TIMEOUT_S", raising=False)
        assert reply_timeout_s() == REPLY_TIMEOUT_S

    def test_env_override_is_reread_each_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TIMEOUT_S", "7.5")
        assert reply_timeout_s() == 7.5
        monkeypatch.setenv("REPRO_PARALLEL_TIMEOUT_S", "2")
        assert reply_timeout_s() == 2.0

    def test_pool_snapshots_timeout_at_construction(self, monkeypatch):
        """The pool binds the value once, at construction -- later env churn
        must not change the deadline of an in-flight collect."""
        monkeypatch.setenv("REPRO_PARALLEL_TIMEOUT_S", "11.0")
        pool = ShardWorkerPool(1)
        try:
            monkeypatch.setenv("REPRO_PARALLEL_TIMEOUT_S", "99.0")
            assert pool.reply_timeout_s == 11.0
        finally:
            pool.close()

    def test_worker_count_validation(self):
        with pytest.raises(RetrievalError, match="worker count"):
            ShardWorkerPool(0)


class TestStartMethodResolution:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        assert default_start_method() == "spawn"

    def test_default_prefers_fork_when_available(self, monkeypatch):
        import multiprocessing

        monkeypatch.delenv("REPRO_PARALLEL_START_METHOD", raising=False)
        expected = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        assert default_start_method() == expected
