"""Degenerate topologies and lifecycle hygiene of the process-pool runner.

Every corner of the (shards, workers, implementations) lattice must match
inline bit-identically and shut down cleanly: one worker, more workers than
shards, more shards than implementations, empty batches and empty traces.
Lifecycle: ``close`` is idempotent, reaps every worker process, unlinks the
shared-memory segment from ``/dev/shm``, and a closed runner respawns
transparently on next use.
"""

import os

import pytest

from repro.parallel import ParallelShardedRetriever, ShardWorkerPool
from repro.serving import ServingConfig, ServingEngine, ShardedRetriever
from repro.tools import CaseBaseGenerator, GeneratorSpec


def _generator(**overrides):
    spec = dict(
        type_count=3,
        implementations_per_type=4,
        attributes_per_implementation=5,
        attribute_type_count=7,
        value_range=(0, 300),
    )
    spec.update(overrides)
    return CaseBaseGenerator(GeneratorSpec(**spec), seed=23)


def _view(results):
    return [
        (
            [(e.implementation_id, e.similarity) for e in r.ranked],
            vars(r.statistics),
        )
        for r in results
    ]


@pytest.mark.parametrize(
    "shard_count,workers",
    [
        (1, 1),        # single shard, single worker
        (1, 4),        # workers idle beyond the one shard
        (3, 8),        # more workers than shards
        (16, 2),       # more shards than any type's implementation count
    ],
)
def test_degenerate_topologies_match_inline(shard_count, workers):
    generator = _generator()
    case_base = generator.case_base()
    requests = [generator.request(salt=index) for index in range(6)]
    inline = ShardedRetriever(case_base, shard_count=shard_count)
    with ParallelShardedRetriever(
        case_base, shard_count=shard_count, workers=workers
    ) as parallel:
        assert _view(parallel.retrieve_batch(requests, n=3)) == _view(
            inline.retrieve_batch(requests, n=3)
        )


def test_empty_batch_and_empty_trace():
    generator = _generator()
    case_base = generator.case_base()
    with ParallelShardedRetriever(case_base, shard_count=2, workers=2) as parallel:
        assert parallel.retrieve_batch([]) == []
    config = ServingConfig(shard_count=2, execution="process", workers=2)
    with ServingEngine(generator.case_base(), config=config) as engine:
        report = engine.serve([])
        assert report.metrics["requests"] == 0


def test_close_is_idempotent_and_reaps_workers():
    generator = _generator()
    case_base = generator.case_base()
    parallel = ParallelShardedRetriever(case_base, shard_count=2, workers=2)
    requests = [generator.request(salt=index) for index in range(3)]
    parallel.retrieve_batch(requests, n=2)
    pool = parallel._pool
    segment_name = parallel._segment.name if parallel._segment is not None else None
    assert pool is not None and pool.live_workers == 2
    parallel.close()
    parallel.close()  # idempotent
    assert pool.live_workers == 0
    assert parallel._pool is None and parallel._segment is None
    if segment_name is not None and os.path.isdir("/dev/shm"):
        assert not os.path.exists(os.path.join("/dev/shm", segment_name.lstrip("/")))


def test_closed_runner_respawns_transparently():
    generator = _generator()
    case_base = generator.case_base()
    requests = [generator.request(salt=index) for index in range(3)]
    inline = ShardedRetriever(case_base, shard_count=2)
    parallel = ParallelShardedRetriever(case_base, shard_count=2, workers=2)
    try:
        before = _view(parallel.retrieve_batch(requests, n=2))
        parallel.close()
        after = _view(parallel.retrieve_batch(requests, n=2))
        assert before == after == _view(inline.retrieve_batch(requests, n=2))
    finally:
        parallel.close()


def test_pool_rejects_use_after_close():
    pool = ShardWorkerPool(1)
    pool.close()
    with pytest.raises(Exception):
        pool.send(0, ("retrieve", [], [], None, None))


def test_naive_backend_ships_no_shared_memory():
    generator = _generator()
    case_base = generator.case_base()
    requests = [generator.request(salt=index) for index in range(3)]
    with ParallelShardedRetriever(
        case_base, shard_count=2, workers=2, backend="naive"
    ) as parallel:
        parallel.retrieve_batch(requests, n=2)
        assert parallel._segment is None


def test_shared_memory_retired_on_rebuild():
    """A full invalidation swaps segments; the old one leaves /dev/shm."""
    generator = _generator()
    case_base = generator.case_base()
    requests = [generator.request(salt=index) for index in range(3)]
    with ParallelShardedRetriever(case_base, shard_count=2, workers=2) as parallel:
        parallel.retrieve_batch(requests, n=2)
        first = parallel._segment.name
        parallel.invalidate()
        parallel.retrieve_batch(requests, n=2)
        second = parallel._segment.name
        assert first != second
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(os.path.join("/dev/shm", first.lstrip("/")))
            assert os.path.exists(os.path.join("/dev/shm", second.lstrip("/")))


def test_worker_pool_metrics_exported():
    """The observability catalog carries the worker-pool series."""
    from repro.observability import Observability, ObservabilityConfig

    generator = _generator()
    case_base = generator.case_base()
    requests = [generator.request(salt=index) for index in range(4)]
    observability = Observability(ObservabilityConfig(enabled=True))
    with ParallelShardedRetriever(case_base, shard_count=2, workers=2) as parallel:
        parallel.observability = observability
        parallel.retrieve_batch(requests, n=2)
        rendered = observability.registry.exposition()
        assert "repro_worker_pool_workers 2" in rendered
        assert "repro_worker_pool_shm_bytes" in rendered
        assert "repro_worker_pool_batches_total" in rendered
