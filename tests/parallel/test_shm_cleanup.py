"""Shared-memory cleanup paths: silent on expected races, loud on real leaks.

Teardown must never raise (ISSUE 10 satellite), but a cleanup failure that
would leak a ``/dev/shm`` segment now emits a structured ``key=value``
warning naming the segment and the cause, instead of disappearing into a
bare ``except``.
"""

import logging

from repro.parallel.shm import close_segment, unlink_segment


class _FailingSegment:
    """Duck-typed stand-in whose cleanup calls fail like a platform race."""

    name = "repro-test-segment"

    def __init__(self, close_error=None, unlink_error=None):
        self._close_error = close_error
        self._unlink_error = unlink_error

    def close(self):
        if self._close_error is not None:
            raise self._close_error

    def unlink(self):
        if self._unlink_error is not None:
            raise self._unlink_error


class TestUnlinkSegment:
    def test_none_is_a_no_op(self):
        unlink_segment(None)

    def test_repeat_unlink_stays_silent(self, caplog):
        """FileNotFoundError is the expected idempotent-cleanup race."""
        with caplog.at_level(logging.WARNING, logger="repro.parallel.shm"):
            unlink_segment(_FailingSegment(unlink_error=FileNotFoundError()))
        assert not caplog.records

    def test_real_unlink_failure_is_logged_not_raised(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.parallel.shm"):
            unlink_segment(
                _FailingSegment(unlink_error=PermissionError("denied"))
            )
        messages = [record.getMessage() for record in caplog.records]
        assert any(
            "event=shm.unlink_failed" in message
            and "segment=repro-test-segment" in message
            and "denied" in message
            for message in messages
        )


class TestCloseSegment:
    def test_none_is_a_no_op(self):
        close_segment(None)

    def test_close_failure_is_logged_not_raised(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.parallel.shm"):
            close_segment(_FailingSegment(close_error=OSError("bad fd")))
        messages = [record.getMessage() for record in caplog.records]
        assert any(
            "event=shm.close_failed" in message and "op=close" in message
            for message in messages
        )
