"""Differential suite: process-pool execution is bit-identical to inline.

The single-process inline path is the golden reference; every axis of the
parallel runner -- backend x shard count x worker count, cold and under
mutation streams, standalone and through the serving/cluster engines -- must
reproduce its rankings, similarity doubles, retrieval statistics and
admission cycle counts exactly.  Wall-clock fields are the only sanctioned
difference.
"""

import dataclasses
import random

import pytest

from repro.core import (
    BoundsTable,
    CaseBase,
    ExecutionTarget,
    FunctionRequest,
    Implementation,
)
from repro.core.exceptions import RetrievalError, UnknownFunctionTypeError
from repro.parallel import ParallelShardedRetriever
from repro.serving import ServingConfig, ServingEngine, ShardedRetriever
from repro.serving.cluster import ClusterServingEngine
from repro.serving.loadgen import trace_from_requests
from repro.platform.fleet import DeviceFleet
from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.tools import CaseBaseGenerator, GeneratorSpec

ATTRIBUTE_POOL = list(range(1, 7))
VALUE_RANGE = (0, 200)


def _generator(seed: int = 7) -> CaseBaseGenerator:
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=4,
            implementations_per_type=6,
            attributes_per_implementation=6,
            attribute_type_count=8,
            value_range=(0, 500),
        ),
        seed=seed,
    )


def _view(results):
    return [
        (
            [
                (entry.implementation_id, entry.similarity,
                 tuple(entry.local_similarities))
                for entry in result.ranked
            ],
            vars(result.statistics),
        )
        for result in results
    ]


def _scrubbed_report(report):
    """Report dict minus the sanctioned differences (config + wall clock)."""
    payload = report.to_dict()
    payload.pop("config")
    metrics = dict(payload["metrics"])
    metrics.pop("wall_seconds")
    metrics.pop("throughput_rps")
    payload["metrics"] = metrics
    return payload


@pytest.mark.parametrize("backend", ["vectorized", "naive"])
@pytest.mark.parametrize("shard_count", [1, 3])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_retrieve_batch_bit_identity(backend, shard_count, workers):
    generator = _generator()
    case_base = generator.case_base()
    requests = [generator.request(salt=index) for index in range(8)]
    inline = ShardedRetriever(case_base, shard_count=shard_count, backend=backend)
    with ParallelShardedRetriever(
        case_base, shard_count=shard_count, workers=workers, backend=backend
    ) as parallel:
        for kwargs in ({}, {"n": 4}, {"n": 1}, {"threshold": 0.5}):
            assert _view(
                parallel.retrieve_batch(requests, **kwargs)
            ) == _view(inline.retrieve_batch(requests, **kwargs))


def test_screening_errors_match_inline():
    generator = _generator()
    case_base = generator.case_base()
    empty_type_id = max(case_base.type_ids()) + 1
    case_base.add_type(empty_type_id, name="empty")
    probe = FunctionRequest(empty_type_id, [(1, 10, 1.0)])
    unknown = FunctionRequest(9999, [(1, 10, 1.0)])
    inline = ShardedRetriever(case_base, shard_count=2)
    with ParallelShardedRetriever(case_base, shard_count=2, workers=2) as parallel:
        for runner in (inline, parallel):
            with pytest.raises(UnknownFunctionTypeError):
                runner.retrieve_batch([unknown])
        with pytest.raises(RetrievalError) as inline_error:
            inline.retrieve_batch([probe])
        with pytest.raises(RetrievalError) as parallel_error:
            parallel.retrieve_batch([probe])
        assert str(parallel_error.value) == str(inline_error.value)


def _mutation_case_base(rng: random.Random, explicit_bounds: bool) -> CaseBase:
    bounds = BoundsTable()
    for attribute_id in ATTRIBUTE_POOL:
        bounds.define(attribute_id, *VALUE_RANGE)
    case_base = CaseBase(bounds=bounds if explicit_bounds else None)
    for type_id in (1, 2, 3):
        function_type = case_base.add_type(type_id, name=f"type-{type_id}")
        for implementation_id in range(1, rng.randint(3, 6)):
            function_type.add(
                Implementation(
                    implementation_id,
                    ExecutionTarget.GPP,
                    {
                        attribute_id: rng.randint(*VALUE_RANGE)
                        for attribute_id in rng.sample(ATTRIBUTE_POOL, 4)
                    },
                )
            )
    return case_base


def _mutate(case_base: CaseBase, rng: random.Random, step: int) -> None:
    choice = rng.random()
    type_id = rng.choice(case_base.type_ids())
    implementations = case_base.implementations(type_id)
    if choice < 0.35:  # retain-style append (the forwardable tail add)
        next_id = (
            max(i.implementation_id for i in implementations) + 1
            if implementations
            else 1
        )
        case_base.add_implementation(
            type_id,
            Implementation(
                next_id,
                ExecutionTarget.FPGA if step % 2 else ExecutionTarget.GPP,
                {
                    attribute_id: rng.randint(*VALUE_RANGE)
                    for attribute_id in rng.sample(ATTRIBUTE_POOL, 3)
                },
            ),
        )
    elif choice < 0.6:  # revise-style replacement (forwardable in place)
        implementation = rng.choice(implementations)
        case_base.replace_implementation(
            type_id,
            implementation.with_attributes(
                {rng.choice(ATTRIBUTE_POOL): rng.randint(*VALUE_RANGE)}
            ),
        )
    elif choice < 0.8:  # removal (forces the per-type repartition reset)
        if len(implementations) > 1:
            case_base.remove_implementation(
                type_id, rng.choice(implementations).implementation_id
            )
    elif choice < 0.9:  # mid-list insertion (another reset trigger)
        taken = {i.implementation_id for i in implementations}
        free = [i for i in range(1, 60) if i not in taken]
        case_base.add_implementation(
            type_id,
            Implementation(
                rng.choice(free),
                ExecutionTarget.DSP,
                {a: rng.randint(*VALUE_RANGE) for a in rng.sample(ATTRIBUTE_POOL, 3)},
            ),
        )
    else:  # type-level churn
        new_type_id = 10 + step
        if new_type_id not in case_base:
            grown = case_base.add_type(new_type_id, name=f"grown-{step}")
            grown.add(
                Implementation(
                    1,
                    ExecutionTarget.GPP,
                    {a: rng.randint(*VALUE_RANGE) for a in rng.sample(ATTRIBUTE_POOL, 3)},
                )
            )


def _probes(case_base: CaseBase, rng: random.Random):
    return [
        FunctionRequest(
            type_id,
            [
                (a, rng.randint(*VALUE_RANGE), 1.0 + (a % 3))
                for a in sorted(rng.sample(ATTRIBUTE_POOL, 3))
            ],
            requester="parallel-differential",
        )
        for type_id in case_base.type_ids()
    ]


@pytest.mark.parametrize("explicit_bounds", [True, False])
@pytest.mark.parametrize("seed", [3, 11])
def test_mutation_stream_bit_identity(explicit_bounds, seed):
    """Live parallel runner vs live + fresh inline under a mutation stream."""
    rng = random.Random(seed)
    case_base = _mutation_case_base(rng, explicit_bounds)
    live_inline = ShardedRetriever(case_base, shard_count=3)
    with ParallelShardedRetriever(case_base, shard_count=3, workers=2) as parallel:

        def checkpoint():
            probes = _probes(case_base, rng)
            fresh = ShardedRetriever(case_base, shard_count=3)
            expected = _view(fresh.retrieve_batch(probes, n=4))
            assert _view(live_inline.retrieve_batch(probes, n=4)) == expected
            assert _view(parallel.retrieve_batch(probes, n=4)) == expected

        checkpoint()
        for step in range(10):
            _mutate(case_base, rng, step)
            if step % 2 == 1:
                checkpoint()
        checkpoint()
        if explicit_bounds:
            # The incremental delta-shipping path must actually have engaged
            # (no vacuous pass through silent full rebuild-and-reloads).
            assert parallel._tracker.incremental_count > 0


@pytest.mark.parametrize("learn", [False, True])
def test_serving_engine_execution_axis(learn):
    generator = _generator(seed=11)
    requests = [generator.request(salt=index) for index in range(24)]

    def run(execution, workers):
        case_base = generator.case_base()
        config = ServingConfig(
            shard_count=3, execution=execution, workers=workers,
            learn=learn, max_batch=6,
        )
        with ServingEngine(case_base, config=config) as engine:
            report = engine.serve(
                trace_from_requests(requests, interarrival_us=50.0)
            )
            return (
                _scrubbed_report(report),
                report.rankings(),
                [record.to_dict() for record in report.served],
            )

    assert run("inline", 0) == run("process", 2)


@pytest.mark.parametrize("faults", [False, True])
def test_cluster_execution_axis(faults):
    """Multiprocess fleet mode: modelled cluster replay is bit-identical.

    Covers sync events (incremental + full image streams), fault-injected
    retry schedules, router occupancy and per-worker utilisation -- the
    child processes own the port controllers, the parent mirrors only the
    busy-until scalars.
    """
    generator = _generator(seed=13)
    requests = [generator.request(salt=index) for index in range(20)]

    def run(execution, workers):
        case_base = generator.case_base()
        fleet = DeviceFleet.build(case_base, hardware_devices=2, software_devices=1)
        injector = None
        if faults:
            names = [worker.name for worker in fleet.workers]
            injector = FaultInjector(FaultPlan(seed=3, faults=(
                FaultSpec(kind="stream_truncate", target=names[0],
                          at_us=0.0, duration_us=600.0, factor=0.5),
                FaultSpec(kind="stream_corrupt", target=names[1],
                          at_us=100.0, duration_us=300.0),
            )))
        config = ServingConfig(
            shard_count=2, execution=execution, workers=workers,
            learn=True, max_batch=5,
        )
        engine = ClusterServingEngine(
            case_base, fleet, config=config, fault_injector=injector
        )
        try:
            report = engine.serve(
                trace_from_requests(requests, interarrival_us=40.0)
            )
            return (
                _scrubbed_report(report),
                report.rankings(),
                [record.to_dict() for record in report.served],
            )
        finally:
            engine.close()

    assert run("inline", 0) == run("process", 2)


def test_online_learning_evolves_identically():
    """The learned case base itself (not just the replies) stays identical."""
    generator = _generator(seed=17)
    requests = [generator.request(salt=index) for index in range(30)]

    def run(execution, workers):
        case_base = generator.case_base()
        config = ServingConfig(
            shard_count=2, execution=execution, workers=workers,
            learn=True, novelty_threshold=0.99, max_batch=4,
        )
        with ServingEngine(case_base, config=config) as engine:
            engine.serve(trace_from_requests(requests, interarrival_us=30.0))
        return {
            function_type.type_id: [
                (impl.implementation_id, dict(impl.attributes))
                for impl in function_type.sorted_implementations()
            ]
            for function_type in case_base.sorted_types()
        }

    baseline = {
        function_type.type_id: len(function_type)
        for function_type in generator.case_base().sorted_types()
    }
    inline_state = run("inline", 0)
    process_state = run("process", 3)
    assert process_state == inline_state
    # The property must not pass vacuously: learning actually retained cases.
    assert {t: len(v) for t, v in inline_state.items()} != baseline
