"""Property tests: two-stage pruned retrieval is bit-identical to the full scan.

The ``prefilter="bounds"`` axis lets the vectorized backend skip whole row
blocks whose similarity upper bound cannot reach the current cut.  Its
correctness contract is *bit-identity*: rankings, similarity doubles and
retrieval statistics must equal the unpruned vectorized scan (full view,
including empty local-similarity tuples) and the naive golden loop (ids,
similarities and statistics; the naive path additionally carries
per-attribute breakdowns the vectorized kernel never materialises).

The suite shrinks ``_TypeMatrices.BLOCK_ROWS`` / ``PREFILTER_MIN_ROWS`` so
the screen engages on test-sized case bases, checks every retrieval mode
across the backend x shard x prefilter axes, and proves non-vacuity on a
locality-structured case base where the screen demonstrably prunes (uniform
random columns give every block a full-range bound, which never prunes --
the counters keep that honest).

Uses hypothesis when available and a seeded parametrized sweep otherwise,
mirroring the other property suites.
"""

import contextlib

import pytest

from repro.core import RetrievalEngine
from repro.core.attributes import AttributeSchema, BoundsTable
from repro.core.backends import VectorizedBackend, _TypeMatrices
from repro.core.case_base import CaseBase, ExecutionTarget, Implementation
from repro.core.request import FunctionRequest
from repro.serving import ShardedRetriever
from repro.tools import CaseBaseGenerator, GeneratorSpec

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


#: Deep enough per type that shrunken thresholds engage the screen.
SPEC = GeneratorSpec(
    type_count=3,
    implementations_per_type=48,
    attributes_per_implementation=5,
    attribute_type_count=8,
    missing_probability=0.2,
)


@contextlib.contextmanager
def small_blocks():
    """Shrink the engagement thresholds so test-sized case bases screen."""
    saved = (_TypeMatrices.BLOCK_ROWS, VectorizedBackend.PREFILTER_MIN_ROWS)
    _TypeMatrices.BLOCK_ROWS = 8
    VectorizedBackend.PREFILTER_MIN_ROWS = 16
    try:
        yield
    finally:
        _TypeMatrices.BLOCK_ROWS, VectorizedBackend.PREFILTER_MIN_ROWS = saved


def _full_view(result):
    """Everything the vectorized backend reports, per ranked entry."""
    return [
        (entry.implementation_id, entry.similarity, entry.local_similarities)
        for entry in result.ranked
    ]


def _slim_view(result):
    """The cross-backend comparable view (naive adds local breakdowns)."""
    return [(entry.implementation_id, entry.similarity) for entry in result.ranked]


def check_pruned_equals_unpruned(seed: int, salt: int, n: int, threshold: float) -> None:
    """Pruned vs unpruned vectorized: full view, statistics, all modes."""
    generator = CaseBaseGenerator(SPEC, seed=seed % 50)
    case_base = generator.case_base()
    request = generator.request(salt=salt, attribute_count=4)
    with small_blocks():
        off = RetrievalEngine(case_base, backend="vectorized", prefilter="off")
        on = RetrievalEngine(case_base, backend="vectorized", prefilter="bounds")

        for mode in (
            lambda engine: engine.retrieve_n_best(request, n),
            lambda engine: engine.retrieve_above_threshold(request, threshold),
            lambda engine: engine.retrieve_best(request),
        ):
            expected, pruned = mode(off), mode(on)
            assert _full_view(pruned) == _full_view(expected)
            assert pruned.statistics == expected.statistics
        # The screen engaged (it saw every row of the requested type) even
        # when the loose random bounds let nothing be pruned.
        assert on.backend.prefilter_requests > 0
        assert on.backend.prefilter_rows_total > 0
        assert off.backend.prefilter_requests == 0


def check_pruned_equals_naive(seed: int, salt: int, n: int) -> None:
    """Pruned vectorized vs the naive golden loop: ids, similarities, stats."""
    generator = CaseBaseGenerator(SPEC, seed=seed % 50)
    case_base = generator.case_base()
    request = generator.request(salt=salt, attribute_count=4)
    with small_blocks():
        naive = RetrievalEngine(case_base, backend="naive")
        pruned = RetrievalEngine(case_base, backend="vectorized", prefilter="bounds")
        expected = naive.retrieve_n_best(request, n)
        observed = pruned.retrieve_n_best(request, n)
        assert _slim_view(observed) == _slim_view(expected)
        assert observed.statistics == expected.statistics


def check_sharded_prefilter(seed: int, shards: int, backend: str) -> None:
    """The prefilter axis composes with sharding without changing a bit."""
    generator = CaseBaseGenerator(SPEC, seed=seed % 50)
    case_base = generator.case_base()
    requests = [generator.request(salt=salt, attribute_count=3) for salt in range(6)]
    with small_blocks():
        off = ShardedRetriever(
            case_base, shard_count=shards, backend=backend, prefilter="off"
        )
        on = ShardedRetriever(
            case_base, shard_count=shards, backend=backend, prefilter="bounds"
        )
        expected = off.retrieve_batch(requests, n=4)
        observed = on.retrieve_batch(requests, n=4)
        assert [_slim_view(result) for result in observed] == [
            _slim_view(result) for result in expected
        ]
        assert [result.statistics for result in observed] == [
            result.statistics for result in expected
        ]


def clustered_case_base(rows: int = 256) -> CaseBase:
    """Attribute values correlated with implementation order: blocks get
    tight column ranges, so the upper bound genuinely prunes."""
    schema = AttributeSchema()
    schema.define(1, "ascending")
    schema.define(2, "descending")
    bounds = BoundsTable()
    bounds.define(1, 0, 4 * rows)
    bounds.define(2, 0, 4 * rows)
    case_base = CaseBase(schema=schema, bounds=bounds)
    function_type = case_base.add_type(1, name="clustered")
    for index in range(rows):
        function_type.add(Implementation(
            implementation_id=index + 1,
            target=ExecutionTarget.GPP,
            attributes={1: index * 4, 2: 4 * rows - index * 4},
        ))
    return case_base


def test_screen_prunes_on_locality_structured_data():
    """Non-vacuity: the screen must actually skip blocks somewhere."""
    case_base = clustered_case_base()
    request = FunctionRequest(1, [(1, 1020), (2, 4)])
    with small_blocks():
        off = RetrievalEngine(case_base, backend="vectorized", prefilter="off")
        on = RetrievalEngine(case_base, backend="vectorized", prefilter="bounds")
        expected = off.retrieve_n_best(request, 3)
        observed = on.retrieve_n_best(request, 3)
        assert _full_view(observed) == _full_view(expected)
        assert observed.statistics == expected.statistics
        backend = on.backend
        assert backend.prefilter_rows_pruned > 0
        assert backend.prefilter_rows_pruned < backend.prefilter_rows_total


def test_small_types_fall_through_without_counting():
    """Below PREFILTER_MIN_ROWS the screen steps aside entirely."""
    generator = CaseBaseGenerator(SPEC, seed=11)
    case_base = generator.case_base()
    request = generator.request(salt=2, attribute_count=4)
    # Default thresholds: 48 rows per type is far below 4096.
    off = RetrievalEngine(case_base, backend="vectorized", prefilter="off")
    on = RetrievalEngine(case_base, backend="vectorized", prefilter="bounds")
    assert _full_view(on.retrieve_n_best(request, 5)) == _full_view(
        off.retrieve_n_best(request, 5)
    )
    assert on.backend.prefilter_requests == 0
    assert on.backend.prefilter_rows_total == 0


if HAVE_HYPOTHESIS:

    COMMON = settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )

    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        salt=st.integers(0, 100),
        n=st.integers(1, 10),
        threshold=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_pruned_equals_unpruned(seed, salt, n, threshold):
        check_pruned_equals_unpruned(seed, salt, n, threshold)

    @COMMON
    @given(seed=st.integers(0, 10_000), salt=st.integers(0, 100), n=st.integers(1, 10))
    def test_pruned_equals_naive(seed, salt, n):
        check_pruned_equals_naive(seed, salt, n)

    @pytest.mark.parametrize("backend", ["naive", "vectorized"])
    @pytest.mark.parametrize("shards", [1, 3])
    @COMMON
    @given(seed=st.integers(0, 10_000))
    def test_sharded_prefilter(backend, shards, seed):
        check_sharded_prefilter(seed, shards, backend)

else:  # pragma: no cover - fallback sweep without hypothesis

    @pytest.mark.parametrize("seed", range(8))
    def test_pruned_equals_unpruned(seed):
        for n, threshold in ((1, 0.0), (3, 0.5), (10, 0.9)):
            check_pruned_equals_unpruned(seed, salt=seed * 7, n=n, threshold=threshold)

    @pytest.mark.parametrize("seed", range(8))
    def test_pruned_equals_naive(seed):
        check_pruned_equals_naive(seed, salt=seed * 3, n=4)

    @pytest.mark.parametrize("backend", ["naive", "vectorized"])
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_sharded_prefilter(backend, shards, seed):
        check_sharded_prefilter(seed, shards, backend)
