"""Property-based tests for the retrieval modes, across both backends.

Uses hypothesis when available (the CI test environment installs it) and
degrades to a seeded-random parametrized sweep otherwise, so the tier-1 suite
never gains a hard dependency.  Properties checked, for naive and vectorized
execution alike:

* ``retrieve_n_best(request, 1)`` is equivalent to ``retrieve_best(request)``;
* every entry returned by ``retrieve_above_threshold`` meets the threshold,
  and the result equals the threshold-filtered full ranking;
* ``retrieve_batch`` equals per-request sequential retrieval.
"""

import pytest

from repro.core import RetrievalEngine
from repro.tools import CaseBaseGenerator, GeneratorSpec

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


BACKENDS = ["naive", "vectorized"]

#: Small, quick-to-build sizings; missing attributes included on purpose.
SPEC = GeneratorSpec(
    type_count=3,
    implementations_per_type=6,
    attributes_per_implementation=5,
    attribute_type_count=8,
    missing_probability=0.2,
)


def make_engine(seed: int, backend: str):
    generator = CaseBaseGenerator(SPEC, seed=seed % 50)
    return generator, RetrievalEngine(generator.case_base(), backend=backend)


def check_n_best_one_equals_best(seed: int, salt: int, backend: str) -> None:
    generator, engine = make_engine(seed, backend)
    request = generator.request(salt=salt, attribute_count=4)
    best = engine.retrieve_best(request)
    n_best = engine.retrieve_n_best(request, 1)
    assert n_best.ids() == best.ids()
    assert n_best.best_similarity == best.best_similarity
    # Scan counters agree (best_updates differs by definition: the sequential
    # scan counts strict improvements, the ranking counts returned entries).
    assert (
        n_best.statistics.implementations_visited
        == best.statistics.implementations_visited
    )
    assert n_best.statistics.attribute_lookups == best.statistics.attribute_lookups


def check_threshold_members_qualify(seed: int, salt: int, threshold: float, backend: str) -> None:
    generator, engine = make_engine(seed, backend)
    request = generator.request(salt=salt, attribute_count=4)
    result = engine.retrieve_above_threshold(request, threshold)
    assert all(entry.similarity >= threshold for entry in result)
    full = engine.retrieve_n_best(request, SPEC.implementations_per_type)
    expected = [entry.implementation_id for entry in full if entry.similarity >= threshold]
    assert result.ids() == expected
    assert result.threshold == threshold


def check_batch_equals_sequential(seed: int, backend: str) -> None:
    generator, engine = make_engine(seed, backend)
    requests = [generator.request(salt=salt, attribute_count=3) for salt in range(5)]
    batched = engine.retrieve_batch(requests, n=2)
    for request, batch_result in zip(requests, batched):
        single = engine.retrieve_n_best(request, 2)
        assert batch_result.ids() == single.ids()
        assert batch_result.statistics == single.statistics


if HAVE_HYPOTHESIS:

    COMMON = settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    @COMMON
    @given(seed=st.integers(0, 10_000), salt=st.integers(0, 100))
    def test_n_best_one_equals_best(backend, seed, salt):
        check_n_best_one_equals_best(seed, salt, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        salt=st.integers(0, 100),
        threshold=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_threshold_members_qualify(backend, seed, salt, threshold):
        check_threshold_members_qualify(seed, salt, threshold, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @COMMON
    @given(seed=st.integers(0, 10_000))
    def test_batch_equals_sequential(backend, seed):
        check_batch_equals_sequential(seed, backend)

else:  # pragma: no cover - fallback sweep without hypothesis

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_n_best_one_equals_best(backend, seed):
        check_n_best_one_equals_best(seed, salt=seed * 3, backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_threshold_members_qualify(backend, seed):
        for threshold in (0.0, 0.35, 0.8, 1.0):
            check_threshold_members_qualify(seed, salt=seed, threshold=threshold, backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_batch_equals_sequential(backend, seed):
        check_batch_equals_sequential(seed, backend)
