"""Property-based test: process-pool execution is bit-identical, always.

A seeded mutation stream (retain-style appends, revisions, removals,
mid-list insertions, type growth) drives one case base while a live
:class:`~repro.parallel.ParallelShardedRetriever` absorbs the delta windows
over its worker processes and fresh inline retrievers rebuild from scratch
at every checkpoint.  Rankings, similarity doubles and retrieval statistics
must agree exactly; with explicit bounds the incremental delta-shipping
path must additionally have engaged (no vacuous pass through silent full
rebuild-and-reloads).

Uses hypothesis when available and degrades to a seeded parametrized sweep
otherwise, following the pattern of the other property suites.
"""

import random

import pytest

from repro.core import (
    BoundsTable,
    CaseBase,
    ExecutionTarget,
    FunctionRequest,
    Implementation,
)
from repro.parallel import ParallelShardedRetriever
from repro.serving import ShardedRetriever

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


ATTRIBUTE_POOL = list(range(1, 7))
VALUE_RANGE = (0, 200)
SHARD_COUNT = 3
WORKERS = 2


def _build_case_base(rng: random.Random, explicit_bounds: bool) -> CaseBase:
    bounds = BoundsTable()
    for attribute_id in ATTRIBUTE_POOL:
        bounds.define(attribute_id, *VALUE_RANGE)
    case_base = CaseBase(bounds=bounds if explicit_bounds else None)
    for type_id in (1, 2, 3):
        function_type = case_base.add_type(type_id, name=f"type-{type_id}")
        for implementation_id in range(1, rng.randint(3, 5)):
            function_type.add(
                Implementation(
                    implementation_id,
                    ExecutionTarget.GPP,
                    {
                        attribute_id: rng.randint(*VALUE_RANGE)
                        for attribute_id in rng.sample(ATTRIBUTE_POOL, 4)
                    },
                )
            )
    return case_base


def _mutate(case_base: CaseBase, rng: random.Random, step: int) -> None:
    choice = rng.random()
    type_id = rng.choice(case_base.type_ids())
    implementations = case_base.implementations(type_id)
    if choice < 0.35:
        next_id = (
            max(i.implementation_id for i in implementations) + 1
            if implementations
            else 1
        )
        case_base.add_implementation(
            type_id,
            Implementation(
                next_id,
                ExecutionTarget.FPGA if step % 2 else ExecutionTarget.GPP,
                {
                    attribute_id: rng.randint(*VALUE_RANGE)
                    for attribute_id in rng.sample(ATTRIBUTE_POOL, 3)
                },
            ),
        )
    elif choice < 0.6:
        implementation = rng.choice(implementations)
        case_base.replace_implementation(
            type_id,
            implementation.with_attributes(
                {rng.choice(ATTRIBUTE_POOL): rng.randint(*VALUE_RANGE)}
            ),
        )
    elif choice < 0.8:
        if len(implementations) > 1:
            case_base.remove_implementation(
                type_id, rng.choice(implementations).implementation_id
            )
    elif choice < 0.9:
        taken = {i.implementation_id for i in implementations}
        free = [i for i in range(1, 60) if i not in taken]
        case_base.add_implementation(
            type_id,
            Implementation(
                rng.choice(free),
                ExecutionTarget.DSP,
                {a: rng.randint(*VALUE_RANGE) for a in rng.sample(ATTRIBUTE_POOL, 3)},
            ),
        )
    else:
        new_type_id = 10 + step
        if new_type_id not in case_base:
            grown = case_base.add_type(new_type_id, name=f"grown-{step}")
            grown.add(
                Implementation(
                    1,
                    ExecutionTarget.GPP,
                    {a: rng.randint(*VALUE_RANGE) for a in rng.sample(ATTRIBUTE_POOL, 3)},
                )
            )


def _probes(case_base: CaseBase, rng: random.Random):
    return [
        FunctionRequest(
            type_id,
            [
                (a, rng.randint(*VALUE_RANGE), 1.0 + (a % 3))
                for a in sorted(rng.sample(ATTRIBUTE_POOL, 3))
            ],
            requester="property-parallel",
        )
        for type_id in case_base.type_ids()
    ]


def _view(results):
    return [
        (
            [
                (entry.implementation_id, entry.similarity,
                 tuple(entry.local_similarities))
                for entry in result.ranked
            ],
            vars(result.statistics),
        )
        for result in results
    ]


def check_parallel_equals_inline(seed: int, explicit_bounds: bool) -> None:
    rng = random.Random(seed)
    case_base = _build_case_base(rng, explicit_bounds)
    with ParallelShardedRetriever(
        case_base, shard_count=SHARD_COUNT, workers=WORKERS
    ) as parallel:

        def checkpoint() -> None:
            probes = _probes(case_base, rng)
            fresh = ShardedRetriever(case_base, shard_count=SHARD_COUNT)
            assert _view(parallel.retrieve_batch(probes, n=4)) == _view(
                fresh.retrieve_batch(probes, n=4)
            )

        checkpoint()
        steps = rng.randint(3, 8)
        for step in range(steps):
            _mutate(case_base, rng, step)
            if step == steps - 1 or rng.random() < 0.4:
                checkpoint()
        checkpoint()
        if explicit_bounds:
            assert parallel._tracker.incremental_count > 0


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000), explicit=st.booleans())
    def test_parallel_vs_inline_bit_identity(seed, explicit):
        check_parallel_equals_inline(seed, explicit)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("explicit", [True, False])
    def test_parallel_vs_inline_bit_identity(seed, explicit):
        check_parallel_equals_inline(seed, explicit)
