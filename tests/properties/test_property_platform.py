"""Property-based tests of the platform substrate under random interleavings.

Random sequences of configure (place), release (remove) and reconfiguration
operations across several devices must uphold three invariants the cluster
serving layer's correctness rests on:

* **no double-booking** -- the run-time controllers never place two tasks on
  the same FPGA slot, slot ownership always matches the placement registry
  exactly, and processor load never exceeds its limit;
* **monotone reconfiguration accounting** -- the configuration port is a
  serial resource: its busy-until timestamp never decreases, scheduled events
  never overlap, and the accumulated reconfiguration time equals the sum of
  the event durations;
* **fleet/resource-state round-trip** -- the
  :class:`~repro.platform.SystemResourceState` snapshot reflects, device by
  device, exactly what the controllers and the
  :class:`~repro.platform.DeviceFleet` registry report.

Uses hypothesis when available and degrades to a seeded parametrized sweep
otherwise, following the pattern of the other property suites.
"""

import random

import pytest

from repro.core import DeploymentInfo, ExecutionTarget, Implementation, paper_case_base
from repro.platform import (
    DeviceFleet,
    FpgaDevice,
    LocalRuntimeController,
    SlotSpec,
    SystemResourceState,
    host_cpu,
)

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


def _fpga_implementation(implementation_id: int, area_slices: int, size_bytes: int):
    return Implementation(
        implementation_id, ExecutionTarget.FPGA, {1: 16},
        DeploymentInfo(
            area_slices=area_slices,
            configuration_size_bytes=size_bytes,
            power_mw=50.0,
            setup_time_us=10.0,
        ),
    )


def _cpu_implementation(implementation_id: int, load: float):
    return Implementation(
        implementation_id, ExecutionTarget.GPP, {1: 16},
        DeploymentInfo(load_fraction=load, power_mw=20.0, setup_time_us=5.0),
    )


def _check_no_double_booking(controllers) -> None:
    """Slot ownership and load accounting always match the task registry."""
    for controller in controllers:
        device = controller.device
        if isinstance(device, FpgaDevice):
            slot_map = device.slot_map()
            owned = [owner for owner in slot_map if owner is not None]
            handles = {task.handle for task in device.tasks()}
            # Every occupied slot belongs to a live task and every live task
            # occupies exactly its contiguous slot range.
            assert set(owned) == handles
            for task in device.tasks():
                first, count = device.placement(task.handle)
                assert count == device.slots.slots_needed(
                    task.implementation.deployment.area_slices
                )
                assert slot_map[first : first + count] == [task.handle] * count
            assert len(owned) == sum(
                device.placement(handle)[1] for handle in handles
            )
        else:
            assert device.current_load() <= device.load_limit + 1e-9


def _check_reconfiguration_monotone(controller, previous_busy_until: float) -> float:
    """Port busy time never decreases; events are serial and fully accounted."""
    reconfiguration = controller.reconfiguration
    if reconfiguration is None:
        return previous_busy_until
    busy_until = reconfiguration.busy_until_us()
    assert busy_until >= previous_busy_until
    events = reconfiguration.events
    for earlier, later in zip(events, events[1:]):
        assert later.start_us >= earlier.end_us  # serial port: no overlap
    for event in events:
        assert event.duration_us >= 0
        assert event.end_us == event.start_us + event.duration_us
    assert reconfiguration.total_reconfiguration_time_us() == pytest.approx(
        sum(event.duration_us for event in events)
    )
    return busy_until


def _check_resource_state_round_trip(system: SystemResourceState) -> None:
    """The aggregate snapshot mirrors the controllers device by device."""
    snapshot = system.snapshot()
    assert set(snapshot.devices) == {c.name for c in system.controllers()}
    for controller in system.controllers():
        view = snapshot.devices[controller.name]
        assert view.task_count == len(controller.tasks())
        assert view.utilization == pytest.approx(controller.utilization())
        assert view.power_mw == pytest.approx(controller.power_mw())
        assert view.kind is controller.device.kind
    assert snapshot.total_power_mw == pytest.approx(
        sum(controller.power_mw() for controller in system.controllers())
    )


def check_interleaving(seed: int) -> None:
    rng = random.Random(seed)
    fpga_controllers = [
        LocalRuntimeController(
            FpgaDevice(f"fpga{index}", SlotSpec(slot_count=4, slices_per_slot=500))
        )
        for index in range(rng.randint(1, 3))
    ]
    cpu_controller = LocalRuntimeController(host_cpu("cpu0"))
    controllers = fpga_controllers + [cpu_controller]
    system = SystemResourceState(controllers)

    placed = []  # (controller, handle)
    busy_until = {controller.name: 0.0 for controller in fpga_controllers}
    now_us = 0.0
    next_id = 1
    for _ in range(rng.randint(5, 25)):
        now_us += rng.uniform(0.0, 200.0)
        action = rng.random()
        if action < 0.45:  # configure: place on a random FPGA
            controller = rng.choice(fpga_controllers)
            implementation = _fpga_implementation(
                next_id, rng.choice([300, 500, 900, 1400]), rng.randrange(0, 60_000)
            )
            next_id += 1
            if controller.can_place(implementation):
                report = controller.place(1, implementation, now_us=now_us)
                assert report.reconfiguration_time_us >= 0
                placed.append((controller, report.handle))
            else:
                with pytest.raises(Exception):
                    controller.place(1, implementation, now_us=now_us)
        elif action < 0.6:  # software task on the CPU
            implementation = _cpu_implementation(next_id, rng.choice([0.2, 0.4, 0.7]))
            next_id += 1
            if cpu_controller.can_place(implementation):
                report = cpu_controller.place(2, implementation, now_us=now_us)
                placed.append((cpu_controller, report.handle))
        elif action < 0.8 and placed:  # release
            controller, handle = placed.pop(rng.randrange(len(placed)))
            controller.remove(handle)
        else:  # raw reconfiguration traffic on the port (image refresh)
            controller = rng.choice(fpga_controllers)
            event = controller.reconfiguration.schedule(
                0, rng.randrange(0, 40_000), now_us
            )
            assert event.start_us >= now_us or event.start_us >= busy_until[
                controller.name
            ]
        _check_no_double_booking(controllers)
        for controller in fpga_controllers:
            busy_until[controller.name] = _check_reconfiguration_monotone(
                controller, busy_until[controller.name]
            )
        _check_resource_state_round_trip(system)

    # Releasing everything returns the platform to idle.
    for controller, handle in placed:
        controller.remove(handle)
    _check_no_double_booking(controllers)
    snapshot = system.snapshot()
    assert all(view.task_count == 0 for view in snapshot.devices.values())
    assert all(view.utilization == 0.0 for view in snapshot.devices.values())


def check_fleet_round_trip(seed: int) -> None:
    """Fleet registry and resource state describe the same devices, always."""
    rng = random.Random(seed)
    case_base = paper_case_base()
    fleet = DeviceFleet.build(
        case_base,
        hardware_devices=rng.randint(1, 3),
        software_devices=rng.randint(0, 2),
    )
    implementation = case_base.get_implementation(1, 1)
    for _ in range(rng.randint(0, 6)):
        case_base.replace_implementation(1, implementation)
        fleet.sync(rng.uniform(0.0, 1_000.0))
    snapshot = fleet.snapshot()
    assert set(snapshot["workers"]) == {worker.name for worker in fleet.workers}
    assert set(snapshot["workers"]) == set(snapshot["system"].devices)
    assert set(snapshot["workers"]) == {
        controller.name for controller in fleet.resource_state.controllers()
    }
    for worker in fleet.workers:
        view = snapshot["workers"][worker.name]
        assert view["kind"] == worker.kind
        assert view["image_revision"] == case_base.revision
        previous = 0.0
        previous = _check_reconfiguration_monotone(worker.controller, previous)
        assert previous >= 0.0
    _check_resource_state_round_trip(fleet.resource_state)


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reconfiguration_interleavings_uphold_invariants(seed):
        check_interleaving(seed)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fleet_state_round_trips_through_resource_state(seed):
        check_fleet_round_trip(seed)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", range(12))
    def test_reconfiguration_interleavings_uphold_invariants(seed):
        check_interleaving(seed)

    @pytest.mark.parametrize("seed", range(8))
    def test_fleet_state_round_trips_through_resource_state(seed):
        check_fleet_round_trip(seed)
