"""Property-based tests for the memory-mapped encodings (round trips, sizes)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttributeBounds,
    BoundsTable,
    CaseBase,
    ExecutionTarget,
    FunctionRequest,
    Implementation,
)
from repro.fixedpoint import UQ0_16
from repro.memmap import (
    decode_compact_tree,
    decode_request,
    decode_supplemental,
    decode_tree,
    encode_compact_tree,
    encode_request,
    encode_supplemental,
    encode_tree,
    request_size_words,
)

attribute_ids = st.integers(min_value=1, max_value=60)
word_values = st.integers(min_value=0, max_value=0xFFFE)  # keep clear of the compact MISSING marker


@st.composite
def requests(draw):
    type_id = draw(st.integers(min_value=1, max_value=100))
    entries = draw(
        st.dictionaries(attribute_ids, word_values, min_size=1, max_size=8)
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
            min_size=len(entries),
            max_size=len(entries),
        )
    )
    attributes = [
        (attribute_id, value, weight)
        for (attribute_id, value), weight in zip(sorted(entries.items()), weights)
    ]
    return FunctionRequest(type_id, attributes, normalize_weights=True)


@st.composite
def case_bases(draw):
    case_base = CaseBase()
    type_ids = draw(st.lists(st.integers(1, 200), min_size=1, max_size=4, unique=True))
    targets = list(ExecutionTarget)
    implementation_id = 0
    for type_id in sorted(type_ids):
        function_type = case_base.add_type(type_id)
        count = draw(st.integers(min_value=1, max_value=4))
        for _ in range(count):
            implementation_id += 1
            attributes = draw(
                st.dictionaries(attribute_ids, word_values, min_size=0, max_size=6)
            )
            function_type.add(
                Implementation(
                    implementation_id,
                    targets[implementation_id % len(targets)],
                    attributes,
                )
            )
    return case_base


class TestRequestEncodingProperties:
    @given(requests())
    @settings(max_examples=100)
    def test_round_trip_preserves_structure(self, request):
        encoded = encode_request(request)
        decoded = decode_request(encoded.words)
        assert decoded.type_id == request.type_id
        assert decoded.values() == request.values()
        assert decoded.attribute_ids() == request.attribute_ids()
        for attribute_id, weight in request.weights().items():
            assert abs(decoded.weights()[attribute_id] - weight) <= UQ0_16.resolution

    @given(requests())
    @settings(max_examples=100)
    def test_size_formula_matches_encoder(self, request):
        encoded = encode_request(request)
        assert encoded.size_words == request_size_words(len(request))


class TestTreeEncodingProperties:
    @given(case_bases())
    @settings(max_examples=75)
    def test_plain_round_trip(self, case_base):
        decoded = decode_tree(encode_tree(case_base).words)
        for type_id, implementation in case_base.all_implementations():
            assert decoded[type_id][implementation.implementation_id] == implementation.attributes

    @given(case_bases())
    @settings(max_examples=75)
    def test_compact_round_trip_matches_plain(self, case_base):
        plain = decode_tree(encode_tree(case_base).words)
        compact = decode_compact_tree(encode_compact_tree(case_base).words)
        assert compact == plain

    @given(case_bases())
    @settings(max_examples=75)
    def test_encoded_sizes_match_structural_formulas(self, case_base):
        """Both encoders produce exactly the size their layouts imply."""
        plain = encode_tree(case_base)
        expected_plain = 2 * len(case_base) + 1
        for function_type in case_base:
            expected_plain += 2 * len(function_type) + 1
            for implementation in function_type:
                expected_plain += 2 * len(implementation.attributes) + 1
        assert plain.size_words == expected_plain

        compact = encode_compact_tree(case_base)
        expected_compact = 2 * len(case_base) + 1
        for function_type in case_base:
            directory = {
                attribute_id
                for implementation in function_type
                for attribute_id in implementation.attributes
            }
            expected_compact += len(directory) + 1
            expected_compact += len(function_type) * (1 + len(directory)) + 1
        assert compact.size_words == expected_compact


class TestSupplementalEncodingProperties:
    @given(
        st.dictionaries(
            attribute_ids,
            st.tuples(st.integers(0, 30000), st.integers(0, 30000)),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100)
    def test_round_trip(self, raw_bounds):
        table = BoundsTable(
            [
                AttributeBounds(attribute_id, min(pair), max(pair))
                for attribute_id, pair in sorted(raw_bounds.items())
            ]
        )
        decoded = decode_supplemental(encode_supplemental(table).words)
        assert decoded.ids() == table.ids()
        for attribute_id in table.ids():
            assert decoded.dmax(attribute_id) == table.dmax(attribute_id)
