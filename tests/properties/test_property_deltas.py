"""Property-based test: incremental delta application is bit-identical, always.

Persistent consumers (a vectorized engine, sharded retrievers, the
hardware/software cycle units) absorb random interleavings of case-base
mutations -- add / remove / replace / retain-style appends, plus occasional
type-level churn -- through the delta log, while fresh consumers are rebuilt
from scratch at every checkpoint.  Rankings, similarity doubles, retrieval
statistics, raw fixed-point similarities, exact cycle counts and sharded
merges must agree exactly across every backend x engine x shard axis; the
trackers' counters additionally prove the incremental path actually engaged
(so the property can never pass vacuously through silent full rebuilds).

Uses hypothesis when available and degrades to a seeded parametrized sweep
otherwise, following the pattern of the other property suites.
"""

import random

import pytest

from repro.core import (
    BoundsTable,
    CaseBase,
    ExecutionTarget,
    FunctionRequest,
    Implementation,
    RetrievalEngine,
)
from repro.hardware import HardwareRetrievalUnit
from repro.serving import ShardedRetriever
from repro.software import SoftwareRetrievalUnit

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


SHARD_COUNTS = [1, 3]
ATTRIBUTE_POOL = list(range(1, 7))
VALUE_RANGE = (0, 200)


def _build_case_base(rng: random.Random, explicit_bounds: bool) -> CaseBase:
    bounds = BoundsTable()
    for attribute_id in ATTRIBUTE_POOL:
        bounds.define(attribute_id, *VALUE_RANGE)
    case_base = CaseBase(bounds=bounds if explicit_bounds else None)
    for type_id in (1, 2, 3):
        function_type = case_base.add_type(type_id, name=f"type-{type_id}")
        for implementation_id in range(1, rng.randint(3, 5)):
            function_type.add(
                Implementation(
                    implementation_id,
                    ExecutionTarget.GPP,
                    {
                        attribute_id: rng.randint(*VALUE_RANGE)
                        for attribute_id in rng.sample(ATTRIBUTE_POOL, 4)
                    },
                )
            )
    # A deliberately tiny type: growth windows outrun its old encoded
    # segment, exercising the splice fast path's shifting-follower cases.
    tiny = case_base.add_type(4, name="tiny")
    tiny.add(Implementation(1, ExecutionTarget.GPP, {1: rng.randint(*VALUE_RANGE)}))
    return case_base


def _mutate(case_base: CaseBase, rng: random.Random, step: int) -> None:
    """One random structural mutation through the CaseBase mutator API."""
    choice = rng.random()
    type_ids = case_base.type_ids()
    type_id = rng.choice(type_ids)
    implementations = case_base.implementations(type_id)
    if choice < 0.35:  # retain-style append (max + 1)
        next_id = max(i.implementation_id for i in implementations) + 1 if implementations else 1
        case_base.add_implementation(
            type_id,
            Implementation(
                next_id,
                ExecutionTarget.FPGA if step % 2 else ExecutionTarget.GPP,
                {
                    attribute_id: rng.randint(*VALUE_RANGE)
                    for attribute_id in rng.sample(ATTRIBUTE_POOL, rng.randint(2, 5))
                },
            ),
        )
    elif choice < 0.5:  # mid-list insertion (exercises the re-partition path)
        taken = {i.implementation_id for i in implementations}
        free = [i for i in range(1, 40) if i not in taken]
        case_base.add_implementation(
            type_id,
            Implementation(
                rng.choice(free),
                ExecutionTarget.DSP,
                {a: rng.randint(*VALUE_RANGE) for a in rng.sample(ATTRIBUTE_POOL, 3)},
            ),
        )
    elif choice < 0.7:  # revise-style replacement
        implementation = rng.choice(implementations)
        case_base.replace_implementation(
            type_id,
            implementation.with_attributes(
                {rng.choice(ATTRIBUTE_POOL): rng.randint(*VALUE_RANGE)}
            ),
        )
    elif choice < 0.85:  # removal
        if len(implementations) > 1:
            case_base.remove_implementation(
                type_id, rng.choice(implementations).implementation_id
            )
    elif choice < 0.93:  # type-level churn: remove and re-add a whole type
        if len(type_ids) > 1:
            removed = case_base.remove_type(type_id)
            case_base.add_type(removed)
    else:  # grow a fresh type
        new_type_id = 10 + step
        if new_type_id not in case_base:
            grown = case_base.add_type(new_type_id, name=f"grown-{step}")
            grown.add(
                Implementation(
                    1, ExecutionTarget.GPP,
                    {a: rng.randint(*VALUE_RANGE) for a in rng.sample(ATTRIBUTE_POOL, 3)},
                )
            )


def _probes(case_base: CaseBase, rng: random.Random):
    requests = []
    for type_id in case_base.type_ids():
        attribute_ids = sorted(rng.sample(ATTRIBUTE_POOL, 3))
        requests.append(
            FunctionRequest(
                type_id,
                [(a, rng.randint(*VALUE_RANGE), 1.0 + (a % 3)) for a in attribute_ids],
                requester="property-deltas",
            )
        )
    return requests


def _engine_view(results):
    return [
        (
            [(entry.implementation_id, entry.similarity) for entry in result.ranked],
            vars(result.statistics),
        )
        for result in results
    ]


def _hardware_view(results):
    return [
        (r.type_id, r.best_id, r.best_similarity_raw, r.ranked, vars(r.statistics))
        for r in results
    ]


def _software_view(results):
    return [
        (r.type_id, r.best_id, r.best_similarity_raw, vars(r.statistics),
         r.counters.counts)
        for r in results
    ]


def check_incremental_equals_rebuild(seed: int, explicit_bounds: bool) -> None:
    rng = random.Random(seed)
    case_base = _build_case_base(rng, explicit_bounds)

    live_engine = RetrievalEngine(case_base, backend="vectorized")
    live_sharded = {
        count: ShardedRetriever(case_base, shard_count=count) for count in SHARD_COUNTS
    }
    live_hardware = HardwareRetrievalUnit(case_base)
    live_software = SoftwareRetrievalUnit(case_base)

    def checkpoint() -> None:
        probes = _probes(case_base, rng)
        # An engine pins its (possibly derived) bounds at construction --
        # pre-existing semantics, independent of the delta subsystem -- so
        # the fresh rebuild it must match shares the live engine's bounds.
        # The sharded retrievers and the units, by contrast, re-derive
        # bounds on full rebuild; their incremental paths fall back exactly
        # when a window could move derived bounds, so they are compared
        # against genuinely fresh consumers.
        fresh_engine = RetrievalEngine(
            case_base, bounds=live_engine.bounds, backend="vectorized"
        )
        golden = RetrievalEngine(case_base, bounds=live_engine.bounds, backend="naive")
        expected = _engine_view(fresh_engine.retrieve_batch(probes, n=4))
        assert _engine_view(live_engine.retrieve_batch(probes, n=4)) == expected
        assert _engine_view(golden.retrieve_batch(probes, n=4)) == expected
        for count, retriever in live_sharded.items():
            fresh_sharded = ShardedRetriever(case_base, shard_count=count)
            assert _engine_view(retriever.retrieve_batch(probes, n=4)) == _engine_view(
                fresh_sharded.retrieve_batch(probes, n=4)
            )
        fresh_hardware = HardwareRetrievalUnit(case_base)
        for engine_name in ("vectorized", "stepwise"):
            assert _hardware_view(
                live_hardware.run_batch(probes, engine="vectorized")
            ) == _hardware_view(fresh_hardware.run_batch(probes, engine=engine_name))
        assert live_hardware.predict_cycles(probes) == fresh_hardware.predict_cycles(
            probes, engine="stepwise"
        )
        fresh_software = SoftwareRetrievalUnit(case_base)
        assert _software_view(
            live_software.run_batch(probes, engine="vectorized")
        ) == _software_view(fresh_software.run_batch(probes, engine="stepwise"))

    checkpoint()  # cold caches
    steps = rng.randint(3, 9)
    for step in range(steps):
        _mutate(case_base, rng, step)
        # Checkpoint sparsely so delta windows often carry SEVERAL mutations
        # across multiple types (the splice/forwarding multi-event paths).
        if step == steps - 1 or rng.random() < 0.3:
            checkpoint()
    checkpoint()

    # The fast path must actually have engaged somewhere (no vacuous pass):
    # with explicit bounds every consumer can absorb at least some windows.
    if explicit_bounds:
        incremental = (
            live_hardware._tracker.incremental_count
            + live_software._tracker.incremental_count
            + sum(r._tracker.incremental_count for r in live_sharded.values())
        )
        assert incremental > 0


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000), explicit=st.booleans())
    def test_incremental_vs_rebuild_bit_identity(seed, explicit):
        check_incremental_equals_rebuild(seed, explicit)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("explicit", [True, False])
    def test_incremental_vs_rebuild_bit_identity(seed, explicit):
        check_incremental_equals_rebuild(seed, explicit)


def test_learning_serving_compare_sharded_vs_unsharded():
    """Mid-trace learning: sharded and unsharded replays stay bit-identical.

    Both engines start from identical snapshots of one case base, learn from
    their own traffic (revise + retain between micro-batches) and must
    produce identical rankings, statuses and case-base evolution -- the
    ``repro serve-trace --learn --engine compare`` guarantee.
    """
    from repro.serving import ServingConfig, ServingEngine, synthetic_trace
    from repro.tools import CaseBaseGenerator, GeneratorSpec

    generator = CaseBaseGenerator(
        GeneratorSpec(type_count=4, implementations_per_type=5,
                      attributes_per_implementation=5, attribute_type_count=6),
        seed=11,
    )
    source = generator.case_base()
    trace = synthetic_trace(source, 80, mean_interarrival_us=40.0, seed=5)
    config = dict(max_batch=16, n_best=3, learn=True, novelty_threshold=0.97,
                  learn_capacity=12)
    sharded_base, unsharded_base = source.copy(), source.copy()
    sharded = ServingEngine(
        sharded_base, config=ServingConfig(shard_count=3, **config)
    ).serve(trace)
    unsharded = ServingEngine(
        unsharded_base, config=ServingConfig(shard_count=1, **config)
    ).serve(trace)
    assert sharded.rankings() == unsharded.rankings()
    assert [r.status for r in sharded.served] == [r.status for r in unsharded.served]
    assert sharded.metrics["learning"] == unsharded.metrics["learning"]
    assert sharded_base.to_dict() == unsharded_base.to_dict()
    # Learning visibly evolved the case base mid-stream.
    assert sharded_base.revision > source.revision
