"""Property-based test: ServingSpec wire round-trips are identity, always.

For any valid spec, ``from_wire(to_wire(spec)) == spec`` and the JSON text
path round-trips bit-exactly (floats survive via repr round-trip, tuples are
restored from JSON lists).  Uses hypothesis when available and degrades to a
seeded parametrized sweep otherwise, following the other property suites.
"""

import random

import pytest

from repro.serving import ServingSpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


WORKLOAD_NAMES = ["audio", "video", "heavy-traffic", "fleet-failover"]


def _spec_kwargs(rng: random.Random) -> dict:
    return {
        "workloads": tuple(
            rng.sample(WORKLOAD_NAMES, rng.randint(0, len(WORKLOAD_NAMES)))
        ),
        "duration_ms": rng.uniform(1.0, 5000.0),
        "requests": rng.choice([None, "requests.json"]),
        "random": rng.randint(0, 64),
        "mean_interarrival_us": rng.uniform(1.0, 5000.0),
        "seed": rng.randint(0, 2**31),
        "cluster": rng.random() < 0.5,
        "devices": rng.randint(1, 6),
        "software_workers": rng.randint(0, 3),
        "reconfig_us": rng.choice([None, rng.uniform(0.0, 1e6)]),
        "backend": rng.choice(["vectorized", "naive"]),
        "shards": rng.randint(1, 8),
        "max_batch": rng.randint(1, 128),
        "max_wait_us": rng.uniform(1.0, 1e6),
        "deadline_us": rng.choice([None, rng.uniform(1.0, 1e6)]),
        "cycle_engine": rng.choice(["auto", "stepwise", "vectorized"]),
        "clock_mhz": rng.uniform(1.0, 500.0),
        "n_best": rng.randint(1, 8),
        "learn": rng.random() < 0.5,
        "learning_rate": rng.uniform(0.0, 1.0),
        "novelty_threshold": rng.uniform(0.0, 1.0),
        "learn_capacity": rng.randint(1, 64),
    }


def _assert_round_trip(spec: ServingSpec) -> None:
    assert ServingSpec.from_wire(spec.to_wire()) == spec
    assert ServingSpec.from_json(spec.to_json()) == spec
    assert ServingSpec.from_json(spec.to_json(indent=None)) == spec


if HAVE_HYPOTHESIS:

    @given(
        workloads=st.lists(st.sampled_from(WORKLOAD_NAMES), max_size=4).map(tuple),
        duration_ms=st.floats(1.0, 5000.0, allow_nan=False),
        random_count=st.integers(0, 64),
        mean_interarrival_us=st.floats(1.0, 5000.0, allow_nan=False),
        seed=st.integers(0, 2**31),
        cluster=st.booleans(),
        devices=st.integers(1, 6),
        software_workers=st.integers(0, 3),
        backend=st.sampled_from(["vectorized", "naive"]),
        shards=st.integers(1, 8),
        max_batch=st.integers(1, 128),
        max_wait_us=st.floats(1.0, 1e6, allow_nan=False),
        deadline_us=st.none() | st.floats(1.0, 1e6, allow_nan=False),
        cycle_engine=st.sampled_from(["auto", "stepwise", "vectorized"]),
        clock_mhz=st.floats(1.0, 500.0, allow_nan=False),
        n_best=st.integers(1, 8),
        learn=st.booleans(),
        learning_rate=st.floats(0.0, 1.0, allow_nan=False),
        novelty_threshold=st.floats(0.0, 1.0, allow_nan=False),
        learn_capacity=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_round_trip_is_identity(
        workloads, duration_ms, random_count, mean_interarrival_us, seed,
        cluster, devices, software_workers, backend, shards, max_batch,
        max_wait_us, deadline_us, cycle_engine, clock_mhz, n_best, learn,
        learning_rate, novelty_threshold, learn_capacity,
    ):
        _assert_round_trip(ServingSpec(
            workloads=workloads,
            duration_ms=duration_ms,
            random=random_count,
            mean_interarrival_us=mean_interarrival_us,
            seed=seed,
            cluster=cluster,
            devices=devices,
            software_workers=software_workers,
            backend=backend,
            shards=shards,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            deadline_us=deadline_us,
            cycle_engine=cycle_engine,
            clock_mhz=clock_mhz,
            n_best=n_best,
            learn=learn,
            learning_rate=learning_rate,
            novelty_threshold=novelty_threshold,
            learn_capacity=learn_capacity,
        ))

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("seed", range(40))
    def test_wire_round_trip_is_identity(seed):
        rng = random.Random(seed)
        _assert_round_trip(ServingSpec(**_spec_kwargs(rng)))


@pytest.mark.parametrize("seed", range(10))
def test_seeded_sweep_round_trips(seed):
    """A hypothesis-independent sweep covering the file-path axes too."""
    rng = random.Random(1000 + seed)
    _assert_round_trip(ServingSpec(**_spec_kwargs(rng)))
