"""Property-based exactness tests for the vectorized cycle engine.

Uses hypothesis when available (the CI test environment installs it) and
degrades to a seeded-random parametrized sweep otherwise, matching
``test_property_backends``.  The single property under test is the cycle
engines' whole contract: over random case bases, random requests and random
configuration axes, the vectorized engine reproduces the stepwise golden
models *exactly* -- retrieval decision, ranked list, raw similarities, cycle
counts, instruction counters and memory-read counters.
"""

import pytest

from repro.hardware import HardwareConfig, HardwareRetrievalUnit
from repro.software import (
    SoftwareRetrievalUnit,
    microblaze_cost_model,
    microblaze_soft_multiply_model,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


#: Small, quick-to-build sizings; missing attributes included on purpose so
#: the probe/missing accounting is exercised.
SPEC = GeneratorSpec(
    type_count=3,
    implementations_per_type=5,
    attributes_per_implementation=5,
    attribute_type_count=8,
    missing_probability=0.25,
)


def check_hardware_exact(
    seed: int, salt: int, wide: bool, pipelined: bool, cache: bool,
    restart: bool, divider: bool, n_best: int,
) -> None:
    generator = CaseBaseGenerator(SPEC, seed=seed % 40)
    case_base = generator.case_base()
    requests = [generator.request(salt=salt + offset, attribute_count=4) for offset in range(3)]
    unit = HardwareRetrievalUnit(
        case_base,
        config=HardwareConfig(
            wide_attribute_fetch=wide,
            pipelined_datapath=pipelined,
            cache_reciprocals=cache,
            restart_attribute_search=restart,
            use_divider=divider,
            n_best=n_best,
        ),
    )
    for stepwise, vectorized in zip(
        unit.run_batch(requests, engine="stepwise"),
        unit.run_batch(requests, engine="vectorized"),
    ):
        assert stepwise.best_id == vectorized.best_id
        assert stepwise.best_similarity_raw == vectorized.best_similarity_raw
        assert stepwise.ranked == vectorized.ranked
        assert stepwise.statistics == vectorized.statistics


def check_software_exact(seed: int, salt: int, inline: bool, soft_multiply: bool) -> None:
    generator = CaseBaseGenerator(SPEC, seed=seed % 40)
    case_base = generator.case_base()
    requests = [generator.request(salt=salt + offset, attribute_count=4) for offset in range(3)]
    cost_model = (
        microblaze_soft_multiply_model() if soft_multiply else microblaze_cost_model()
    )
    unit = SoftwareRetrievalUnit(case_base, cost_model=cost_model, inline_helpers=inline)
    for stepwise, vectorized in zip(
        unit.run_batch(requests, engine="stepwise"),
        unit.run_batch(requests, engine="vectorized"),
    ):
        assert stepwise.best_id == vectorized.best_id
        assert stepwise.best_similarity_raw == vectorized.best_similarity_raw
        assert stepwise.statistics == vectorized.statistics
        assert stepwise.counters.counts == vectorized.counters.counts


if HAVE_HYPOTHESIS:

    COMMON = settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )

    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        salt=st.integers(0, 100),
        wide=st.booleans(),
        pipelined=st.booleans(),
        cache=st.booleans(),
        restart=st.booleans(),
        divider=st.booleans(),
        n_best=st.integers(1, 8),
    )
    def test_hardware_engines_exact(seed, salt, wide, pipelined, cache, restart, divider, n_best):
        check_hardware_exact(seed, salt, wide, pipelined, cache, restart, divider, n_best)

    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        salt=st.integers(0, 100),
        inline=st.booleans(),
        soft_multiply=st.booleans(),
    )
    def test_software_engines_exact(seed, salt, inline, soft_multiply):
        check_software_exact(seed, salt, inline, soft_multiply)

else:  # pragma: no cover - fallback sweep without hypothesis

    @pytest.mark.parametrize("seed", range(8))
    def test_hardware_engines_exact(seed):
        check_hardware_exact(
            seed, salt=seed * 5, wide=seed % 2 == 0, pipelined=seed % 3 == 0,
            cache=seed % 2 == 1, restart=seed % 4 == 0, divider=seed % 3 == 1,
            n_best=(seed % 4) + 1,
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_software_engines_exact(seed):
        check_software_exact(
            seed, salt=seed * 5, inline=seed % 2 == 0, soft_multiply=seed % 3 == 0
        )
