"""Property-based test: sharded retrieval merges bit-identically, always.

For any generated case base, any request mix, any shard count and any
retrieval mode, the sharded merge must reproduce the unsharded ranking
*exactly* -- same implementation IDs in the same order with bit-equal
similarity doubles -- across the backend axis (naive golden loop vs the
NumPy-vectorized kernel) and the serving-engine axis (the cycle engines
behind admission never influence rankings, only latency modelling).

Uses hypothesis when available and degrades to a seeded parametrized sweep
otherwise, following the pattern of the other property suites.
"""

import pytest

from repro.core import RetrievalEngine
from repro.serving import ServingConfig, ServingEngine, ShardedRetriever, synthetic_trace
from repro.tools import CaseBaseGenerator, GeneratorSpec

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


BACKENDS = ["naive", "vectorized"]
CYCLE_ENGINES = ["stepwise", "vectorized"]

#: Small sizing with deliberate attribute gaps (missing-attribute handling is
#: part of the similarity arithmetic being merged).
SPEC = GeneratorSpec(
    type_count=3,
    implementations_per_type=6,
    attributes_per_implementation=5,
    attribute_type_count=8,
    missing_probability=0.2,
)


def _exact_rankings(result):
    return [(entry.implementation_id, entry.similarity) for entry in result.ranked]


def check_sharded_equals_unsharded(
    seed: int, shard_count: int, n: int, backend: str
) -> None:
    generator = CaseBaseGenerator(SPEC, seed=seed % 50)
    case_base = generator.case_base()
    requests = [generator.request(salt=200 + salt, attribute_count=3) for salt in range(6)]
    reference = RetrievalEngine(case_base, backend=backend)
    sharded = ShardedRetriever(case_base, shard_count=shard_count, backend=backend)
    mode = {"n": n} if n > 0 else {}
    expected = reference.retrieve_batch(requests, **mode)
    merged = sharded.retrieve_batch(requests, **mode)
    for expected_result, merged_result in zip(expected, merged):
        assert _exact_rankings(merged_result) == _exact_rankings(expected_result)


def check_serving_engine_axes(seed: int, shard_count: int, cycle_engine: str) -> None:
    """The full serving pipeline preserves the equality across engine axes."""
    generator = CaseBaseGenerator(SPEC, seed=seed % 50)
    case_base = generator.case_base()
    trace = synthetic_trace(case_base, 10, mean_interarrival_us=50.0, seed=seed)
    reports = [
        ServingEngine(
            case_base,
            config=ServingConfig(
                shard_count=count, cycle_engine=cycle_engine, n_best=4, max_batch=4
            ),
        ).serve(trace)
        for count in (1, shard_count)
    ]
    assert reports[0].rankings() == reports[1].rankings()


if HAVE_HYPOTHESIS:

    COMMON = settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    @COMMON
    @given(
        seed=st.integers(0, 10_000),
        shard_count=st.integers(1, 8),
        n=st.integers(0, 7),  # 0 selects most-similar mode
    )
    def test_sharded_equals_unsharded(backend, seed, shard_count, n):
        check_sharded_equals_unsharded(seed, shard_count, n, backend)

    @pytest.mark.parametrize("cycle_engine", CYCLE_ENGINES)
    @COMMON
    @given(seed=st.integers(0, 10_000), shard_count=st.integers(2, 6))
    def test_serving_engine_axes(cycle_engine, seed, shard_count):
        check_serving_engine_axes(seed, shard_count, cycle_engine)

else:  # pragma: no cover - fallback sweep without hypothesis

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(8))
    def test_sharded_equals_unsharded(backend, seed):
        for shard_count in (1, 2, 3, 7):
            for n in (0, 1, 3, 7):
                check_sharded_equals_unsharded(seed, shard_count, n, backend)

    @pytest.mark.parametrize("cycle_engine", CYCLE_ENGINES)
    @pytest.mark.parametrize("seed", range(4))
    def test_serving_engine_axes(cycle_engine, seed):
        check_serving_engine_axes(seed, shard_count=2 + seed % 4, cycle_engine=cycle_engine)
