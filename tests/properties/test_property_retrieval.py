"""Property-based tests of the retrieval invariants across execution models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionRequest, RetrievalEngine
from repro.hardware import HardwareConfig, HardwareRetrievalUnit
from repro.software import SoftwareRetrievalUnit
from repro.tools import CaseBaseGenerator, GeneratorSpec


@st.composite
def generator_and_request(draw):
    """A random (but small) case base plus a random request against it."""
    spec = GeneratorSpec(
        type_count=draw(st.integers(1, 3)),
        implementations_per_type=draw(st.integers(1, 4)),
        attributes_per_implementation=draw(st.integers(1, 5)),
        attribute_type_count=6,
        value_range=(0, 300),
        missing_probability=draw(st.sampled_from([0.0, 0.2])),
    )
    generator = CaseBaseGenerator(spec, seed=draw(st.integers(0, 50)))
    case_base = generator.case_base()
    request = generator.request(
        type_id=draw(st.integers(1, spec.type_count)),
        attribute_count=draw(st.integers(1, 5)),
        salt=draw(st.integers(0, 100)),
    )
    return case_base, request


class TestCrossModelInvariants:
    @given(generator_and_request())
    @settings(max_examples=40, deadline=None)
    def test_reference_best_is_maximal(self, data):
        """The reported best similarity upper-bounds every scored variant."""
        case_base, request = data
        engine = RetrievalEngine(case_base)
        scored = engine.score_all(request)
        best = engine.retrieve_best(request)
        assert best.best_similarity == max(entry.similarity for entry in scored)
        assert 0.0 <= best.best_similarity <= 1.0

    @given(generator_and_request())
    @settings(max_examples=40, deadline=None)
    def test_n_best_is_sorted_prefix_of_full_ranking(self, data):
        case_base, request = data
        engine = RetrievalEngine(case_base)
        full = engine.retrieve_n_best(request, 100)
        partial = engine.retrieve_n_best(request, 2)
        assert partial.ids() == full.ids()[: len(partial.ids())]
        similarities = [entry.similarity for entry in full]
        assert similarities == sorted(similarities, reverse=True)

    @given(generator_and_request())
    @settings(max_examples=30, deadline=None)
    def test_hardware_and_software_agree_bit_exactly(self, data):
        """Both fixed-point executions deliver identical winner and similarity."""
        case_base, request = data
        hardware = HardwareRetrievalUnit(case_base).run(request)
        software = SoftwareRetrievalUnit(case_base).run(request)
        assert hardware.best_id == software.best_id
        assert hardware.best_similarity_raw == software.best_similarity_raw

    @given(generator_and_request())
    @settings(max_examples=30, deadline=None)
    def test_fixed_point_similarity_close_to_reference(self, data):
        """16-bit fixed point never drifts far from the floating-point value (E5)."""
        case_base, request = data
        reference = RetrievalEngine(case_base).retrieve_best(request)
        hardware = HardwareRetrievalUnit(case_base).run(request)
        assert abs(hardware.best_similarity - reference.best_similarity) < 0.02

    @given(generator_and_request())
    @settings(max_examples=30, deadline=None)
    def test_compacted_configuration_never_slower(self, data):
        """The section-5 optimisations can only reduce the cycle count."""
        case_base, request = data
        baseline = HardwareRetrievalUnit(case_base).run(request)
        optimised = HardwareRetrievalUnit(
            case_base,
            config=HardwareConfig(
                wide_attribute_fetch=True, pipelined_datapath=True, cache_reciprocals=True
            ),
        ).run(request)
        assert optimised.cycles <= baseline.cycles
        assert optimised.best_id == baseline.best_id

    @given(generator_and_request())
    @settings(max_examples=30, deadline=None)
    def test_cycle_count_matches_trace_and_covers_reads(self, data):
        case_base, request = data
        unit = HardwareRetrievalUnit(case_base, config=HardwareConfig(trace=True))
        result = unit.run(request)
        assert result.trace.total_cycles() == result.cycles
        assert result.cycles >= result.statistics.memory_reads
