"""Property-based tests for the similarity and amalgamation machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttributeBounds,
    BoundsTable,
    LocalSimilarity,
    WeightedGeometricMean,
    WeightedSum,
)
from repro.fixedpoint import UQ0_16, local_similarity, weighted_sum


values = st.integers(min_value=0, max_value=2000)


def bounds_for(span: int) -> BoundsTable:
    return BoundsTable([AttributeBounds(1, 0, span)])


class TestLocalSimilarityProperties:
    @given(a=values, b=values, span=st.integers(min_value=1, max_value=4000))
    @settings(max_examples=150)
    def test_range_symmetry_and_identity(self, a, b, span):
        measure = LocalSimilarity(bounds_for(span))
        forward = measure.value(1, a, b)
        backward = measure.value(1, b, a)
        assert 0.0 <= forward <= 1.0
        assert forward == backward
        assert measure.value(1, a, a) == 1.0

    @given(a=values, b=values, c=values, span=st.integers(min_value=1, max_value=4000))
    @settings(max_examples=150)
    def test_monotone_in_distance(self, a, b, c, span):
        """A closer case value never yields a lower similarity."""
        measure = LocalSimilarity(bounds_for(span))
        near, far = sorted((b, c), key=lambda value: abs(value - a))
        assert measure.value(1, a, near) >= measure.value(1, a, far)

    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF),
           span=st.integers(min_value=1, max_value=0xFFFF))
    @settings(max_examples=150)
    def test_fixed_point_stays_close_to_float(self, a, b, span):
        """The 16-bit datapath result never drifts far from the exact value."""
        measure = LocalSimilarity(bounds_for(span), clamp=True)
        exact = measure.value(1, a, b)
        quantised = local_similarity(a, b, span)
        # The reciprocal quantisation error is amplified by the distance.
        tolerance = (abs(a - b) * 0.5 + 2) * UQ0_16.resolution + 1e-9
        assert abs(exact - quantised) <= tolerance


unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive_weights = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)


class TestAmalgamationProperties:
    @given(st.lists(st.tuples(unit_floats, positive_weights), min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_weighted_sum_stays_in_unit_cube_image(self, pairs):
        similarities = [s for s, _ in pairs]
        weights = [w for _, w in pairs]
        value = WeightedSum().combine(similarities, weights)
        assert -1e-9 <= value <= 1.0 + 1e-9
        assert min(similarities) - 1e-9 <= value <= max(similarities) + 1e-9

    @given(st.lists(st.tuples(unit_floats, positive_weights), min_size=1, max_size=8),
           st.integers(min_value=0, max_value=7),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200)
    def test_weighted_sum_monotone_in_every_argument(self, pairs, index, bump):
        similarities = [s for s, _ in pairs]
        weights = [w for _, w in pairs]
        index = index % len(similarities)
        bumped = list(similarities)
        bumped[index] = min(1.0, bumped[index] + bump * (1.0 - bumped[index]))
        assert (
            WeightedSum().combine(bumped, weights)
            >= WeightedSum().combine(similarities, weights) - 1e-9
        )

    @given(st.lists(st.tuples(unit_floats, positive_weights), min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_geometric_mean_never_exceeds_weighted_sum(self, pairs):
        """AM-GM: the geometric amalgamation is a lower bound of eq. 2."""
        similarities = [s for s, _ in pairs]
        weights = [w for _, w in pairs]
        geometric = WeightedGeometricMean().combine(similarities, weights)
        weighted = WeightedSum().combine(similarities, weights)
        assert geometric <= weighted + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6))
    @settings(max_examples=200)
    def test_fixed_point_weighted_sum_close_to_float(self, similarities):
        weights = [1.0 / len(similarities)] * len(similarities)
        exact = WeightedSum().combine(similarities, weights)
        quantised = weighted_sum(similarities, weights)
        assert abs(exact - quantised) <= len(similarities) * 4 * UQ0_16.resolution + 1e-9
