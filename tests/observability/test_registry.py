"""Metrics registry: families, labels, histograms, Prometheus exposition."""

import re

import pytest

from repro.core.exceptions import ReproError
from repro.observability import MetricsRegistry

#: Every non-comment exposition line must parse as `name{labels} value`.
SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
    r'(-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$'
)


class TestFamilies:
    def test_counter_inc_and_values(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_things_total", "things", labels=("kind",))
        family.labels(kind="a").inc()
        family.labels(kind="a").inc(2)
        family.labels(kind="b").inc()
        assert family.values() == {("a",): 3.0, ("b",): 1.0}

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.counter("repro_c_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.child().value == 4.0

    def test_get_or_create_shares_series(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_shared_total", "one")
        second = registry.counter("repro_shared_total", "one")
        assert first is second

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_taken_total")
        with pytest.raises(ReproError):
            registry.gauge("repro_taken_total")

    def test_label_set_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_l_total", labels=("a",))
        with pytest.raises(ReproError):
            registry.counter("repro_l_total", labels=("b",))

    def test_wrong_labels_on_child_lookup(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_w_total", labels=("kind",))
        with pytest.raises(ReproError):
            family.labels(wrong="x")

    def test_invalid_metric_name(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.counter("repro-bad-name")


class TestHistogram:
    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram("repro_h_us", buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            family.observe(value)
        child = family.child()
        assert child.count == 4
        assert child.sum == 5555.0
        assert child.cumulative() == [
            (10.0, 1), (100.0, 2), (1000.0, 3), (float("inf"), 4),
        ]

    def test_boundary_lands_in_its_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bounds).
        registry = MetricsRegistry()
        family = registry.histogram("repro_b_us", buckets=(10, 100))
        family.observe(10)
        assert family.child().cumulative()[0] == (10.0, 1)

    def test_track_values_retains_raw_samples(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "repro_raw_us", buckets=(10,), track_values=True
        )
        family.observe(3)
        family.observe(7)
        assert family.child().values == [3.0, 7.0]


class TestExposition:
    def test_every_line_is_comment_or_valid_sample(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_requests_total", "Requests.", labels=("status",)
        ).labels(status="served_hardware").inc(3)
        registry.gauge("repro_up", "Up.").set(1)
        registry.histogram(
            "repro_latency_us", "Latency.", buckets=(100, 1000)
        ).observe(250)
        text = registry.exposition()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line.startswith("#") or SAMPLE_LINE.match(line), line

    def test_help_type_and_sample_lines(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_requests_total", "Requests by status.", labels=("status",)
        ).labels(status="ok").inc()
        text = registry.exposition()
        assert "# HELP repro_requests_total Requests by status.\n" in text
        assert "# TYPE repro_requests_total counter\n" in text
        assert 'repro_requests_total{status="ok"} 1\n' in text

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h_us", "H.", buckets=(10,)).observe(5)
        text = registry.exposition()
        assert 'repro_h_us_bucket{le="10"} 1' in text
        assert 'repro_h_us_bucket{le="+Inf"} 1' in text
        assert "repro_h_us_sum 5" in text
        assert "repro_h_us_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_e_total", labels=("v",)).labels(
            v='quo"te\nline'
        ).inc()
        text = registry.exposition()
        assert 'v="quo\\"te\\nline"' in text

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_zzz_total").inc()
        registry.counter("repro_aaa_total").inc()
        text = registry.exposition()
        assert text.index("repro_aaa_total") < text.index("repro_zzz_total")

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("repro_s_total", labels=("k",)).labels(k="x").inc()
        registry.histogram("repro_s_us", buckets=(10,)).observe(1)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["repro_s_total"]["series"]["k=x"] == 1.0
