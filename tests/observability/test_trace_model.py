"""Span/trace model: virtual-time identity, sampling, the bounded ring."""

import pytest

from repro.core.exceptions import ReproError
from repro.observability import (
    ObservabilityConfig,
    Span,
    Trace,
    TraceStore,
    batch_trace_id,
    sampled,
    trace_id_for,
)


class TestIds:
    def test_trace_ids_are_deterministic(self):
        assert trace_id_for(0) == "req-00000000"
        assert trace_id_for(42) == "req-00000042"
        assert batch_trace_id(7) == "batch-00000007"


class TestSampling:
    def test_rate_bounds(self):
        assert all(sampled(i, 1.0) for i in range(100))
        assert not any(sampled(i, 0.0) for i in range(100))

    def test_deterministic_across_calls(self):
        first = [sampled(i, 0.5) for i in range(1000)]
        second = [sampled(i, 0.5) for i in range(1000)]
        assert first == second

    def test_rate_roughly_respected(self):
        hits = sum(sampled(i, 0.25) for i in range(4000))
        assert 800 < hits < 1200

    def test_monotone_in_rate(self):
        # A request admitted at a low rate stays admitted at any higher rate.
        for index in range(200):
            if sampled(index, 0.2):
                assert sampled(index, 0.8)


class TestTrace:
    def test_span_tree_and_children(self):
        trace = Trace("req-00000000")
        root = trace.span("request", start_us=0.0, end_us=10.0, index=0)
        trace.span("late", start_us=5.0, end_us=9.0, parent=root)
        trace.span("early", start_us=1.0, end_us=4.0, parent=root)
        assert trace.root is root
        names = [span.name for span in trace.children_of(root)]
        assert names == ["early", "late"]  # sorted by start_us

    def test_point_span_and_none_attributes_dropped(self):
        trace = Trace("t")
        span = trace.span("admission", start_us=3.0, verdict="admit", gone=None)
        assert span.start_us == span.end_us == 3.0
        assert span.attributes == {"verdict": "admit"}

    def test_annotations_excluded_from_identity(self):
        first = Trace("t")
        first.span("request", start_us=0.0, end_us=1.0, index=0)
        second = Trace("t")
        second.span("request", start_us=0.0, end_us=1.0, index=0)
        second.annotate(http_wall_us=123.4)
        assert first.identity() == second.identity()
        assert second.root.annotations == {"http_wall_us": 123.4}

    def test_attributes_part_of_identity(self):
        first = Trace("t")
        first.span("request", start_us=0.0, end_us=1.0, index=0)
        second = Trace("t")
        second.span("request", start_us=0.0, end_us=1.0, index=1)
        assert first.identity() != second.identity()

    def test_dict_round_trip(self):
        trace = Trace("req-00000009")
        root = trace.span("request", start_us=0.0, end_us=2.0, status="ok")
        trace.span("queue", start_us=0.0, end_us=1.0, parent=root,
                   annotations={"wall_us": 5.0})
        rebuilt = Trace.from_dict(trace.to_dict())
        assert rebuilt.identity() == trace.identity()
        assert rebuilt.spans[1].annotations == {"wall_us": 5.0}

    def test_summary_carries_root_fields(self):
        trace = Trace("req-00000001")
        trace.span("request", start_us=10.0, end_us=30.0, status="served_hardware")
        summary = trace.summary()
        assert summary["trace_id"] == "req-00000001"
        assert summary["name"] == "request"
        assert summary["duration_us"] == 20.0
        assert summary["status"] == "served_hardware"


class TestTraceStore:
    def test_ring_evicts_oldest(self):
        store = TraceStore(capacity=2)
        for index in range(3):
            store.add(Trace(trace_id_for(index)))
        assert len(store) == 2
        assert store.get("req-00000000") is None
        assert store.get("req-00000002") is not None

    def test_recent_is_newest_first(self):
        store = TraceStore(capacity=8)
        for index in range(4):
            store.add(Trace(trace_id_for(index)))
        ids = [trace.trace_id for trace in store.recent(limit=2)]
        assert ids == ["req-00000003", "req-00000002"]

    def test_annotate_by_id(self):
        store = TraceStore()
        trace = Trace("t")
        trace.span("request", start_us=0.0, end_us=1.0)
        store.add(trace)
        assert store.annotate("t", wall_us=9.0)
        assert trace.root.annotations == {"wall_us": 9.0}
        assert not store.annotate("missing", wall_us=1.0)

    def test_capacity_validated(self):
        with pytest.raises(ReproError):
            TraceStore(capacity=0)


class TestConfig:
    def test_defaults(self):
        config = ObservabilityConfig()
        assert config.enabled
        assert config.trace_sample_rate == 1.0
        assert config.trace_ring == 256

    def test_validation(self):
        with pytest.raises(ReproError):
            ObservabilityConfig(trace_sample_rate=1.5)
        with pytest.raises(ReproError):
            ObservabilityConfig(trace_ring=0)

    def test_from_payload_filters_unknown_keys(self):
        config = ObservabilityConfig.from_payload(
            {"enabled": False, "trace_sample_rate": 0.5, "future_knob": 1}
        )
        assert not config.enabled
        assert config.trace_sample_rate == 0.5
