"""Cross-model consistency: reference engine vs hardware model vs software model.

The paper validates its design by checking that the Matlab (floating point),
VHDL (fixed point hardware) and C (fixed point software) executions deliver the
same retrieval results.  These tests replay that validation over seeded random
case bases of several sizes (experiment E5's correctness half).
"""

import pytest

from repro.analysis import decision_agreement, max_absolute_error
from repro.core import RetrievalEngine
from repro.hardware import HardwareConfig, HardwareRetrievalUnit
from repro.software import SoftwareRetrievalUnit
from repro.tools import CaseBaseGenerator, GeneratorSpec


SIZES = [
    GeneratorSpec(type_count=2, implementations_per_type=3,
                  attributes_per_implementation=4, attribute_type_count=6),
    GeneratorSpec(type_count=5, implementations_per_type=6,
                  attributes_per_implementation=6, attribute_type_count=8),
    GeneratorSpec(type_count=15, implementations_per_type=10,
                  attributes_per_implementation=10, attribute_type_count=10),
]


@pytest.mark.parametrize("spec", SIZES, ids=["small", "medium", "table3"])
def test_three_executions_agree_on_the_decision(spec):
    generator = CaseBaseGenerator(spec, seed=11)
    case_base = generator.case_base()
    engine = RetrievalEngine(case_base)
    hardware = HardwareRetrievalUnit(case_base)
    software = SoftwareRetrievalUnit(case_base)

    reference_ids, hardware_ids, software_ids = [], [], []
    reference_sims, hardware_sims = [], []
    for salt in range(10):
        request = generator.request(salt=salt,
                                    attribute_count=min(6, spec.attributes_per_implementation))
        ref = engine.retrieve_best(request)
        hw = hardware.run(request)
        sw = software.run(request)
        reference_ids.append(ref.best_id)
        hardware_ids.append(hw.best_id)
        software_ids.append(sw.best_id)
        reference_sims.append(ref.best_similarity)
        hardware_sims.append(hw.best_similarity)
        assert hw.best_similarity_raw == sw.best_similarity_raw

    # Fixed point vs floating point: identical decisions, tiny similarity error.
    assert decision_agreement(reference_ids, hardware_ids) == 1.0
    assert decision_agreement(hardware_ids, software_ids) == 1.0
    assert max_absolute_error(reference_sims, hardware_sims) < 0.02


def test_n_best_ranking_agrees_between_reference_and_hardware():
    generator = CaseBaseGenerator(SIZES[1], seed=23)
    case_base = generator.case_base()
    engine = RetrievalEngine(case_base)
    unit = HardwareRetrievalUnit(case_base, config=HardwareConfig(n_best=4))
    for salt in range(8):
        request = generator.request(salt=salt, attribute_count=5)
        reference = engine.retrieve_n_best(request, 4).ids()
        hardware = unit.run(request).ranked_ids()
        # Ties may be ordered differently after quantisation; compare sets and
        # the winner, which is the decision the allocation manager acts on.
        assert hardware[0] == reference[0]
        assert set(hardware) <= set(engine.retrieve_n_best(request, 10).ids())


def test_speedup_and_compaction_shape_across_sizes():
    """HW/SW speedup stays in the paper's ballpark and the compacted variant
    gains at least a factor of two once the case base is realistically sized."""
    speedups = []
    compaction_gains = []
    for spec in SIZES[1:]:
        generator = CaseBaseGenerator(spec, seed=5)
        case_base = generator.case_base()
        hardware = HardwareRetrievalUnit(case_base)
        compact = HardwareRetrievalUnit(
            case_base,
            config=HardwareConfig(wide_attribute_fetch=True, pipelined_datapath=True,
                                  cache_reciprocals=True),
        )
        software = SoftwareRetrievalUnit(case_base)
        for salt in range(4):
            request = generator.request(salt=salt, attribute_count=spec.attributes_per_implementation)
            hw_cycles = hardware.run(request).cycles
            speedups.append(software.run(request).cycles / hw_cycles)
            compaction_gains.append(hw_cycles / compact.run(request).cycles)
    assert all(6.0 <= speedup <= 13.0 for speedup in speedups)
    assert all(gain >= 1.8 for gain in compaction_gains)
    assert sum(compaction_gains) / len(compaction_gains) >= 2.0
