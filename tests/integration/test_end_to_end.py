"""End-to-end integration tests: application request to platform placement."""

import pytest

from repro.allocation import AllocationStatus, ApplicationPolicy
from repro.api import ApplicationAPI
from repro.apps import (
    TYPE_FIR_EQUALIZER,
    TYPE_VIDEO_DECODER,
    build_scenario,
)
from repro.core import CBRCycle, OutcomeRecord, ExecutionTarget, RetrievalEngine
from repro.hardware import HardwareConfig


class TestFullStackAllocation:
    def test_audio_request_flows_from_api_to_device(self):
        scenario = build_scenario()
        api = scenario.application_api
        handle = api.call_function(
            "mp3-player",
            TYPE_FIR_EQUALIZER,
            {"bitwidth": 16, "output_mode": "stereo", "sampling_rate": 40},
        )
        decision = handle.decision
        assert decision.succeeded
        assert decision.device_name in {"dsp0", "fpga0", "fpga1", "cpu0"}
        snapshot = scenario.hw_layer_api.snapshot()
        assert snapshot.devices[decision.device_name].task_count == 1
        api.release(handle)
        assert scenario.hw_layer_api.snapshot().devices[decision.device_name].task_count == 0

    def test_video_decoder_prefers_fpga_then_degrades_under_load(self):
        scenario = build_scenario(fpga_count=1)
        api = scenario.application_api
        constraints = {"bitwidth": 16, "frame_rate": 30, "resolution_lines": 576,
                       "response_deadline_ms": 33}
        first = api.call_function("video-player", TYPE_VIDEO_DECODER, constraints)
        assert first.decision.succeeded
        assert first.decision.implementation.target is ExecutionTarget.FPGA
        # Saturate the FPGA with more decoders; later calls fall back to DSP/CPU
        # variants (alternative allocations) instead of failing outright.
        outcomes = [api.call_function("video-player", TYPE_VIDEO_DECODER,
                                      {**constraints, "frame_rate": 30 - i})
                    for i in range(1, 6)]
        statuses = {handle.decision.status for handle in outcomes}
        assert all(handle.decision.succeeded for handle in outcomes)
        assert AllocationStatus.ALLOCATED_ALTERNATIVE in statuses or (
            AllocationStatus.ALLOCATED_AFTER_PREEMPTION in statuses
        )

    def test_hardware_backend_end_to_end(self):
        scenario = build_scenario(
            retrieval_backend="hardware",
            hardware_config=HardwareConfig(n_best=3, clock_mhz=66.0),
        )
        handle = scenario.application_api.call_function(
            "mp3-player",
            TYPE_FIR_EQUALIZER,
            {"bitwidth": 16, "output_mode": "stereo", "sampling_rate": 40},
        )
        assert handle.decision.succeeded
        assert handle.decision.retrieval_cycles > 0

    def test_learning_cycle_feeds_back_into_allocation(self):
        """Retain a measured high-quality variant, then see allocation pick it up."""
        scenario = build_scenario()
        case_base = scenario.case_base
        engine = RetrievalEngine(case_base)
        cycle = CBRCycle(engine)
        request = scenario.application_api.build_request(
            "mp3-player", TYPE_FIR_EQUALIZER,
            {"bitwidth": 16, "output_mode": "surround", "sampling_rate": 44},
        )
        report = cycle.solve(request)
        cycle.feedback(
            report,
            OutcomeRecord(TYPE_FIR_EQUALIZER, report.reused.implementation_id,
                          {1: 24, 3: 2, 4: 48}),
            retain_target=ExecutionTarget.DSP,
        )
        # The learned case is now part of the shared case base used by the manager.
        learned_ids = set(case_base.get_type(TYPE_FIR_EQUALIZER).implementations)
        assert len(learned_ids) == 4
        handle = scenario.application_api.call_function(
            "mp3-player", TYPE_FIR_EQUALIZER,
            {"bitwidth": 24, "output_mode": "surround", "sampling_rate": 48},
        )
        assert handle.decision.succeeded
        assert handle.decision.implementation.implementation_id in learned_ids

    def test_strict_policy_rejects_degraded_offer(self):
        scenario = build_scenario(fpga_count=1)
        api = scenario.application_api
        api.register_application(
            "strict-app", ApplicationPolicy(minimum_similarity=0.999, max_relaxations=0)
        )
        handle = api.call_function(
            "strict-app", TYPE_FIR_EQUALIZER,
            {"bitwidth": 16, "output_mode": "surround", "sampling_rate": 8},
        )
        assert handle.decision.status is AllocationStatus.REJECTED_BY_APPLICATION
