"""Daemon soak: heavy traffic over real sockets, bit-identical offline replay.

The tentpole's acceptance gate.  Several keep-alive HTTP client threads
drive the heavy-traffic workload's request mix through a live ``repro
serve`` daemon (single-engine and cluster modes, with and without
``/learn`` delta ingestion), the daemon's capture is fetched, and the
offline :func:`repro.serving.replay_capture` re-serving must reproduce
every response **bit-identically** -- same rankings, same similarity
doubles, same admission decisions -- while the responses the clients saw
on the wire match the capture entry for entry.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import schemas
from repro.serving import DaemonThread, ServingSpec, replay_capture, trace_from_workloads

#: Envelope keys added on top of the wire record in single-request responses.
ENVELOPE_KEYS = {"kind", "schema_version"}


def _workload_request_wires(count):
    """The first ``count`` heavy-traffic requests in wire form."""
    trace = trace_from_workloads(
        ("heavy-traffic",), duration_us=200_000.0, seed=2004
    )
    wires = [schemas.request_to_wire(entry.request) for entry in trace]
    assert len(wires) >= count, "heavy-traffic trace too short for the soak"
    return wires[:count]


LEARN_EVENTS = [
    {
        "op": "add_implementation",
        "type_id": 1,
        "implementation": {
            "implementation_id": 7000 + offset,
            "target": "gpp",
            "name": f"soak-learned-{offset}",
            "attributes": {"1": 16, "3": 1, "4": 40},
        },
    }
    for offset in range(3)
]


class _SoakClient(threading.Thread):
    """One keep-alive connection replaying a slice of the request mix."""

    def __init__(self, host, port, wires, *, batch_every=4):
        super().__init__()
        self.host, self.port = host, port
        self.wires = wires
        self.batch_every = batch_every
        self.responses = []  # (wire record as the client saw it)
        self.error = None

    def run(self):
        try:
            connection = http.client.HTTPConnection(self.host, self.port, timeout=60)
            cursor = 0
            while cursor < len(self.wires):
                if self.batch_every and (cursor // self.batch_every) % 2 == 1:
                    chunk = self.wires[cursor:cursor + self.batch_every]
                    status, body = self._post(
                        connection, "/retrieve", {"requests": chunk}
                    )
                    if status == 503 and body.get("error") == "reconfiguring":
                        time.sleep(0.002)
                        continue
                    assert status == 200, body
                    self.responses.extend(body["results"])
                    cursor += len(chunk)
                else:
                    status, body = self._post(
                        connection, "/retrieve", self.wires[cursor]
                    )
                    if status == 503 and body.get("error") == "reconfiguring":
                        time.sleep(0.002)
                        continue
                    assert "index" in body, body
                    self.responses.append(
                        {k: v for k, v in body.items() if k not in ENVELOPE_KEYS}
                    )
                    cursor += 1
            connection.close()
        except BaseException as exc:  # surfaced by the main thread
            self.error = exc

    @staticmethod
    def _post(connection, path, payload):
        connection.request(
            "POST", path, body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))


def _learn_poster(host, port, stop_event, outcomes):
    connection = http.client.HTTPConnection(host, port, timeout=60)
    for event in LEARN_EVENTS:
        if stop_event.is_set():
            break
        status, body = _SoakClient._post(
            connection, "/learn", {"events": [event]}
        )
        outcomes.append((status, body))
        time.sleep(0.01)
    connection.close()


def _fetch_capture(host, port):
    connection = http.client.HTTPConnection(host, port, timeout=60)
    connection.request("GET", "/capture")
    response = connection.getresponse()
    document = json.loads(response.read().decode("utf-8"))
    connection.close()
    assert response.status == 200
    return document


@pytest.mark.parametrize("cluster", [False, True], ids=["single", "cluster"])
@pytest.mark.parametrize("learn", [False, True], ids=["plain", "learn"])
def test_soak_capture_replays_bit_identically(cluster, learn):
    spec = ServingSpec(
        workloads=("heavy-traffic",),
        cluster=cluster,
        devices=2,
        software_workers=1,
        max_batch=8,
        max_wait_us=2_000.0,
        n_best=3,
        learn=learn,
        novelty_threshold=0.99,
    )
    wires = _workload_request_wires(48)
    with DaemonThread(spec) as handle:
        clients = [
            _SoakClient(handle.host, handle.port, wires[i::3]) for i in range(3)
        ]
        stop_event = threading.Event()
        learn_outcomes = []
        poster = None
        if learn:
            poster = threading.Thread(
                target=_learn_poster,
                args=(handle.host, handle.port, stop_event, learn_outcomes),
            )
            poster.start()
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=120)
        stop_event.set()
        if poster is not None:
            poster.join(timeout=60)
        for client in clients:
            assert client.error is None, client.error
            assert not client.is_alive(), "soak client hung"
        capture = _fetch_capture(handle.host, handle.port)

    assert capture["kind"] == "serving-capture"
    responses = capture["responses"]
    assert len(responses) == len(wires)

    # 1. What the clients saw on the wire IS the capture, entry for entry.
    seen = {}
    for client in clients:
        for record in client.responses:
            seen[record["index"]] = record
    assert len(seen) == len(responses)
    for record in responses:
        assert seen[record["index"]] == record

    # 2. Offline replay of the capture is bit-identical to the live daemon:
    #    rankings, similarity doubles and admission decisions all match.
    report = replay_capture(capture)
    replayed = [
        json.loads(json.dumps(record.to_dict())) for record in report.served
    ]
    assert replayed == responses

    if learn:
        # The /learn stream was accepted (applied now or queued to a batch
        # boundary) and recorded into the capture for replay.
        assert learn_outcomes, "no /learn call completed"
        assert {status for status, _ in learn_outcomes} <= {200, 202}
        assert capture["learn_events"]
