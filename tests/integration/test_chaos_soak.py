"""Seeded chaos soak: every injected fault class ends in an explicit outcome.

The PR 7 acceptance gate.  A seeded :class:`FaultPlan` mixing every fault
family runs against the cluster engine and the live daemon, and the suite
proves the only possible endings are retry-success, graceful degradation,
requeue, or an explicit error -- never a silent wrong answer (rankings stay
bit-identical with a healthy replay on the commonly-served set) and never a
corrupted case base (``validate()`` passes after the storm).
"""

import http.client
import json
import time

import pytest

from repro.platform import DeviceFleet
from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.serving import (
    ClusterServingEngine,
    DaemonThread,
    ServingConfig,
    ServingEngine,
    ServingSpec,
    ServingStatus,
    replay_capture,
    synthetic_trace,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec

PAPER_WIRE = {"type_id": 1, "constraints": {"1": 16, "3": 1, "4": 40}}

#: One fault from every virtual-time family, seeded, overlapping mid-trace.
#: The fleet-wide crash window empties the routable tier so the requeue
#: rung fires; the hang on fpga1 never lifts, so quarantine and requeue
#: exhaustion are both exercised in the same run.
CHAOS_FAULTS = (
    FaultSpec(kind="worker_crash", target="*", at_us=1_000.0,
              duration_us=1_500.0),
    FaultSpec(kind="worker_hang", target="fpga1", at_us=5_000.0),
    FaultSpec(kind="slow_device", target="*", at_us=3_000.0,
              duration_us=1_500.0, factor=2.5),
    FaultSpec(kind="stream_corrupt", target="fpga0", at_us=500.0,
              duration_us=400.0),
    FaultSpec(kind="stream_truncate", target="fpga1", at_us=800.0,
              duration_us=300.0, factor=0.5),
)


@pytest.fixture
def case_base():
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=6,
            implementations_per_type=8,
            attributes_per_implementation=8,
            attribute_type_count=10,
        ),
        seed=9,
    ).case_base()


class TestClusterChaosSoak:
    def _serve_with_faults(self, case_base, trace, config, *, learn=False):
        fleet = DeviceFleet.build(
            case_base, hardware_devices=2, software_devices=0
        )
        engine = ClusterServingEngine(
            case_base, fleet, config=config,
            fault_injector=FaultInjector(FaultPlan(seed=2004, faults=CHAOS_FAULTS)),
        )
        return engine.serve(trace), engine

    def test_every_outcome_is_explicit_and_rankings_stay_exact(self, case_base):
        trace = synthetic_trace(
            case_base, 100, mean_interarrival_us=120.0, seed=11
        )
        config = ServingConfig(max_batch=4)
        report, engine = self._serve_with_faults(case_base, trace, config)

        # 1. No silent outcome: one terminal record per request, enum
        #    status, and a reason on everything unserved.
        assert len(report.served) == len(trace)
        for record in report.served:
            assert isinstance(record.status, ServingStatus)
            if not record.status.served:
                assert record.reason
        resilience = report.metrics["cluster"]["resilience"]
        assert resilience["requeues"] > 0  # the requeue rung fired

        # 2. No silent wrong answer: the commonly-served set is ranking-
        #    bit-identical with a healthy single-device replay.
        healthy = ServingEngine(case_base, config=config).serve(trace)
        matched = 0
        for mine, theirs in zip(report.rankings(), healthy.rankings()):
            if mine is not None:
                assert mine == theirs
                matched += 1
        assert matched > 0

        # 3. No corrupted case base.
        case_base.validate()

    def test_chaos_run_is_seed_deterministic(self, case_base):
        """The same plan replays to the identical decision surface."""
        trace = synthetic_trace(case_base, 60, mean_interarrival_us=120.0, seed=4)
        config = ServingConfig(max_batch=4, deadline_us=6_000.0)

        def surface():
            report, _ = self._serve_with_faults(case_base, trace, config)
            return [
                (record.status.value, record.wait_us, record.service_us,
                 record.cycles, record.reason)
                for record in report.served
            ]

        assert surface() == surface()

    def test_chaos_with_learning_never_corrupts_the_case_base(self, case_base):
        trace = synthetic_trace(case_base, 80, mean_interarrival_us=120.0, seed=6)
        config = ServingConfig(max_batch=4, learn=True, novelty_threshold=0.99)
        before = case_base.revision
        report, engine = self._serve_with_faults(
            case_base, trace, config, learn=True
        )
        case_base.validate()
        assert len(report.served) == len(trace)
        for record in report.served:
            assert isinstance(record.status, ServingStatus)
        # Learning progressed (or explicitly did not); either way the
        # metrics account for it rather than hiding it.
        assert report.metrics["learning"]["revisions"] == (
            case_base.revision - before
        )
        # Sync retries under stream faults are surfaced, not swallowed.
        resilience = report.metrics["cluster"]["resilience"]
        assert resilience["sync_retries"] >= 0
        assert "failed_syncs" in resilience


class TestDaemonConnectionChaos:
    def test_clients_retry_through_dropped_and_stalled_connections(self):
        plan = FaultPlan(seed=7, faults=(
            FaultSpec(kind="conn_drop", every=5),
            FaultSpec(kind="conn_stall", every=7, duration_us=20_000.0),
        ))
        spec = ServingSpec(
            random=1, max_batch=4, max_wait_us=20_000.0, n_best=3,
            fault_plan=plan,
        )
        served = []
        with DaemonThread(spec) as handle:
            for _ in range(20):
                # A fresh connection per request maximises injected-fault
                # exposure; the retry loop is the client-side contract.
                for attempt in range(5):
                    try:
                        connection = http.client.HTTPConnection(
                            handle.host, handle.port, timeout=30
                        )
                        connection.request(
                            "POST", "/retrieve", body=json.dumps(PAPER_WIRE),
                            headers={"Content-Type": "application/json"},
                        )
                        response = connection.getresponse()
                        body = json.loads(response.read().decode("utf-8"))
                        connection.close()
                        assert response.status == 200
                        served.append(body)
                        break
                    except (ConnectionError, http.client.HTTPException, OSError):
                        connection.close()
                        time.sleep(0.005)
                else:
                    pytest.fail("request never survived the connection chaos")
            metrics_connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            metrics = None
            for attempt in range(5):
                try:
                    metrics_connection.request("GET", "/metrics?format=json")
                    response = metrics_connection.getresponse()
                    metrics = json.loads(response.read().decode("utf-8"))
                    break
                except (ConnectionError, http.client.HTTPException, OSError):
                    metrics_connection.close()
                    metrics_connection = http.client.HTTPConnection(
                        handle.host, handle.port, timeout=30
                    )
                    time.sleep(0.005)
            metrics_connection.close()
            capture = None
            for attempt in range(5):
                try:
                    connection = http.client.HTTPConnection(
                        handle.host, handle.port, timeout=30
                    )
                    connection.request("GET", "/capture")
                    response = connection.getresponse()
                    capture = json.loads(response.read().decode("utf-8"))
                    connection.close()
                    break
                except (ConnectionError, http.client.HTTPException, OSError):
                    connection.close()
                    time.sleep(0.005)

        assert len(served) == 20
        assert metrics is not None and capture is not None
        # Transport faults were injected and counted -- and perturbed the
        # transport only: the capture still replays bit-identically.
        assert metrics["daemon"]["resilience"]["dropped_connections"] > 0
        report = replay_capture(capture)
        replayed = [
            json.loads(json.dumps(record.to_dict())) for record in report.served
        ]
        assert replayed == capture["responses"]

    def test_learn_transient_faults_retry_or_fail_explicitly(self):
        # every=2 injected failures < the policy's 3 attempts: retry-success.
        retry_plan = FaultPlan(seed=1, faults=(
            FaultSpec(kind="learn_transient", every=2),
        ))
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0,
                           fault_plan=retry_plan)
        event = {
            "op": "add_implementation",
            "type_id": 1,
            "implementation": {
                "implementation_id": 9100,
                "target": "gpp",
                "name": "chaos-learned",
                "attributes": {"1": 16, "3": 1, "4": 40},
            },
        }
        with DaemonThread(spec) as handle:
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            connection.request(
                "POST", "/learn", body=json.dumps({"events": [event]}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 200 and body["applied"] == 1
            connection.request("GET", "/metrics?format=json")
            metrics = json.loads(
                connection.getresponse().read().decode("utf-8")
            )
            assert metrics["daemon"]["resilience"]["learn_retries"] > 0
            connection.close()

        # every=3 failures == the attempt budget: explicit 409, not applied.
        exhausted_plan = FaultPlan(seed=1, faults=(
            FaultSpec(kind="learn_transient", every=3),
        ))
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0,
                           fault_plan=exhausted_plan)
        with DaemonThread(spec) as handle:
            before = handle.daemon.case_base.count_implementations()
            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            connection.request(
                "POST", "/learn", body=json.dumps({"events": [event]}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 409
            assert body["error"] == "learn-unavailable"
            assert handle.daemon.case_base.count_implementations() == before
            connection.close()
