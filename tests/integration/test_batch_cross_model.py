"""Batch retrieval vs the memmap-backed hardware model (experiment E5, batched).

The vectorized software backend and the cycle-accurate hardware unit both
execute the same linear-search algorithm from different encodings of the same
case base (NumPy attribute matrices vs CB-MEM memory words).  These tests
extend the cross-model validation to the batch path: on randomized case bases
the three execution models must agree on every decision, and the engine
backends must agree bit for bit.
"""

import pytest

from repro.analysis import decision_agreement
from repro.core import RetrievalEngine
from repro.hardware import HardwareConfig, HardwareRetrievalUnit
from repro.software import SoftwareRetrievalUnit
from repro.tools import CaseBaseGenerator, GeneratorSpec


SPECS = [
    GeneratorSpec(type_count=3, implementations_per_type=5,
                  attributes_per_implementation=5, attribute_type_count=8),
    GeneratorSpec(type_count=8, implementations_per_type=8,
                  attributes_per_implementation=8, attribute_type_count=10),
]


@pytest.mark.parametrize("spec", SPECS, ids=["small", "medium"])
@pytest.mark.parametrize("seed", [3, 29])
def test_vectorized_batch_agrees_with_hardware_and_software(spec, seed):
    generator = CaseBaseGenerator(spec, seed=seed)
    case_base = generator.case_base()
    vectorized = RetrievalEngine(case_base, backend="vectorized")
    hardware = HardwareRetrievalUnit(case_base)
    software = SoftwareRetrievalUnit(case_base)

    requests = [
        generator.request(salt=salt,
                          attribute_count=min(5, spec.attributes_per_implementation))
        for salt in range(12)
    ]
    batch = vectorized.retrieve_batch(requests)

    vector_ids = [result.best_id for result in batch]
    hardware_ids = [hardware.run(request).best_id for request in requests]
    software_ids = [software.run(request).best_id for request in requests]

    assert decision_agreement(vector_ids, hardware_ids) == 1.0
    assert decision_agreement(hardware_ids, software_ids) == 1.0


@pytest.mark.parametrize("seed", [7, 19])
def test_vectorized_n_best_matches_hardware_candidate_set(seed):
    generator = CaseBaseGenerator(SPECS[1], seed=seed)
    case_base = generator.case_base()
    vectorized = RetrievalEngine(case_base, backend="vectorized")
    unit = HardwareRetrievalUnit(case_base, config=HardwareConfig(n_best=4))

    requests = [generator.request(salt=salt, attribute_count=6) for salt in range(8)]
    batch = vectorized.retrieve_batch(requests, n=4)
    for request, result in zip(requests, batch):
        hardware_ids = unit.run(request).ranked_ids()
        assert hardware_ids[0] == result.ids()[0]
        assert set(hardware_ids) == set(result.ids())


def test_batch_over_naive_and_vectorized_is_the_same_oracle():
    generator = CaseBaseGenerator(SPECS[0], seed=13)
    case_base = generator.case_base()
    naive = RetrievalEngine(case_base, backend="naive")
    vectorized = RetrievalEngine(case_base, backend="vectorized")
    requests = [generator.request(salt=salt, attribute_count=4) for salt in range(20)]
    for reference, candidate in zip(
        naive.retrieve_batch(requests, n=3), vectorized.retrieve_batch(requests, n=3)
    ):
        assert reference.ids() == candidate.ids()
        assert [entry.similarity for entry in reference] == [
            entry.similarity for entry in candidate
        ]
