"""Shared fixtures of the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    CaseBase,
    FunctionRequest,
    RetrievalEngine,
    paper_case_base,
    paper_request,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


@pytest.fixture
def paper_cb() -> CaseBase:
    """The worked example case base of the paper (Fig. 3)."""
    return paper_case_base()


@pytest.fixture
def paper_req() -> FunctionRequest:
    """The FIR-equalizer request of the paper (Fig. 3)."""
    return paper_request()


@pytest.fixture
def paper_engine(paper_cb: CaseBase) -> RetrievalEngine:
    """Reference retrieval engine over the paper's case base."""
    return RetrievalEngine(paper_cb)


@pytest.fixture
def small_generator() -> CaseBaseGenerator:
    """A small random case-base generator for fast cross-model tests."""
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=4,
            implementations_per_type=5,
            attributes_per_implementation=6,
            attribute_type_count=8,
            value_range=(0, 500),
        ),
        seed=42,
    )


@pytest.fixture
def small_case_base(small_generator: CaseBaseGenerator) -> CaseBase:
    """A generated case base matching :func:`small_generator`."""
    return small_generator.case_base()
