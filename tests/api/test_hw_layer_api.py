"""Tests for the HW-Layer API facade."""

import pytest

from repro.api import HwLayerAPI
from repro.core import PlatformError, paper_case_base
from repro.platform import (
    ConfigurationRepository,
    LocalRuntimeController,
    SystemResourceState,
    host_cpu,
    virtex2_3000_fpga,
)


@pytest.fixture
def hw_api() -> HwLayerAPI:
    system = SystemResourceState(
        [
            LocalRuntimeController(virtex2_3000_fpga("fpga0")),
            LocalRuntimeController(host_cpu("cpu0")),
        ],
        power_budget_mw=4000.0,
    )
    repository = ConfigurationRepository.from_case_base(paper_case_base())
    for controller in system.controllers():
        controller.repository = repository
    return HwLayerAPI(system, repository)


class TestResourceQueries:
    def test_device_names_and_snapshot(self, hw_api):
        assert hw_api.device_names() == ["cpu0", "fpga0"]
        snapshot = hw_api.snapshot()
        assert set(snapshot.devices) == {"cpu0", "fpga0"}
        assert hw_api.power_mw() == pytest.approx(snapshot.total_power_mw)

    def test_utilization_changes_after_reconfigure(self, hw_api):
        implementation = paper_case_base().get_implementation(1, 1)
        before = hw_api.utilization("fpga0")
        report = hw_api.reconfigure("fpga0", 1, implementation)
        assert hw_api.utilization("fpga0") > before
        assert report.reconfiguration_time_us > 0
        hw_api.remove("fpga0", report.handle)
        assert hw_api.utilization("fpga0") == before


class TestTransfers:
    def test_transfer_between_known_endpoints(self, hw_api):
        record = hw_api.transfer("cpu0", "fpga0", 2048)
        assert record.duration_us == pytest.approx(2048 / 100.0)
        assert hw_api.total_transfer_bytes() == 2048

    def test_flash_and_host_are_valid_endpoints(self, hw_api):
        hw_api.transfer("flash", "fpga0", 100)
        hw_api.transfer("host", "cpu0", 100)
        assert hw_api.total_transfer_bytes() == 200

    def test_unknown_endpoint_rejected(self, hw_api):
        with pytest.raises(PlatformError):
            hw_api.transfer("cpu0", "mars", 1)

    def test_negative_payload_rejected(self, hw_api):
        with pytest.raises(PlatformError):
            hw_api.transfer("cpu0", "fpga0", -1)

    def test_invalid_bandwidth_rejected(self, hw_api):
        with pytest.raises(PlatformError):
            HwLayerAPI(hw_api.system, interconnect_bandwidth_mb_s=0)
