"""Tests for the Application-API facade."""

import pytest

from repro.allocation import AllocationManager, AllocationStatus, ApplicationPolicy
from repro.api import ApplicationAPI
from repro.core import AllocationError, RequestError, paper_case_base
from repro.platform import (
    LocalRuntimeController,
    SystemResourceState,
    audio_dsp,
    host_cpu,
    virtex2_3000_fpga,
)


@pytest.fixture
def api() -> ApplicationAPI:
    system = SystemResourceState(
        [
            LocalRuntimeController(virtex2_3000_fpga("fpga0")),
            LocalRuntimeController(host_cpu("cpu0")),
            LocalRuntimeController(audio_dsp("dsp0")),
        ]
    )
    manager = AllocationManager(paper_case_base(), system)
    application_api = ApplicationAPI(manager)
    application_api.register_application("audio-app", ApplicationPolicy(minimum_similarity=0.5))
    return application_api


class TestRegistration:
    def test_registered_applications_listed(self, api):
        api.register_application("video-app")
        assert api.applications() == ["audio-app", "video-app"]

    def test_empty_name_rejected(self, api):
        with pytest.raises(AllocationError):
            api.register_application("")

    def test_unregistered_application_cannot_call(self, api):
        with pytest.raises(AllocationError):
            api.call_function("ghost-app", 1, {"bitwidth": 16})


class TestRequestBuilding:
    def test_named_constraints_with_symbols(self, api):
        request = api.build_request(
            "audio-app", 1, {"bitwidth": 16, "output_mode": "stereo", "sampling_rate": 40}
        )
        assert request.values() == {1: 16, 3: 1, 4: 40}
        assert request.requester == "audio-app"

    def test_id_keyed_constraints(self, api):
        request = api.build_request("audio-app", 1, [(1, 16), (4, 40)])
        assert request.attribute_ids() == [1, 4]

    def test_weights_apply_to_named_constraints(self, api):
        request = api.build_request(
            "audio-app", 1, {"bitwidth": 16, "sampling_rate": 40}, weights={"sampling_rate": 3.0}
        )
        assert request.get(4).weight == pytest.approx(0.75)

    def test_missing_constraints_rejected(self, api):
        with pytest.raises(RequestError):
            api.build_request("audio-app", 1, None)


class TestCallReleaseTransfer:
    def test_successful_call_returns_usable_handle(self, api):
        handle = api.call_function(
            "audio-app", 1, {"bitwidth": 16, "output_mode": "stereo", "sampling_rate": 40}
        )
        assert handle.decision.succeeded
        assert handle.device_name == "dsp0"
        assert handle.platform_handle is not None
        assert api.handles("audio-app") == [handle]

    def test_transfer_accumulates_bytes(self, api):
        handle = api.call_function("audio-app", 1, {"bitwidth": 16, "sampling_rate": 40})
        api.transfer(handle, 1024)
        api.transfer(handle, 512)
        assert handle.bytes_transferred == 1536

    def test_transfer_on_failed_call_rejected(self, api):
        handle = api.call_function("audio-app", 99, [(1, 16)])
        assert handle.decision.status is AllocationStatus.REJECTED_UNKNOWN_TYPE
        with pytest.raises(AllocationError):
            api.transfer(handle, 10)

    def test_release_and_double_release(self, api):
        handle = api.call_function("audio-app", 1, {"bitwidth": 16, "sampling_rate": 40})
        api.release(handle)
        assert handle.released
        with pytest.raises(AllocationError):
            api.release(handle)
        with pytest.raises(AllocationError):
            api.transfer(handle, 10)

    def test_bypass_served_call_does_not_double_release(self, api):
        first = api.call_function("audio-app", 1, {"bitwidth": 16, "sampling_rate": 40})
        second = api.call_function("audio-app", 1, {"bitwidth": 16, "sampling_rate": 40})
        assert second.decision.used_bypass
        api.release(second)  # must not free the real placement
        api.release(first)
        assert api.manager.statistics.releases == 1
