"""Batch services of the Application-API facade."""

import pytest

from repro.allocation import AllocationManager, ApplicationPolicy
from repro.api import ApplicationAPI
from repro.core import AllocationError, RequestError, paper_case_base
from repro.platform import (
    LocalRuntimeController,
    SystemResourceState,
    audio_dsp,
    host_cpu,
    virtex2_3000_fpga,
)


@pytest.fixture
def api() -> ApplicationAPI:
    system = SystemResourceState(
        [
            LocalRuntimeController(virtex2_3000_fpga("fpga0")),
            LocalRuntimeController(host_cpu("cpu0")),
            LocalRuntimeController(audio_dsp("dsp0")),
        ]
    )
    manager = AllocationManager(
        paper_case_base(), system, retrieval_backend="vectorized"
    )
    application_api = ApplicationAPI(manager)
    application_api.register_application(
        "audio-app", ApplicationPolicy(minimum_similarity=0.5)
    )
    return application_api


PAPER_CONSTRAINTS = {"bitwidth": 16, "output_mode": "stereo", "sampling_rate": 40}


class TestRetrieveBatch:
    def test_ranks_candidates_without_allocating(self, api):
        results = api.retrieve_batch(
            "audio-app",
            [(1, PAPER_CONSTRAINTS), (1, [(1, 8), (4, 20)])],
            n=2,
        )
        assert len(results) == 2
        assert results[0].best_id == 2
        assert results[0].best_similarity == pytest.approx(0.964, abs=0.001)
        # Nothing was placed and no handles were issued.
        assert api.handles() == []
        assert api.manager.active_allocations() == {}

    def test_weights_entry_supported(self, api):
        (result,) = api.retrieve_batch(
            "audio-app",
            [(1, PAPER_CONSTRAINTS, {"sampling_rate": 3.0})],
            n=1,
        )
        assert result.best_id is not None

    def test_unregistered_application_rejected(self, api):
        with pytest.raises(AllocationError):
            api.retrieve_batch("ghost-app", [(1, PAPER_CONSTRAINTS)])

    def test_malformed_query_rejected(self, api):
        with pytest.raises(RequestError):
            api.retrieve_batch("audio-app", [{"type_id": 1}])
        with pytest.raises(RequestError):
            api.retrieve_batch("audio-app", [(1,)])

    def test_list_shaped_queries_accepted(self, api):
        """JSON deserialisation produces lists, not tuples."""
        import json

        queries = json.loads('[[1, {"bitwidth": 16, "sampling_rate": 40}]]')
        (result,) = api.retrieve_batch("audio-app", queries, n=1)
        assert result.best_id is not None

    def test_list_shaped_constraint_pairs_accepted(self, api):
        """Constraint pairs inside a JSON query are also lists."""
        import json

        queries = json.loads('[[1, [[1, 16], [4, 40, 2.0]]]]')
        (result,) = api.retrieve_batch("audio-app", queries, n=1)
        assert result.best_id is not None

    def test_weights_with_id_pairs_rejected_not_dropped(self, api):
        # Weights are name-keyed; with (id, value) pairs they cannot be
        # applied, so silently ignoring them would mis-rank candidates.
        with pytest.raises(RequestError):
            api.retrieve_batch(
                "audio-app", [(1, [(1, 16), (4, 40)], {"bitwidth": 2.0})]
            )


class TestCallFunctions:
    def test_batch_call_returns_one_handle_per_query(self, api):
        handles = api.call_functions(
            "audio-app",
            [(1, PAPER_CONSTRAINTS), (2, {"bitwidth": 16, "processing_mode": "fixed"})],
        )
        assert len(handles) == 2
        assert all(handle.decision.succeeded for handle in handles)
        assert handles[0].type_id == 1
        assert handles[1].type_id == 2
        assert len(api.handles("audio-app")) == 2

    def test_batch_and_sequential_calls_agree(self, api):
        batch = api.call_functions("audio-app", [(1, PAPER_CONSTRAINTS)])
        for handle in batch:
            api.release(handle)
        single = api.call_function("audio-app", 1, PAPER_CONSTRAINTS)
        assert batch[0].decision.similarity == single.decision.similarity
        assert (
            batch[0].decision.implementation.implementation_id
            == single.decision.implementation.implementation_id
        )

    def test_handles_survive_a_mid_batch_allocation_error(self):
        """If a later request raises during allocation, handles for the
        already-served requests stay registered so they can be released."""
        from repro.core import (
            BoundsTable,
            CaseBase,
            ExecutionTarget,
            Implementation,
            SchemaError,
        )
        from repro.platform import host_cpu

        bounds = BoundsTable()
        bounds.define(1, 0, 100)  # attribute 2 deliberately unregistered
        case_base = CaseBase(bounds=bounds)
        case_base.add_type(1).add(
            Implementation(1, ExecutionTarget.GPP, {1: 50, 2: 7})
        )
        manager = AllocationManager(
            case_base,
            SystemResourceState([LocalRuntimeController(host_cpu("cpu0"))]),
            retrieval_backend="vectorized",
        )
        api = ApplicationAPI(manager)
        api.register_application("app")
        with pytest.raises(SchemaError):
            api.call_functions("app", [(1, [(1, 50)]), (1, [(2, 5)])])
        (handle,) = api.handles("app")
        assert handle.decision.succeeded
        api.release(handle)
        assert manager.active_allocations() == {}

    def test_failed_queries_still_get_handles(self, api):
        handles = api.call_functions(
            "audio-app",
            [(1, PAPER_CONSTRAINTS), (1, [(1, 1_000_000)])],
        )
        assert handles[0].decision.succeeded
        assert not handles[1].decision.succeeded
