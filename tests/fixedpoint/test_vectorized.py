"""The vectorized Q-format helpers vs the scalar datapath operations.

Each array helper must agree element for element with the scalar component
model it mirrors; the cycle engines rely on that equivalence for their
bit-exactness guarantee.
"""

import numpy as np
import pytest

from repro.fixedpoint import (
    UQ0_16,
    divide_fraction_array,
    multiply_fraction_array,
    multiply_fractions_array,
    one_minus_array,
    prefix_maxima_count,
    saturating_add_array,
)
from repro.hardware import (
    AccumulatorUnit,
    DividerUnit,
    MultiplierUnit,
    SubtractorUnit,
)

RNG = np.random.default_rng(2004)
VALUES = RNG.integers(0, 0x10000, size=64)
FRACTIONS = RNG.integers(0, 0x10000, size=64)


def test_multiply_fraction_matches_multiplier_unit():
    unit = MultiplierUnit()
    expected = [unit.multiply_fraction(int(v), int(f)) for v, f in zip(VALUES, FRACTIONS)]
    assert multiply_fraction_array(VALUES, FRACTIONS).tolist() == expected


def test_multiply_fractions_matches_multiplier_unit():
    unit = MultiplierUnit()
    expected = [unit.multiply_fractions(int(v), int(f)) for v, f in zip(VALUES, FRACTIONS)]
    assert multiply_fractions_array(VALUES, FRACTIONS).tolist() == expected


def test_divide_fraction_matches_divider_unit():
    unit = DividerUnit()
    divisors = RNG.integers(1, 2000, size=VALUES.shape[0])
    expected = [unit.divide_fraction(int(v), int(d)) for v, d in zip(VALUES, divisors)]
    assert divide_fraction_array(VALUES, divisors).tolist() == expected


def test_one_minus_matches_subtractor_unit():
    unit = SubtractorUnit()
    expected = [unit.one_minus(int(f)) for f in FRACTIONS]
    assert one_minus_array(FRACTIONS).tolist() == expected


def test_saturating_add_matches_accumulator_unit():
    unit = AccumulatorUnit()
    accumulator = np.zeros(1, dtype=np.int64)
    for fraction in FRACTIONS:
        expected = unit.accumulate(int(fraction))
        accumulator = saturating_add_array(accumulator, int(fraction))
        assert int(accumulator[0]) == expected
    assert int(accumulator[0]) == UQ0_16.max_raw  # 64 random fractions saturate


@pytest.mark.parametrize(
    "values, expected",
    [
        ([5], 1),
        ([1, 2, 3], 3),
        ([3, 2, 1], 1),
        ([2, 2, 5, 5, 4], 2),
        ([0, 0, 0], 1),
    ],
)
def test_prefix_maxima_count_scalar_rows(values, expected):
    assert int(prefix_maxima_count(np.array(values))) == expected


def test_prefix_maxima_count_batched_rows_and_empty():
    matrix = np.array([[1, 2, 3], [3, 2, 1], [2, 2, 5]])
    assert prefix_maxima_count(matrix).tolist() == [3, 1, 2]
    assert prefix_maxima_count(np.empty((2, 0), dtype=np.int64)).tolist() == [0, 0]
    assert prefix_maxima_count(matrix.T, axis=0).tolist() == [3, 1, 2]
