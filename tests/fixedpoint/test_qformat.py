"""Unit tests for the Q-format fixed-point number formats."""

import pytest

from repro.core import FixedPointError
from repro.fixedpoint import (
    FixedPointValue,
    OverflowBehavior,
    QFormat,
    UQ0_16,
    UQ16_0,
    UQ16_16,
    quantization_error_bound,
    reciprocal_raw,
)


class TestQFormat:
    def test_standard_formats(self):
        assert UQ16_0.total_bits == 16 and UQ16_0.scale == 1
        assert UQ0_16.total_bits == 16 and UQ0_16.scale == 65536
        assert UQ16_16.total_bits == 32

    def test_names(self):
        assert UQ0_16.name() == "UQ0.16"
        assert QFormat(7, 8, signed=True).name() == "Q7.8"

    def test_ranges(self):
        assert UQ16_0.max_raw == 0xFFFF and UQ16_0.min_raw == 0
        assert UQ0_16.max_value == pytest.approx(1.0 - 1 / 65536)
        signed = QFormat(3, 4, signed=True)
        assert signed.min_raw == -128 and signed.max_raw == 127
        assert signed.min_value == -8.0

    def test_invalid_formats_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat(-1, 4)
        with pytest.raises(FixedPointError):
            QFormat(0, 0)

    def test_from_float_and_back(self):
        raw = UQ0_16.from_float(1.0 / 3.0)
        assert raw == round(65536 / 3)
        assert UQ0_16.to_float(raw) == pytest.approx(1 / 3, abs=UQ0_16.resolution)

    def test_saturation_and_wrap_and_raise(self):
        assert UQ16_0.from_float(70000) == 0xFFFF
        assert UQ16_0.from_float(-5) == 0
        assert UQ16_0.clamp_raw(0x10001, OverflowBehavior.WRAP) == 1
        with pytest.raises(FixedPointError):
            UQ16_0.clamp_raw(1 << 17, OverflowBehavior.RAISE)

    def test_quantize_error_is_bounded(self):
        for value in (0.1, 0.33333, 0.9999, 0.5):
            assert abs(UQ0_16.quantize(value) - value) <= quantization_error_bound(UQ0_16) + 1e-12

    def test_resolution(self):
        assert UQ0_16.resolution == pytest.approx(1 / 65536)
        assert quantization_error_bound(UQ0_16) == pytest.approx(0.5 / 65536)


class TestFixedPointValue:
    def test_out_of_range_raw_rejected(self):
        with pytest.raises(FixedPointError):
            FixedPointValue(1 << 16, UQ16_0)

    def test_absolute_difference(self):
        a = FixedPointValue(40, UQ16_0)
        b = FixedPointValue(44, UQ16_0)
        assert a.absolute_difference(b).raw == 4
        assert b.absolute_difference(a).raw == 4

    def test_format_mismatch_rejected(self):
        a = FixedPointValue(1, UQ16_0)
        b = FixedPointValue(1, UQ0_16)
        with pytest.raises(FixedPointError):
            a.absolute_difference(b)
        with pytest.raises(FixedPointError):
            a.add(b)
        with pytest.raises(FixedPointError):
            a.compare(b)

    def test_multiply_integer_by_fraction(self):
        distance = FixedPointValue(4, UQ16_0)
        reciprocal = FixedPointValue(reciprocal_raw(36), UQ0_16)
        penalty = distance.multiply(reciprocal, UQ0_16)
        assert penalty.value == pytest.approx(4 / 37, abs=4 * UQ0_16.resolution)

    def test_multiply_two_fractions(self):
        a = FixedPointValue.from_float(0.5, UQ0_16)
        b = FixedPointValue.from_float(1 / 3, UQ0_16)
        assert a.multiply(b, UQ0_16).value == pytest.approx(1 / 6, abs=2 * UQ0_16.resolution)

    def test_add_saturates(self):
        a = FixedPointValue.from_float(0.9, UQ0_16)
        b = FixedPointValue.from_float(0.3, UQ0_16)
        assert a.add(b).raw == UQ0_16.max_raw

    def test_compare(self):
        a = FixedPointValue(5, UQ16_0)
        b = FixedPointValue(9, UQ16_0)
        assert a.compare(b) == -1 and b.compare(a) == 1 and a.compare(a) == 0

    def test_float_conversion(self):
        assert float(FixedPointValue.from_float(0.25, UQ0_16)) == pytest.approx(0.25)


class TestReciprocal:
    def test_reciprocal_matches_expected_dmax_values(self):
        """The maxrange-1 constants of Fig. 4 for the Table 1 dmax values."""
        assert UQ0_16.to_float(reciprocal_raw(8)) == pytest.approx(1 / 9, abs=1e-4)
        assert UQ0_16.to_float(reciprocal_raw(2)) == pytest.approx(1 / 3, abs=1e-4)
        assert UQ0_16.to_float(reciprocal_raw(36)) == pytest.approx(1 / 37, abs=1e-4)

    def test_zero_dmax_gives_one(self):
        assert reciprocal_raw(0) == UQ0_16.max_raw

    def test_negative_dmax_rejected(self):
        with pytest.raises(FixedPointError):
            reciprocal_raw(-1)
