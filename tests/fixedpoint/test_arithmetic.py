"""Unit tests for the fixed-point similarity arithmetic (eq. 1 / eq. 2)."""

import pytest

from repro.core import FixedPointError, LocalSimilarity, WeightedSum, paper_bounds
from repro.fixedpoint import (
    UQ0_16,
    local_similarity,
    local_similarity_raw,
    max_error_weighted_sum,
    quantize_weights,
    reciprocal_raw,
    weighted_sum,
    weighted_sum_raw,
)


class TestLocalSimilarityFixedPoint:
    def test_matches_floating_point_reference_on_table1_pairs(self):
        bounds = paper_bounds()
        reference = LocalSimilarity(bounds)
        pairs = [(1, 16, 16), (1, 16, 8), (3, 1, 2), (3, 1, 0), (4, 40, 44), (4, 40, 22)]
        for attribute_id, request_value, case_value in pairs:
            expected = reference.value(attribute_id, request_value, case_value)
            measured = local_similarity(request_value, case_value, bounds.dmax(attribute_id))
            # The reciprocal is quantised to 16 bits, so the error grows with
            # the distance it is multiplied by (plus rounding of the result).
            tolerance = (abs(request_value - case_value) * 0.5 + 2) * UQ0_16.resolution
            assert measured == pytest.approx(expected, abs=tolerance)

    def test_identical_values_give_near_one(self):
        assert local_similarity(500, 500, 100) == pytest.approx(1.0, abs=UQ0_16.resolution)

    def test_maximum_distance_gives_near_zero(self):
        # With a large dmax the quantised reciprocal error is amplified by the
        # distance, so "near zero" means within about 1 % here.
        value = local_similarity(0, 1000, 1000)
        assert 0.0 <= value <= 1e-2

    def test_distance_beyond_dmax_saturates_at_zero(self):
        assert local_similarity_raw(0, 1000, reciprocal_raw(10)) == 0

    def test_out_of_range_operands_rejected(self):
        with pytest.raises(FixedPointError):
            local_similarity_raw(1 << 16, 0, reciprocal_raw(10))


class TestWeightedSumFixedPoint:
    def test_matches_floating_point_reference(self):
        similarities = [1.0, 1 - 1 / 3, 1 - 4 / 37]
        weights = [1 / 3] * 3
        expected = WeightedSum().combine(similarities, weights)
        measured = weighted_sum(similarities, weights)
        assert measured == pytest.approx(expected, abs=1e-4)

    def test_raw_variant_accepts_raw_operands(self):
        raw = weighted_sum_raw(
            [UQ0_16.from_float(0.5), UQ0_16.from_float(1.0)],
            [UQ0_16.from_float(0.5), UQ0_16.from_float(0.5)],
        )
        assert UQ0_16.to_float(raw) == pytest.approx(0.75, abs=1e-4)

    def test_length_mismatch_rejected(self):
        with pytest.raises(FixedPointError):
            weighted_sum_raw([1], [1, 2])

    def test_empty_input_rejected(self):
        with pytest.raises(FixedPointError):
            weighted_sum_raw([], [])

    def test_accumulator_saturates_instead_of_wrapping(self):
        raw = weighted_sum_raw(
            [UQ0_16.max_raw] * 4, [UQ0_16.max_raw] * 4
        )
        assert raw == UQ0_16.max_raw

    def test_quantize_weights_roundtrip(self):
        weights = [1 / 3, 1 / 3, 1 / 3]
        raw = quantize_weights(weights)
        assert all(abs(UQ0_16.to_float(r) - 1 / 3) <= UQ0_16.resolution for r in raw)

    def test_error_bound_is_generous_but_finite(self):
        bound = max_error_weighted_sum(10)
        assert 0 < bound < 0.05
