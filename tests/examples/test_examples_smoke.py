"""Smoke-run every script under ``examples/`` in-process.

The examples are documentation that executes; without a test they rot
silently (dead imports, renamed APIs).  Each script is seeded and small, so
running all four costs well under a second -- cheap enough for tier 1.  The
scripts put ``src`` on ``sys.path`` themselves and guard their entry points
with ``__main__``, so ``runpy`` with ``run_name="__main__"`` executes them
exactly as ``python examples/<name>.py`` would.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "examples"
)

#: Script name -> a fragment its stdout must contain (proves it ran to the end).
EXPECTED_OUTPUT = {
    "quickstart.py": "hardware retrieval unit: best implementation ID 2",
    "audio_equalizer_allocation.py": "paper reports ~8.5x",
    "hardware_design_exploration.py": "paper reports: case base",
    "multi_app_platform.py": "QoS negotiation",
    "online_learning_demo.py": "learned identically",
}


def _example_scripts():
    return sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )


def test_every_example_is_covered():
    """A new example must be added to the expectation table (or get a default)."""
    assert set(_example_scripts()) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_to_completion(script, capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} printed nothing"
    assert EXPECTED_OUTPUT[script] in output
