"""Micro-batching policy tests: size closes, timeout closes, flushes."""

import pytest

from repro.core import FunctionRequest, ReproError
from repro.serving import MicroBatchScheduler, TimedRequest


def _trace(*arrivals_us):
    request = FunctionRequest(1, [(1, 16)])
    return [TimedRequest(arrival_us=arrival, request=request) for arrival in arrivals_us]


class TestValidation:
    def test_rejects_zero_max_batch(self):
        with pytest.raises(ReproError, match="max_batch"):
            MicroBatchScheduler(max_batch=0)

    def test_rejects_negative_wait(self):
        with pytest.raises(ReproError, match="max_wait_us"):
            MicroBatchScheduler(max_wait_us=-1.0)

    def test_rejects_unsorted_trace(self):
        scheduler = MicroBatchScheduler(max_batch=4, max_wait_us=100.0)
        with pytest.raises(ReproError, match="not sorted"):
            list(scheduler.batches(_trace(10.0, 5.0)))

    def test_negative_arrival_rejected_at_construction(self):
        with pytest.raises(ReproError, match="arrival"):
            _trace(-1.0)


class TestBatching:
    def test_empty_trace_produces_no_batches(self):
        assert list(MicroBatchScheduler().batches([])) == []

    def test_size_full_batch_closes_at_last_arrival(self):
        scheduler = MicroBatchScheduler(max_batch=3, max_wait_us=1e9)
        batches = list(scheduler.batches(_trace(0.0, 1.0, 2.0, 3.0)))
        assert [len(batch) for batch in batches] == [3, 1]
        assert batches[0].close_us == 2.0
        # The final partial batch flushes after its own wait window.
        assert batches[1].open_us == 3.0
        assert batches[1].close_us == 3.0 + 1e9

    def test_timeout_closes_before_late_arrival(self):
        scheduler = MicroBatchScheduler(max_batch=10, max_wait_us=100.0)
        batches = list(scheduler.batches(_trace(0.0, 50.0, 500.0)))
        assert [len(batch) for batch in batches] == [2, 1]
        assert batches[0].close_us == 100.0  # open + max_wait, not the late arrival
        assert batches[1].open_us == 500.0

    def test_arrival_exactly_at_window_edge_joins_the_batch(self):
        scheduler = MicroBatchScheduler(max_batch=10, max_wait_us=100.0)
        batches = list(scheduler.batches(_trace(0.0, 100.0)))
        assert [len(batch) for batch in batches] == [2]

    def test_max_batch_one_degenerates_to_one_at_a_time(self):
        scheduler = MicroBatchScheduler(max_batch=1, max_wait_us=1e9)
        batches = list(scheduler.batches(_trace(0.0, 1.0, 2.0)))
        assert [len(batch) for batch in batches] == [1, 1, 1]
        assert [batch.close_us for batch in batches] == [0.0, 1.0, 2.0]

    def test_zero_wait_coalesces_only_simultaneous_arrivals(self):
        scheduler = MicroBatchScheduler(max_batch=10, max_wait_us=0.0)
        batches = list(scheduler.batches(_trace(0.0, 0.0, 1.0)))
        assert [len(batch) for batch in batches] == [2, 1]

    def test_indices_and_requests_are_aligned(self):
        scheduler = MicroBatchScheduler(max_batch=2, max_wait_us=1e9)
        trace = _trace(0.0, 1.0, 2.0)
        batches = list(scheduler.batches(trace))
        flattened = [
            (trace_index, entry) for batch in batches for trace_index, entry in batch.entries
        ]
        assert [index for index, _ in flattened] == [0, 1, 2]
        assert all(entry is trace[index] for index, entry in flattened)
        assert batches[0].requests == [trace[0].request, trace[1].request]
