"""DeltaLog truncation/compaction edge cases under serving load.

The delta log is a bounded window: once more mutations land than the log
retains, ``since()``/``summary_since()`` return ``None`` and every consumer
must take the documented full-rebuild fallback -- and stay bit-identical
with a from-scratch build while doing so.  The property sweep covers this
only incidentally (its windows rarely overflow); these tests force the
truncation deliberately, on every consumer class the serving path relies on:
the vectorized backend, the shard partition, both retrieval units, the
serving engine's screening tables, and the device fleet's image streams.
"""

import pytest

from repro.core import CaseBase, RetrievalEngine
from repro.core.deltas import DeltaLog
from repro.hardware import HardwareRetrievalUnit
from repro.platform import DeviceFleet
from repro.serving import (
    ServingConfig,
    ServingEngine,
    ShardedRetriever,
    synthetic_trace,
)
from repro.software import SoftwareRetrievalUnit
from repro.tools import CaseBaseGenerator, GeneratorSpec


@pytest.fixture
def generator():
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=5,
            implementations_per_type=6,
            attributes_per_implementation=6,
            attribute_type_count=8,
        ),
        seed=13,
    )


def _shrink_log(case_base: CaseBase, capacity: int) -> None:
    """Install a tiny delta log anchored at the current revision."""
    case_base.delta_log = DeltaLog(capacity=capacity)
    case_base.delta_log.rebase(case_base.revision)


def _overflow(case_base: CaseBase, mutations: int) -> None:
    """Churn one implementation until the log window is truncated."""
    type_id = case_base.type_ids()[0]
    implementation = case_base.implementations(type_id)[0]
    for _ in range(mutations):
        case_base.replace_implementation(type_id, implementation)


class TestConsumerFallback:
    def test_every_consumer_falls_back_and_stays_bit_identical(self, generator):
        case_base = generator.case_base()
        _shrink_log(case_base, capacity=3)
        probes = [generator.request(salt=index) for index in range(8)]

        engine = RetrievalEngine(case_base, backend="vectorized")
        sharded = ShardedRetriever(case_base, shard_count=3)
        hardware = HardwareRetrievalUnit(case_base)
        software = SoftwareRetrievalUnit(case_base)
        # Warm every cache so the next refresh must absorb the window.
        engine.retrieve_batch(probes, n=3)
        sharded.retrieve_batch(probes, n=3)
        hardware.run_batch(probes)
        software.run_batch(probes)
        trackers = {
            "backend": engine.backend.tracker,
            "shards": sharded._tracker,
            "hardware": hardware._tracker,
            "software": software._tracker,
        }
        rebuilds_before = {name: t.rebuild_count for name, t in trackers.items()}
        incremental_before = {name: t.incremental_count for name, t in trackers.items()}

        _overflow(case_base, mutations=5)  # > capacity: the window truncates
        assert case_base.delta_log.summary_since(
            trackers["backend"].revision
        ) is None

        live = {
            "backend": engine.retrieve_batch(probes, n=3),
            "shards": sharded.retrieve_batch(probes, n=3),
        }
        live_hardware = hardware.run_batch(probes)
        live_software = software.run_batch(probes)

        for name, tracker in trackers.items():
            assert tracker.rebuild_count == rebuilds_before[name] + 1, name
            assert tracker.incremental_count == incremental_before[name], name

        fresh_engine = RetrievalEngine(
            case_base, bounds=engine.bounds, backend="vectorized"
        )
        expected = fresh_engine.retrieve_batch(probes, n=3)
        for name in ("backend", "shards"):
            assert [
                [(e.implementation_id, e.similarity) for e in result.ranked]
                for result in live[name]
            ] == [
                [(e.implementation_id, e.similarity) for e in result.ranked]
                for result in expected
            ], name
        fresh_hardware = HardwareRetrievalUnit(case_base)
        assert [
            (r.best_id, r.best_similarity_raw, r.ranked, r.cycles)
            for r in live_hardware
        ] == [
            (r.best_id, r.best_similarity_raw, r.ranked, r.cycles)
            for r in fresh_hardware.run_batch(probes)
        ]
        fresh_software = SoftwareRetrievalUnit(case_base)
        assert [
            (r.best_id, r.best_similarity_raw, r.cycles) for r in live_software
        ] == [
            (r.best_id, r.best_similarity_raw, r.cycles)
            for r in fresh_software.run_batch(probes)
        ]

    def test_fleet_image_sync_takes_the_full_stream_fallback(self, generator):
        case_base = generator.case_base()
        _shrink_log(case_base, capacity=2)
        fleet = DeviceFleet.build(case_base, hardware_devices=2, software_devices=0)
        full_bytes = fleet.image_word_count() * 2
        _overflow(case_base, mutations=4)
        events = fleet.sync(0.0)
        assert len(events) == 2
        for event in events:
            assert not event.incremental
            assert event.bytes_streamed == full_bytes


class TestTruncationMidTrace:
    def test_serving_with_truncating_log_matches_default_log(self, generator):
        """Log capacity is a performance knob, never a semantics knob.

        Two identical snapshots serve the same learning trace; one's log is
        so small that every inter-batch window truncates (forcing the
        full-rebuild fallback on all consumers, every batch).  Rankings,
        statuses and the evolved case base must come out identical.
        """
        source = generator.case_base()
        trace = synthetic_trace(source, 40, mean_interarrival_us=400.0, seed=5)
        config = ServingConfig(max_batch=4, shard_count=2, learn=True)

        default_case_base = source.copy()
        default_report = ServingEngine(default_case_base, config=config).serve(trace)

        tiny_case_base = source.copy()
        _shrink_log(tiny_case_base, capacity=1)
        tiny_engine = ServingEngine(tiny_case_base, config=config)
        tiny_report = tiny_engine.serve(trace)

        assert tiny_report.rankings() == default_report.rankings()
        assert [r.status for r in tiny_report.served] == [
            r.status for r in default_report.served
        ]
        assert tiny_report.metrics["learning"] == default_report.metrics["learning"]
        assert tiny_case_base.revision == default_case_base.revision
        # The tiny log genuinely truncated: the learning trace mutates more
        # than one revision per window, so the retriever had to rebuild at
        # least once mid-trace (beyond its initial construction build).
        assert default_report.metrics["learning"]["revisions"] > 1
        assert tiny_engine.retriever._tracker.rebuild_count > 1

    def test_screen_tables_rebuild_after_truncation(self, generator):
        case_base = generator.case_base()
        _shrink_log(case_base, capacity=2)
        engine = ServingEngine(case_base, config=ServingConfig(max_batch=4))
        trace = synthetic_trace(case_base, 6, mean_interarrival_us=100.0, seed=1)
        engine.serve(trace)
        rebuilds = engine._screen_tracker.rebuild_count
        _overflow(case_base, mutations=4)
        report = engine.serve(trace)
        assert engine._screen_tracker.rebuild_count == rebuilds + 1
        assert report.metrics["served"] == len(trace)


class TestJournalOutlivesTheLog:
    def test_journalled_windows_recover_past_in_memory_truncation(
        self, generator, tmp_path
    ):
        """The durable journal is the unbounded twin of the bounded DeltaLog.

        A learning serving run mutates far more revisions than a capacity-1
        log retains; the in-memory window truncates (``since()`` goes None)
        but the journal tap recorded every delta in wire form, so the
        engine-free ``recover_case_base`` path rebuilds the final case base
        exactly."""
        from repro.api import schemas
        from repro.core.journal import DeltaJournal, recover_case_base

        case_base = generator.case_base()
        _shrink_log(case_base, capacity=1)
        journal = DeltaJournal(tmp_path)
        journal.begin(0, schemas.attach_envelope("journal-snapshot", {
            "case_base": case_base.to_dict(),
            "revision": case_base.revision,
        }))
        taps = []
        case_base.delta_log.attach_tap(taps.append)

        trace = synthetic_trace(case_base, 40, mean_interarrival_us=400.0, seed=5)
        config = ServingConfig(max_batch=4, shard_count=2, learn=True)
        report = ServingEngine(case_base, config=config).serve(trace)
        assert report.metrics["learning"]["revisions"] > 1

        case_base.delta_log.detach_tap(taps.append)
        assert len(taps) > 1  # far more deltas than the log retained
        assert case_base.delta_log.since(case_base.revision - len(taps)) is None
        for delta in taps:
            journal.append({
                "kind": "journal-deltas",
                "revision": delta.revision,
                "replayable": True,
                "events": schemas.delta_to_wire_events(delta),
            })
        journal.commit()
        journal.close()

        recovered = recover_case_base(DeltaJournal.load(tmp_path))
        assert recovered.to_dict() == case_base.to_dict()
        assert recovered.count_implementations() == case_base.count_implementations()
