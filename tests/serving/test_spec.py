"""ServingSpec: the one schema behind every engine-construction surface.

Covers the PR's API-redesign contract: CLI argument parsing, the Python
construction path, the versioned wire round-trip and the spec-only
``ApplicationAPI`` surface all agree on what a serving setup *is*.
"""

import argparse

import pytest

from repro.apps import build_scenario
from repro.core import ReproError
from repro.core.exceptions import RequestError
from repro.serving import (
    ClusterServingEngine,
    FaultPlan,
    FaultSpec,
    ServingEngine,
    ServingSpec,
)


def _parse(argv, *, trace=True, cluster_args=False, replay=True):
    parser = argparse.ArgumentParser()
    if trace:
        ServingSpec.add_trace_arguments(parser)
    if cluster_args:
        ServingSpec.add_cluster_arguments(parser)
    ServingSpec.add_serving_arguments(parser)
    if replay:
        parser.add_argument("--engine", default="vectorized")
    return parser.parse_args(argv)


class TestFromArgs:
    def test_defaults_match_field_defaults(self):
        spec = ServingSpec.from_args(_parse([]))
        assert spec == ServingSpec()

    def test_full_argument_surface_round_trips(self):
        spec = ServingSpec.from_args(_parse([
            "--workload", "heavy-traffic", "--duration-ms", "250",
            "--random", "12", "--mean-interarrival-us", "80",
            "--seed", "9", "--shards", "4", "--max-batch", "8",
            "--max-wait-us", "200", "--deadline-us", "900",
            "--cycle-engine", "stepwise", "--clock-mhz", "100",
            "--n-best", "5", "--learn", "--learning-rate", "0.25",
            "--novelty-threshold", "0.8", "--learn-capacity", "4",
        ]))
        assert spec.workloads == ("heavy-traffic",)
        assert spec.duration_ms == 250.0
        assert spec.random == 12
        assert spec.mean_interarrival_us == 80.0
        assert spec.seed == 9
        assert spec.shards == 4
        assert spec.max_batch == 8
        assert spec.max_wait_us == 200.0
        assert spec.deadline_us == 900.0
        assert spec.cycle_engine == "stepwise"
        assert spec.clock_mhz == 100.0
        assert spec.n_best == 5
        assert spec.learn and spec.learning_rate == 0.25
        assert spec.novelty_threshold == 0.8 and spec.learn_capacity == 4

    def test_engine_naive_maps_onto_the_backend_axis(self):
        assert ServingSpec.from_args(_parse(["--engine", "naive"])).backend == "naive"
        # 'compare' is CLI-side orchestration; the spec stays vectorized.
        assert ServingSpec.from_args(_parse(["--engine", "compare"])).backend == "vectorized"

    def test_cluster_arguments(self):
        args = _parse(["--devices", "3", "--software-workers", "2",
                       "--reconfig-us", "120"], cluster_args=True)
        spec = ServingSpec.from_args(args, cluster=True)
        assert spec.cluster
        assert (spec.devices, spec.software_workers, spec.reconfig_us) == (3, 2, 120.0)

    def test_validation_errors_surface_as_repro_errors(self):
        with pytest.raises(ReproError, match="n_best"):
            ServingSpec.from_args(_parse(["--n-best", "0"]))
        with pytest.raises(ReproError, match="at least one device"):
            ServingSpec.from_args(
                _parse(["--devices", "0", "--software-workers", "0"],
                       cluster_args=True),
                cluster=True,
            )
        with pytest.raises(ReproError, match="backend"):
            ServingSpec(backend="quantum")
        with pytest.raises(ReproError, match="cycle engine"):
            ServingSpec(cycle_engine="warp")


class TestConstruction:
    def test_build_engine_single_node(self):
        engine = ServingSpec(random=4, shards=2, n_best=2).build_engine()
        assert isinstance(engine, ServingEngine)
        assert engine.config.shard_count == 2
        assert engine.config.n_best == 2

    def test_build_engine_cluster(self):
        engine = ServingSpec(random=4, cluster=True, devices=2,
                             software_workers=1).build_engine()
        assert isinstance(engine, ClusterServingEngine)
        assert len(engine.fleet) == 3

    def test_resolve_inputs_rejects_case_base_with_workload_trace(self, tmp_path):
        spec = ServingSpec(case_base=str(tmp_path / "cb.json"))
        with pytest.raises(ReproError, match="--case-base"):
            spec.resolve_inputs()

    def test_resolve_inputs_builds_a_replayable_trace(self):
        spec = ServingSpec(random=6, seed=3)
        case_base, trace = spec.resolve_inputs()
        assert len(trace) == 6
        report = spec.build_engine(case_base).serve(trace)
        assert report.metrics["requests"] == 6

    def test_fault_plan_accepts_payload_mappings(self):
        spec = ServingSpec(fault_plan={"seed": 3, "faults": [
            {"kind": "worker_crash", "target": "hw0", "at_us": 100.0,
             "duration_us": 50.0},
        ]})
        assert isinstance(spec.fault_plan, FaultPlan)
        assert spec.fault_plan.seed == 3
        assert spec.fault_plan.faults[0].kind == "worker_crash"

    def test_fault_plan_rejects_non_plans(self):
        with pytest.raises(ReproError, match="fault_plan"):
            ServingSpec(fault_plan="chaos")


class TestWire:
    def test_wire_round_trip_is_identity(self):
        spec = ServingSpec(workloads=("heavy-traffic",), cluster=True,
                           devices=3, shards=2, deadline_us=750.0, learn=True)
        assert ServingSpec.from_wire(spec.to_wire()) == spec
        assert ServingSpec.from_json(spec.to_json()) == spec

    def test_wire_document_is_versioned(self):
        document = ServingSpec().to_wire()
        assert document["kind"] == "serving-spec"
        assert document["schema_version"] >= 1

    def test_fault_plan_rides_the_wire(self):
        plan = FaultPlan(seed=11, faults=(
            FaultSpec(kind="worker_hang", target="hw1", at_us=200.0,
                      duration_us=400.0),
            FaultSpec(kind="conn_drop", every=5),
        ))
        spec = ServingSpec(cluster=True, fault_plan=plan)
        restored = ServingSpec.from_wire(spec.to_wire())
        assert restored == spec
        assert restored.fault_plan == plan
        # The axis stays optional: absent plans round-trip as None.
        assert ServingSpec.from_wire(ServingSpec().to_wire()).fault_plan is None


class TestApplicationApiShims:
    def test_spec_first_construction(self):
        scenario = build_scenario()
        spec = ServingSpec(shards=2, n_best=2)
        engine = scenario.application_api.serving_engine(spec)
        assert isinstance(engine, ServingEngine)
        assert engine.case_base is scenario.manager.case_base
        assert engine.config.shard_count == 2

    def test_spec_first_cluster_construction(self):
        scenario = build_scenario()
        spec = ServingSpec(cluster=True, devices=2, software_workers=1, n_best=2)
        engine = scenario.application_api.cluster_engine(spec)
        assert isinstance(engine, ClusterServingEngine)
        assert len(engine.fleet) == 3
        assert engine.fleet.repository is scenario.manager.repository

    def test_missing_spec_is_rejected(self):
        scenario = build_scenario()
        with pytest.raises(RequestError, match="requires a ServingSpec"):
            scenario.application_api.serving_engine()
        with pytest.raises(RequestError, match="requires a ServingSpec"):
            scenario.application_api.cluster_engine()

    def test_legacy_kwargs_are_gone(self):
        """The PR 6 keyword-override shim was removed outright in PR 7."""
        scenario = build_scenario()
        with pytest.raises(TypeError):
            scenario.application_api.serving_engine(shard_count=2, n_best=2)
        assert not hasattr(ServingSpec, "from_engine_kwargs")

    def test_non_spec_arguments_are_rejected(self):
        scenario = build_scenario()
        with pytest.raises(RequestError, match="ServingSpec"):
            scenario.application_api.serving_engine({"shards": 2})
