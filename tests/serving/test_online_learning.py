"""Online CBR learning in the serving loop (``ServingConfig.learn``).

The paper defers run-time case-base updates to future work; these tests pin
down the serving-layer wiring of :mod:`repro.core.learning`: outcomes fed
back between micro-batches, retention under the per-type capacity, learning
metrics, and the interaction with the delta-propagation subsystem (mutations
mid-stream must not force O(case-base) rebuilds or break determinism).
"""

import pytest

from repro.core import FunctionRequest, ReproError
from repro.serving import (
    OnlineLearner,
    ServingConfig,
    ServingEngine,
    ServingSpec,
    synthetic_trace,
    trace_from_requests,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


@pytest.fixture()
def generator():
    return CaseBaseGenerator(
        GeneratorSpec(type_count=4, implementations_per_type=4,
                      attributes_per_implementation=5, attribute_type_count=6),
        seed=3,
    )


def _learning_engine(case_base, **overrides):
    defaults = dict(max_batch=8, n_best=2, learn=True, novelty_threshold=0.99,
                    learn_capacity=10)
    defaults.update(overrides)
    return ServingEngine(case_base, config=ServingConfig(**defaults))


def test_learning_grows_the_case_base_mid_stream(generator):
    case_base = generator.case_base()
    before = case_base.count_implementations()
    revision_before = case_base.revision
    trace = synthetic_trace(case_base, 60, mean_interarrival_us=50.0, seed=9)
    report = _learning_engine(case_base).serve(trace)

    learning = report.metrics["learning"]
    assert learning["implementations_before"] == before
    assert learning["implementations_after"] == case_base.count_implementations()
    assert learning["retained"] > 0
    assert case_base.count_implementations() > before
    assert case_base.revision > revision_before
    assert learning["revisions"] == case_base.revision - revision_before
    # Every retained case respects the per-type capacity.
    for function_type in case_base.sorted_types():
        assert len(function_type) <= 10


def test_learning_off_keeps_case_base_frozen(generator):
    case_base = generator.case_base()
    revision = case_base.revision
    trace = synthetic_trace(case_base, 40, mean_interarrival_us=50.0, seed=9)
    report = _learning_engine(case_base, learn=False).serve(trace)
    assert "learning" not in report.metrics
    assert case_base.revision == revision


def test_learning_replay_is_deterministic(generator):
    source = generator.case_base()
    trace = synthetic_trace(source, 50, mean_interarrival_us=50.0, seed=4)
    first_base, second_base = source.copy(), source.copy()
    first = _learning_engine(first_base).serve(trace)
    second = _learning_engine(second_base).serve(trace)
    assert first.rankings() == second.rankings()
    assert first.metrics["learning"] == second.metrics["learning"]
    assert first_base.to_dict() == second_base.to_dict()


def test_revision_converges_on_repeated_identical_traffic(generator):
    """Revise blends towards the measured values and then stops mutating."""
    case_base = generator.case_base()
    request = generator.request(salt=1, attribute_count=4)
    trace = trace_from_requests([request] * 12, interarrival_us=100.0)
    engine = _learning_engine(case_base, novelty_threshold=0.0)  # never retain
    engine.serve(trace)
    settled = case_base.revision
    engine.serve(trace)
    # The stored case has converged onto the request's values: no further
    # revisions, no retentions, no revision bumps.
    assert case_base.revision == settled


def test_learner_skips_requests_without_ranking(generator):
    case_base = generator.case_base()
    learner = OnlineLearner(case_base, ServingConfig(learn=True))
    request = generator.request(salt=2, attribute_count=3)
    result = type("R", (), {"best": None})()
    learner.observe(request, result)  # must be a no-op
    assert learner.revised_count == 0 and learner.retained_count == 0


def test_config_validation():
    with pytest.raises(ReproError):
        ServingConfig(learning_rate=1.5)
    with pytest.raises(ReproError):
        ServingConfig(novelty_threshold=-0.1)
    with pytest.raises(ReproError):
        ServingConfig(learn_capacity=0)


def test_learning_through_application_api():
    """``ApplicationAPI.serving_engine(ServingSpec(learn=True))`` shares the manager's base."""
    from repro.apps import build_scenario

    scenario = build_scenario()
    api = scenario.application_api
    engine = api.serving_engine(ServingSpec(learn=True, max_batch=8, novelty_threshold=0.99))
    assert engine.learner is not None
    case_base = scenario.manager.case_base
    before = case_base.count_implementations()
    trace = synthetic_trace(case_base, 40, mean_interarrival_us=50.0, seed=7)
    report = engine.serve(trace)
    assert report.metrics["learning"]["implementations_after"] == (
        case_base.count_implementations()
    )
    assert case_base.count_implementations() >= before


def test_serve_trace_learn_compare_cli(capsys):
    """``repro serve-trace --learn --engine compare`` stays bit-identical."""
    from repro.cli import main

    exit_code = main([
        "serve-trace", "--random", "60", "--seed", "6", "--shards", "3",
        "--max-batch", "8", "--learn", "--novelty-threshold", "0.99",
        "--engine", "compare", "--show", "2",
    ])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "learning: revised=" in output
    assert "bit-identical for 60/60 requests" in output
