"""Observability PR gates: the no-byte-changes contract and its surfaces.

The standing invariant of the observability layer is that it *observes*:
tracing at sample rate 1.0 must leave every ranking, capture byte and
journal byte identical to an uninstrumented run.  This module holds the
differential gates plus the daemon's Prometheus/trace HTTP surfaces, the
``repro trace`` CLI, the compare-mode trace ids and the structured serve
logs.
"""

import asyncio
import http.client
import json
import logging
import re
import threading
import time

import pytest

from repro import cli
from repro.observability import ObservabilityConfig, trace_id_for
from repro.serving import (
    DaemonThread,
    ServingDaemon,
    ServingSpec,
    replay_capture,
)

PAPER_WIRE = {"type_id": 1, "constraints": {"1": 16, "3": 1, "4": 40}}

LEARN_EVENT = {
    "op": "add_implementation",
    "type_id": 1,
    "implementation": {
        "implementation_id": 9001,
        "target": "gpp",
        "name": "learned",
        "attributes": {"1": 16, "3": 1, "4": 40},
    },
}

#: Every non-comment Prometheus exposition line must match this.
SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$'
)

DISABLED = ObservabilityConfig(enabled=False)


class Client:
    """Keep-alive client returning parsed JSON or raw text by content type."""

    def __init__(self, host, port):
        self.connection = http.client.HTTPConnection(host, port, timeout=30)

    def call(self, method, path, payload=None):
        body = json.dumps(payload) if payload is not None else None
        self.connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = self.connection.getresponse()
        text = response.read().decode("utf-8")
        if "json" in (response.getheader("Content-Type") or ""):
            return response.status, json.loads(text)
        return response.status, text

    def close(self):
        self.connection.close()


def _records(report):
    return [json.loads(json.dumps(r.to_dict())) for r in report.served]


def _stable_metrics(report):
    metrics = json.loads(json.dumps(report.metrics))
    metrics.pop("wall_seconds", None)
    metrics.pop("throughput_rps", None)
    # The config section legitimately differs in its observability field.
    metrics.pop("config", None)
    return metrics


class TestDifferentialGates:
    """Tracing on vs off must not change a single served byte."""

    def test_serve_trace_bit_identical_with_tracing(self):
        spec = ServingSpec(random=24, seed=7, max_batch=4, max_wait_us=500.0,
                           shards=2, n_best=3, deadline_us=50_000.0)
        case_base, trace = spec.resolve_inputs()
        traced = spec.build_engine(case_base.copy()).serve(trace)
        untraced = spec.replace(observability=DISABLED).build_engine(
            case_base.copy()
        ).serve(trace)
        assert _records(traced) == _records(untraced)
        assert _stable_metrics(traced) == _stable_metrics(untraced)

    def test_serve_cluster_bit_identical_with_tracing(self):
        spec = ServingSpec(random=16, seed=11, cluster=True, devices=2,
                           software_workers=1, max_batch=4,
                           max_wait_us=500.0, n_best=3)
        case_base, trace = spec.resolve_inputs()
        traced = spec.build_engine(case_base.copy()).serve(trace)
        untraced = spec.replace(observability=DISABLED).build_engine(
            case_base.copy()
        ).serve(trace)
        assert _records(traced) == _records(untraced)
        assert _stable_metrics(traced) == _stable_metrics(untraced)

    def test_learning_run_bit_identical_with_tracing(self):
        spec = ServingSpec(random=20, seed=3, max_batch=4, max_wait_us=500.0,
                           learn=True, novelty_threshold=0.99)
        case_base, trace = spec.resolve_inputs()
        traced = spec.build_engine(case_base.copy()).serve(trace)
        untraced = spec.replace(observability=DISABLED).build_engine(
            case_base.copy()
        ).serve(trace)
        assert _records(traced) == _records(untraced)

    def test_capture_replay_identical_under_any_observability(self, tmp_path):
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with DaemonThread(spec) as handle:
            client = Client(handle.host, handle.port)
            for _ in range(3):
                client.call("POST", "/retrieve", PAPER_WIRE)
            _, capture = client.call("GET", "/capture")
            client.close()
        traced = replay_capture(capture)
        untraced = replay_capture(capture, observability=DISABLED)
        assert _records(traced) == _records(untraced)
        assert _records(traced) == capture["responses"]

    def test_replayed_span_trees_are_deterministic(self):
        spec = ServingSpec(random=2, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with DaemonThread(spec) as handle:
            client = Client(handle.host, handle.port)
            for _ in range(4):
                client.call("POST", "/retrieve", PAPER_WIRE)
            _, capture = client.call("GET", "/capture")
            client.close()
        config = ObservabilityConfig(trace_sample_rate=1.0, trace_ring=512)
        _, first = replay_capture(capture, observability=config, with_engine=True)
        _, second = replay_capture(capture, observability=config, with_engine=True)
        first_trees = [t.identity() for t in first.observability.store.all()]
        second_trees = [t.identity() for t in second.observability.store.all()]
        assert first_trees
        assert first_trees == second_trees

    def test_journal_records_carry_no_observability_keys(self, tmp_path):
        allowed = {
            "journal-trace": {"kind", "batch"},
            "journal-learn": {"kind", "position", "events"},
            "journal-deltas": {
                "kind", "revision", "implementations", "replayable", "events",
            },
            "journal-commit": {
                "kind", "records", "last_stamp_us", "batch", "learn", "shutdown",
            },
        }
        journal_dir = tmp_path / "journal"
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with DaemonThread(spec, journal_dir=str(journal_dir)) as handle:
            client = Client(handle.host, handle.port)
            for _ in range(2):
                client.call("POST", "/retrieve", PAPER_WIRE)
            client.call("POST", "/learn", {"events": [LEARN_EVENT]})
            client.close()
        lines = []
        for path in journal_dir.glob("journal-*.jsonl"):
            lines.extend(path.read_text().splitlines())
        assert lines
        for line in lines:
            record = json.loads(line)
            assert set(record) <= allowed[record["kind"]], record

    def test_sample_rate_zero_disables_tracing_only(self):
        spec = ServingSpec(random=10, seed=5, max_batch=4, max_wait_us=500.0,
                           observability=ObservabilityConfig(trace_sample_rate=0.0))
        case_base, trace = spec.resolve_inputs()
        engine = spec.build_engine(case_base)
        report = engine.serve(trace)
        assert len(engine.observability.store) == 0
        assert report.metrics["requests"] == 10
        # The registry still counts -- only span capture is sampled out.
        family = engine.observability.registry.get("repro_requests_total")
        assert sum(family.values().values()) == 10


@pytest.fixture
def daemon():
    spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
    with DaemonThread(spec) as handle:
        client = Client(handle.host, handle.port)
        yield handle, client
        client.close()


class TestPrometheusScrape:
    def test_exposition_is_valid_and_complete(self, daemon):
        _, client = daemon
        for _ in range(3):
            client.call("POST", "/retrieve", PAPER_WIRE)
        status, text = client.call("GET", "/metrics")
        assert status == 200
        assert isinstance(text, str)
        for line in text.splitlines():
            assert line.startswith("#") or SAMPLE_LINE.match(line), line
        # The acceptance floor: requests by status, per-stage latency
        # histograms, worker health, journal commits, learn retries.
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{status="served_hardware"} 3' in text
        assert '# TYPE repro_stage_latency_us histogram' in text
        for stage in ("queue", "admission", "retrieval", "merge"):
            assert f'repro_stage_latency_us_count{{stage="{stage}"}}' in text
        assert '# TYPE repro_worker_health_state gauge' in text
        assert '# TYPE repro_journal_commits_total counter' in text
        assert '# TYPE repro_learn_retry_attempts_total counter' in text
        assert 'repro_daemon_ready 1' in text
        assert 'repro_request_latency_us_count 3' in text
        assert 'repro_http_requests_total{route="/retrieve",code="200"} 3' in text

    def test_json_format_still_served(self, daemon):
        _, client = daemon
        client.call("POST", "/retrieve", PAPER_WIRE)
        status, body = client.call("GET", "/metrics?format=json")
        assert status == 200
        assert body["kind"] == "serving-metrics"
        assert body["daemon"]["requests"] == 1
        assert body["daemon"]["ready"] is True


class TestTraceEndpoints:
    def test_trace_of_a_just_served_request(self, daemon):
        _, client = daemon
        status, record = client.call("POST", "/retrieve", PAPER_WIRE)
        assert status == 200
        status, doc = client.call("GET", f"/trace/{trace_id_for(record['index'])}")
        assert status == 200
        assert doc["kind"] == "trace"
        names = [span["name"] for span in doc["spans"]]
        assert names[0] == "request"
        assert "queue" in names and "admission" in names and "retrieval" in names
        root = doc["spans"][0]
        assert root["attributes"]["status"] == "served_hardware"
        # The HTTP round-trip wall time rides along as an annotation.
        assert "http_wall_us" in root["annotations"]

    def test_bare_index_lookup(self, daemon):
        _, client = daemon
        client.call("POST", "/retrieve", PAPER_WIRE)
        status, doc = client.call("GET", "/trace/0")
        assert status == 200
        assert doc["trace_id"] == "req-00000000"

    def test_missing_trace_404_names_the_ring(self, daemon):
        _, client = daemon
        status, body = client.call("GET", "/trace/req-99999999")
        assert status == 404
        assert body["error"] == "trace-not-found"
        assert "/traces/recent" in body["reason"]

    def test_recent_lists_newest_first(self, daemon):
        _, client = daemon
        for _ in range(3):
            client.call("POST", "/retrieve", PAPER_WIRE)
        status, body = client.call("GET", "/traces/recent?limit=2")
        assert status == 200
        assert body["kind"] == "trace-list"
        assert len(body["traces"]) == 2
        assert body["traces"][0]["trace_id"] > body["traces"][1]["trace_id"]
        assert body["ring"] == 256
        assert body["sample_rate"] == 1.0


class TestScrapeDuringReconfiguration:
    def test_metrics_scrape_inside_open_window(self):
        spec = ServingSpec(random=1, cluster=True, devices=1, software_workers=1,
                           max_batch=64, max_wait_us=400_000.0)
        with DaemonThread(spec) as handle:
            client = Client(handle.host, handle.port)
            blocked = Client(handle.host, handle.port)
            results = {}

            def pending_retrieve():
                results["blocked"] = blocked.call("POST", "/retrieve", PAPER_WIRE)

            thread = threading.Thread(target=pending_retrieve)
            thread.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                _, metrics = client.call("GET", "/metrics?format=json")
                if metrics["daemon"]["pending"] >= 1:
                    break
                time.sleep(0.005)
            assert metrics["daemon"]["pending"] >= 1
            status, body = client.call("POST", "/learn", {"events": [LEARN_EVENT]})
            assert status == 202
            # Scrape *inside* the open reconfiguration window: both formats
            # answer 200 and report the window.
            status, text = client.call("GET", "/metrics")
            assert status == 200
            assert "repro_daemon_reconfiguring 1" in text
            assert "repro_daemon_pending_requests 1" in text
            status, metrics = client.call("GET", "/metrics?format=json")
            assert status == 200
            assert metrics["daemon"]["reconfiguring"] is True
            thread.join(timeout=30)
            assert results["blocked"][0] == 200
            status, text = client.call("GET", "/metrics")
            assert "repro_daemon_reconfiguring 0" in text
            client.close()
            blocked.close()


class TestScrapeDuringRecovery:
    def _journal_with_traffic(self, tmp_path):
        journal_dir = tmp_path / "journal"
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with DaemonThread(spec, journal_dir=str(journal_dir),
                          hard_stop=True) as handle:
            client = Client(handle.host, handle.port)
            for _ in range(2):
                client.call("POST", "/retrieve", PAPER_WIRE)
            client.close()
        return spec, journal_dir

    def test_metrics_not_gated_on_readiness(self, tmp_path):
        spec, journal_dir = self._journal_with_traffic(tmp_path)
        # A daemon whose recovery has not run yet: /metrics must answer.
        daemon = ServingDaemon(spec, journal_dir=str(journal_dir))
        assert daemon.ready is False
        status, text = asyncio.run(daemon._dispatch("GET", "/metrics", b"", ""))
        assert status == 200
        assert "repro_daemon_ready 0" in text
        status, body = asyncio.run(
            daemon._dispatch("GET", "/metrics", b"", "format=json")
        )
        assert status == 200
        assert body["daemon"]["ready"] is False
        # The trace surfaces stay readiness-gated.
        status, body = asyncio.run(
            daemon._dispatch("GET", "/traces/recent", b"", "")
        )
        assert status == 503

    def test_post_recovery_scrape_covers_replayed_traffic(self, tmp_path):
        spec, journal_dir = self._journal_with_traffic(tmp_path)
        with DaemonThread(spec, journal_dir=str(journal_dir)) as handle:
            client = Client(handle.host, handle.port)
            status, text = client.call("GET", "/metrics")
            assert status == 200
            assert "repro_daemon_ready 1" in text
            # Recovery replays the journal tail through the real session, so
            # the registry already counts the recovered requests...
            assert 'repro_requests_total{status="served_hardware"} 2' in text
            # The commit counter covers this process only: 0 after replay,
            # then it moves as soon as new traffic commits.
            assert "repro_journal_commits_total 0" in text
            status, _ = client.call("POST", "/retrieve", PAPER_WIRE)
            assert status == 200
            _, text = client.call("GET", "/metrics")
            assert 'repro_requests_total{status="served_hardware"} 3' in text
            assert "repro_journal_commits_total 1" in text
            # ...and the trace ring already holds their span trees.
            status, doc = client.call("GET", "/trace/req-00000000")
            assert status == 200
            assert doc["spans"]
            client.close()


class TestTraceCli:
    def _capture(self, tmp_path):
        path = tmp_path / "capture.json"
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with DaemonThread(spec, capture_path=str(path)) as handle:
            client = Client(handle.host, handle.port)
            for _ in range(2):
                client.call("POST", "/retrieve", PAPER_WIRE)
            client.close()
        return path

    def test_capture_rendering(self, tmp_path, capsys):
        path = self._capture(tmp_path)
        assert cli.main(["trace", "--capture", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace req-00000000" in out
        assert "request" in out and "retrieval" in out

    def test_single_request_by_bare_index(self, tmp_path, capsys):
        path = self._capture(tmp_path)
        assert cli.main(["trace", "--capture", str(path), "--request", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace req-00000001" in out
        assert "trace req-00000000" not in out

    def test_json_output(self, tmp_path, capsys):
        path = self._capture(tmp_path)
        assert cli.main(["trace", "--capture", str(path), "--json"]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert [d["trace_id"] for d in documents] == [
            "req-00000000", "req-00000001",
        ]

    def test_batches_flag_includes_pipeline_traces(self, tmp_path, capsys):
        path = self._capture(tmp_path)
        assert cli.main(["trace", "--capture", str(path), "--batches"]) == 0
        out = capsys.readouterr().out
        assert "trace batch-00000000" in out

    def test_journal_rendering(self, tmp_path, capsys):
        journal_dir = tmp_path / "journal"
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with DaemonThread(spec, journal_dir=str(journal_dir),
                          hard_stop=True) as handle:
            client = Client(handle.host, handle.port)
            client.call("POST", "/retrieve", PAPER_WIRE)
            client.close()
        assert cli.main(["trace", "--journal", str(journal_dir)]) == 0
        out = capsys.readouterr().out
        assert "trace req-00000000" in out

    def test_needs_exactly_one_source(self, capsys):
        assert cli.main(["trace"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestCompareTraceIds:
    def test_diff_summary_names_the_trace_id(self, capsys):
        mismatches = cli._report_compare_mismatches(
            "serve-trace", "sharded", "unsharded",
            [[(1, 0.9)], [(2, 0.8)], [(3, 0.7)]],
            [[(1, 0.9)], [(9, 0.1)], [(3, 0.7)]],
        )
        assert mismatches == 1
        err = capsys.readouterr().err
        assert "request 1 (trace req-00000001)" in err


class TestServeLogs:
    def test_structured_start_and_drain_lines(self, caplog):
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            with DaemonThread(spec):
                pass
        messages = [record.getMessage() for record in caplog.records]
        start = [m for m in messages if m.startswith("event=serve.start ")]
        assert start and "spec_hash=" in start[0] and "engine=single" in start[0]
        assert any(m.startswith("event=serve.drain ") for m in messages)

    def test_recovery_summary_line(self, caplog, tmp_path):
        journal_dir = tmp_path / "journal"
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
        with DaemonThread(spec, journal_dir=str(journal_dir),
                          hard_stop=True) as handle:
            client = Client(handle.host, handle.port)
            client.call("POST", "/retrieve", PAPER_WIRE)
            client.close()
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            with DaemonThread(spec, journal_dir=str(journal_dir)):
                pass
        messages = [record.getMessage() for record in caplog.records]
        recovered = [m for m in messages if m.startswith("event=serve.recovered ")]
        assert recovered and "replayed_requests=1" in recovered[0]

    def test_log_level_flag_parses(self):
        args = cli.build_parser().parse_args(["serve", "--log-level", "warning"])
        assert args.log_level == "warning"


class TestSpecObservabilityAxis:
    def test_wire_round_trip(self):
        spec = ServingSpec(
            random=1,
            observability=ObservabilityConfig(
                enabled=True, trace_sample_rate=0.25, trace_ring=64
            ),
        )
        rebuilt = ServingSpec.from_wire(json.loads(json.dumps(spec.to_wire())))
        assert rebuilt == spec
        assert rebuilt.observability.trace_sample_rate == 0.25

    def test_cli_args(self):
        args = cli.build_parser().parse_args(
            ["serve-trace", "--random", "4", "--trace-sample-rate", "0.5",
             "--trace-ring", "32"]
        )
        spec = ServingSpec.from_args(args)
        assert spec.observability.trace_sample_rate == 0.5
        assert spec.observability.trace_ring == 32
        args = cli.build_parser().parse_args(
            ["serve-trace", "--random", "4", "--no-observability"]
        )
        assert not ServingSpec.from_args(args).observability.enabled

    def test_spec_hash_is_stable_and_sensitive(self):
        first = ServingSpec(random=1)
        second = ServingSpec(random=1)
        assert first.spec_hash() == second.spec_hash()
        assert len(first.spec_hash()) == 12
        assert first.spec_hash() != ServingSpec(random=2).spec_hash()
