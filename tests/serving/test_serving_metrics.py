"""Metrics collector: percentiles, histograms and report shape."""

import json

import pytest

from repro.serving import MetricsCollector, percentile, percentiles


class TestPercentile:
    def test_nearest_rank_on_known_sample(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_reported_value_is_always_observed(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.5) in values
        assert percentile(values, 0.0) == 1.0

    def test_empty_sample_and_bad_fraction(self):
        assert percentile([], 0.5) is None
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_bad_fraction_raises_identically_for_empty_samples(self):
        """Regression: validation happens before the sample emptiness check.

        A bad fraction used to slip through silently on empty samples
        (returning ``None``); now the fraction-range check is hoisted ahead
        of the sample inspection, so callers learn about the bug regardless
        of traffic volume.
        """
        for bad in (-0.1, 1.5, float("nan")):
            with pytest.raises(ValueError):
                percentile([], bad)
            with pytest.raises(ValueError):
                percentile([1.0, 2.0], bad)
            with pytest.raises(ValueError):
                percentiles([], (0.5, bad))
            with pytest.raises(ValueError):
                percentiles([1.0, 2.0], (0.5, bad))

    def test_percentiles_matches_single_calls(self):
        values = [float(v) for v in range(1, 101)]
        assert percentiles(values, (0.5, 0.95, 0.99)) == (
            percentile(values, 0.5),
            percentile(values, 0.95),
            percentile(values, 0.99),
        )
        assert percentiles([], (0.5, 0.9)) == (None, None)


class TestCollector:
    def _collector(self):
        collector = MetricsCollector()
        collector.observe_batch(2)
        collector.observe_batch(2)
        collector.observe_batch(1)
        collector.observe_request("served_hardware", latency_us=100.0, hardware_cycles=500)
        collector.observe_request("served_software", latency_us=400.0, software_cycles=4000)
        collector.observe_request("rejected_deadline")
        collector.observe_request("failed")
        collector.wall_seconds = 0.5
        return collector

    def test_report_aggregates(self):
        report = self._collector().report()
        assert report["requests"] == 4
        assert report["served"] == 2
        assert report["rejected"] == 2
        assert report["rejection_rate"] == 0.5
        assert report["statuses"]["served_hardware"] == 1
        assert report["latency"]["p50_us"] == 100.0
        assert report["latency"]["max_us"] == 400.0
        assert report["batches"] == {
            "count": 3, "mean_size": 5 / 3, "histogram": {1: 1, 2: 2}
        }
        assert report["modelled_cycles"] == {"hardware": 500, "software": 4000}
        assert report["throughput_rps"] == 8.0

    def test_report_is_json_serialisable(self):
        json.dumps(self._collector().report())

    def test_empty_collector_reports_zeros(self):
        report = MetricsCollector().report()
        assert report["requests"] == 0
        assert report["rejection_rate"] == 0.0
        assert report["latency"]["p50_us"] is None
        assert report["batches"]["count"] == 0
        assert report["throughput_rps"] is None
