"""HTTP surface of the serving daemon (``repro serve``).

Exercises the tentpole's network boundary over real loopback sockets: the
retrieve/learn/metrics/healthz routes, the structured 4xx/503 error bodies,
the wall-clock deadline mapping and the capture document.  The heavier
bit-identity soak lives in ``tests/integration/test_daemon_soak.py``.
"""

import http.client
import json
import time

import pytest

from repro.serving import DaemonThread, ServingSpec, replay_capture

#: The paper's FIR-equalizer request (Fig. 3) in wire shorthand.
PAPER_WIRE = {"type_id": 1, "constraints": {"1": 16, "3": 1, "4": 40}}

#: A well-formed /learn event adding a fresh software implementation.
LEARN_EVENT = {
    "op": "add_implementation",
    "type_id": 1,
    "implementation": {
        "implementation_id": 9001,
        "target": "gpp",
        "name": "learned",
        "attributes": {"1": 16, "3": 1, "4": 40},
    },
}


class Client:
    """Minimal keep-alive JSON client over http.client."""

    def __init__(self, host, port):
        self.connection = http.client.HTTPConnection(host, port, timeout=30)

    def call(self, method, path, payload=None, raw=None):
        body = raw if raw is not None else (
            json.dumps(payload) if payload is not None else None
        )
        self.connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = self.connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))

    def close(self):
        self.connection.close()


@pytest.fixture
def daemon():
    spec = ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)
    with DaemonThread(spec, max_request_batch=4) as handle:
        client = Client(handle.host, handle.port)
        yield handle, client
        client.close()


class TestRoutes:
    def test_healthz(self, daemon):
        _, client = daemon
        status, body = client.call("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["engine"] == "single"
        assert body["kind"] == "health"

    def test_unknown_route_is_404(self, daemon):
        _, client = daemon
        status, body = client.call("GET", "/nope")
        assert status == 404
        assert body["error"] == "not-found"

    def test_wrong_method_is_405(self, daemon):
        _, client = daemon
        status, body = client.call("GET", "/retrieve")
        assert status == 405
        assert body["error"] == "method-not-allowed"

    def test_single_retrieve_returns_a_served_record(self, daemon):
        _, client = daemon
        status, body = client.call("POST", "/retrieve", PAPER_WIRE)
        assert status == 200
        assert body["kind"] == "served-request"
        assert body["status"] in ("served_hardware", "served_software")
        assert body["ranking"], "expected a non-empty ranking"

    def test_batch_retrieve_returns_per_request_results(self, daemon):
        _, client = daemon
        status, body = client.call(
            "POST", "/retrieve", {"requests": [PAPER_WIRE, PAPER_WIRE]}
        )
        assert status == 200
        assert body["kind"] == "served-batch"
        assert len(body["results"]) == 2
        assert [result["index"] for result in body["results"]] == sorted(
            result["index"] for result in body["results"]
        )

    def test_metrics_scrape(self, daemon):
        _, client = daemon
        client.call("POST", "/retrieve", PAPER_WIRE)
        status, body = client.call("GET", "/metrics?format=json")
        assert status == 200
        assert body["kind"] == "serving-metrics"
        assert body["metrics"]["requests"] >= 1
        assert "latency" in body["metrics"] and "statuses" in body["metrics"]
        daemon_section = body["daemon"]
        assert daemon_section["engine"] == "single"
        assert daemon_section["requests"] >= 1
        assert daemon_section["reconfiguring"] is False


class TestErrorBodies:
    def test_malformed_json_is_a_structured_400(self, daemon):
        _, client = daemon
        status, body = client.call("POST", "/retrieve", raw="{not json")
        assert status == 400
        assert body["error"] == "bad-request"
        assert "invalid JSON" in body["reason"]

    def test_unknown_case_type_is_a_failed_record(self, daemon):
        _, client = daemon
        status, body = client.call(
            "POST", "/retrieve", {"type_id": 999, "constraints": {"1": 16}}
        )
        assert status == 400
        assert body["status"] == "failed"

    def test_impossible_deadline_is_a_503_rejection(self, daemon):
        _, client = daemon
        # deadline_ms maps through the wall-clock-to-cycles path; 1 ns of
        # budget can never cover the modelled retrieval cycles.
        status, body = client.call(
            "POST", "/retrieve", dict(PAPER_WIRE, deadline_ms=1e-6)
        )
        assert status == 503
        assert body["status"] == "rejected_deadline"

    def test_zero_deadline_is_rejected_not_crashed(self, daemon):
        _, client = daemon
        status, body = client.call(
            "POST", "/retrieve", dict(PAPER_WIRE, deadline_us=0)
        )
        assert status in (503, 200)  # 0 may mean "no deadline" upstream; never 5xx crash
        assert body.get("status") in ("rejected_deadline", "served_hardware",
                                      "served_software")

    def test_bad_deadline_is_a_schema_error(self, daemon):
        _, client = daemon
        status, body = client.call(
            "POST", "/retrieve", dict(PAPER_WIRE, deadline_us="soon")
        )
        assert status == 400
        assert "deadline_us" in body["reason"]

    def test_oversized_batch_is_413(self, daemon):
        _, client = daemon
        status, body = client.call(
            "POST", "/retrieve", {"requests": [PAPER_WIRE] * 5}
        )
        assert status == 413
        assert body["error"] == "batch-too-large"
        assert body["details"]["limit"] == 4

    def test_empty_batch_is_400(self, daemon):
        _, client = daemon
        status, body = client.call("POST", "/retrieve", {"requests": []})
        assert status == 400


class TestLearn:
    def test_idle_learn_applies_immediately(self, daemon):
        handle, client = daemon
        status, body = client.call("POST", "/learn", {"events": [LEARN_EVENT]})
        assert status == 200
        assert body["kind"] == "learning-applied"
        assert body["applied"] == 1
        assert body["implementations"] > 0

    def test_malformed_event_is_rejected_before_queueing(self, daemon):
        _, client = daemon
        status, body = client.call(
            "POST", "/learn", {"events": [{"op": "explode", "type_id": 1}]}
        )
        assert status == 400
        assert "unknown mutation op" in body["reason"]

    def test_semantic_failure_is_a_409(self, daemon):
        _, client = daemon
        status, body = client.call(
            "POST", "/learn",
            {"events": [{"op": "remove_implementation", "type_id": 1,
                         "implementation_id": 123456}]},
        )
        assert status == 409
        assert body["error"] == "mutation-failed"

    def test_learned_implementation_is_retrievable_afterwards(self, daemon):
        handle, client = daemon
        before = handle.daemon.case_base.count_implementations()
        event = dict(LEARN_EVENT)
        event["implementation"] = dict(
            LEARN_EVENT["implementation"], implementation_id=9002
        )
        status, body = client.call("POST", "/learn", {"events": [event]})
        assert status == 200 and body["applied"] == 1
        assert body["implementations"] == before + 1
        status, body = client.call("POST", "/retrieve", PAPER_WIRE)
        assert status == 200
        assert body["ranking"], "the mutated case base must still serve"


class TestReconfiguration:
    def test_retrieve_during_cluster_reconfiguration_is_503(self):
        import threading

        spec = ServingSpec(random=1, cluster=True, devices=1, software_workers=1,
                           max_batch=64, max_wait_us=400_000.0)
        with DaemonThread(spec) as handle:
            client = Client(handle.host, handle.port)
            blocked = Client(handle.host, handle.port)
            results = {}

            def pending_retrieve():
                results["blocked"] = blocked.call("POST", "/retrieve", PAPER_WIRE)

            thread = threading.Thread(target=pending_retrieve)
            thread.start()
            # Wait until the request is stamped into the open micro-batch.
            deadline = time.time() + 10
            while time.time() < deadline:
                _, metrics = client.call("GET", "/metrics?format=json")
                if metrics["daemon"]["pending"] >= 1:
                    break
                time.sleep(0.005)
            assert metrics["daemon"]["pending"] >= 1

            status, body = client.call("POST", "/learn", {"events": [LEARN_EVENT]})
            assert status == 202
            assert body["kind"] == "learning-queued"
            assert body["reconfiguring"] is True

            status, body = client.call("POST", "/retrieve", PAPER_WIRE)
            assert status == 503
            assert body["error"] == "reconfiguring"
            assert body["details"]["queued_mutation_batches"] == 1

            # The max_wait timer flushes the batch, applying the mutation and
            # closing the reconfiguration window.
            thread.join(timeout=30)
            assert results["blocked"][0] == 200
            deadline = time.time() + 10
            while time.time() < deadline:
                _, metrics = client.call("GET", "/metrics?format=json")
                if not metrics["daemon"]["reconfiguring"]:
                    break
                time.sleep(0.01)
            assert metrics["daemon"]["reconfiguring"] is False
            client.close()
            blocked.close()


class TestCapture:
    def test_capture_replays_bit_identically(self, daemon):
        _, client = daemon
        for _ in range(3):
            client.call("POST", "/retrieve", PAPER_WIRE)
        client.call("POST", "/retrieve", {"requests": [PAPER_WIRE, PAPER_WIRE]})
        status, capture = client.call("GET", "/capture")
        assert status == 200
        assert capture["kind"] == "serving-capture"
        report = replay_capture(capture)
        replayed = [
            json.loads(json.dumps(record.to_dict())) for record in report.served
        ]
        assert replayed == capture["responses"]


class TestDrain:
    """The SIGTERM path: in-flight micro-batches flush, the journal syncs a
    final commit group, the capture closes -- and the drained capture replays
    bit-identically."""

    def test_stop_with_inflight_batch_flushes_journals_and_captures(
        self, tmp_path
    ):
        import asyncio

        from repro.api import schemas
        from repro.serving.daemon import ServingDaemon

        spec = ServingSpec(random=1, max_batch=64, max_wait_us=500_000.0, n_best=3)
        journal_dir = tmp_path / "journal"
        capture_path = tmp_path / "capture.json"
        request = schemas.request_from_wire(PAPER_WIRE, requester="http")

        async def scenario():
            daemon = ServingDaemon(spec, journal_dir=str(journal_dir))
            await daemon.start()
            while not daemon.ready:  # recovery of the empty directory
                await asyncio.sleep(0.001)
            # Three requests stamped into one still-open micro-batch (the
            # huge max_wait keeps it in flight), plus a /learn deferred to
            # the batch boundary.
            futures = [
                daemon.batcher.submit(request, None, "") for _ in range(3)
            ]
            status, body = await daemon._handle_learn({"events": [LEARN_EVENT]})
            assert status == 202 and body["kind"] == "learning-queued"
            assert len(daemon.batcher.pending) == 3
            assert not any(future.done() for future in futures)
            await daemon.stop(capture_path=str(capture_path))
            # The drain flushed the batch and resolved every waiting client.
            assert all(future.done() for future in futures)
            assert not daemon.batcher.pending
            assert not daemon._queued_mutations
            return [future.result() for future in futures], daemon

        records, daemon = asyncio.run(scenario())
        assert all(record.status.served for record in records)

        # The journal's final commit group carries the shutdown marker, so a
        # later restart knows the previous incarnation drained cleanly.
        journal_lines = [
            json.loads(line)
            for line in (journal_dir / "journal-0.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip()
        ]
        assert journal_lines[-1]["kind"] == "journal-commit"
        assert journal_lines[-1]["shutdown"] is True
        assert any(
            line["kind"] == "journal-trace" for line in journal_lines
        )
        assert any(line["kind"] == "journal-learn" for line in journal_lines)

        # The drained capture replays bit-identically, learn batch included.
        capture = json.loads(capture_path.read_text(encoding="utf-8"))
        assert capture["kind"] == "serving-capture"
        assert len(capture["responses"]) == 3
        assert capture["learn_events"]
        report = replay_capture(capture)
        replayed = [
            json.loads(json.dumps(record.to_dict())) for record in report.served
        ]
        assert replayed == capture["responses"]

    def test_thread_exit_drains_like_sigterm(self, tmp_path):
        """The DaemonThread context exit takes the same graceful path."""
        import threading

        capture_path = tmp_path / "capture.json"
        spec = ServingSpec(random=1, max_batch=64, max_wait_us=400_000.0, n_best=3)
        results = {}
        with DaemonThread(spec, capture_path=str(capture_path)) as handle:
            client = Client(handle.host, handle.port)
            blocked = Client(handle.host, handle.port)

            def pending_retrieve():
                try:
                    results["blocked"] = blocked.call(
                        "POST", "/retrieve", PAPER_WIRE
                    )
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    results["error"] = exc

            thread = threading.Thread(target=pending_retrieve)
            thread.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                _, metrics = client.call("GET", "/metrics?format=json")
                if metrics["daemon"]["pending"] >= 1:
                    break
                time.sleep(0.005)
            assert metrics["daemon"]["pending"] >= 1
            client.close()
        # The context exit drained the in-flight batch and wrote the capture.
        thread.join(timeout=30)
        blocked.close()
        capture = json.loads(capture_path.read_text(encoding="utf-8"))
        assert len(capture["responses"]) == 1
        report = replay_capture(capture)
        replayed = [
            json.loads(json.dumps(record.to_dict())) for record in report.served
        ]
        assert replayed == capture["responses"]
