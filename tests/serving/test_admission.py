"""Admission control: exact service times, the deadline gate and degradation."""

import pytest

from repro.core import ReproError, paper_case_base
from repro.hardware import HardwareRetrievalUnit
from repro.serving import (
    AdmissionController,
    AdmissionVerdict,
    TimedRequest,
    synthetic_trace,
)
from repro.software import SoftwareRetrievalUnit
from repro.tools import CaseBaseGenerator, table3_spec


@pytest.fixture(scope="module")
def table3():
    generator = CaseBaseGenerator(table3_spec(), seed=2004)
    case_base = generator.case_base()
    return case_base, synthetic_trace(case_base, 48, mean_interarrival_us=5.0, seed=1)


class TestServiceTimes:
    def test_hardware_times_are_the_cycle_models_exact_times(self, table3):
        case_base, trace = table3
        controller = AdmissionController(case_base)
        requests = [entry.request for entry in trace[:6]]
        times = controller.hardware_times_us(requests)
        reference = HardwareRetrievalUnit(case_base).run_batch(requests)
        assert times == [(result.cycles, result.time_us) for result in reference]

    def test_software_times_are_the_cost_models_exact_times(self, table3):
        case_base, trace = table3
        controller = AdmissionController(case_base)
        requests = [entry.request for entry in trace[:6]]
        times = controller.software_times_us(requests)
        reference = SoftwareRetrievalUnit(case_base).run_batch(requests)
        assert times == [(result.cycles, result.time_us) for result in reference]


class TestDeadlineGate:
    def test_no_deadline_admits_everything_to_hardware(self, table3):
        case_base, trace = table3
        controller = AdmissionController(case_base)
        decisions = controller.assess_batch(trace, trace[-1].arrival_us)
        assert all(
            decision.verdict is AdmissionVerdict.ADMIT_HARDWARE for decision in decisions
        )

    def test_zero_deadline_rejects_everything(self, table3):
        case_base, trace = table3
        controller = AdmissionController(case_base)
        decisions = controller.assess_batch(
            trace, trace[-1].arrival_us, default_deadline_us=0.0
        )
        assert all(
            decision.verdict is AdmissionVerdict.REJECT_DEADLINE for decision in decisions
        )
        assert all(decision.reason for decision in decisions)

    def test_tight_deadline_produces_admit_degrade_and_reject(self, table3):
        """A saturated hardware queue overflows onto the software path."""
        case_base, trace = table3
        controller = AdmissionController(case_base)
        close_us = trace[-1].arrival_us
        decisions = controller.assess_batch(trace, close_us, default_deadline_us=300.0)
        verdicts = {decision.verdict for decision in decisions}
        assert AdmissionVerdict.ADMIT_HARDWARE in verdicts
        assert AdmissionVerdict.DEGRADE_SOFTWARE in verdicts
        assert AdmissionVerdict.REJECT_DEADLINE in verdicts
        # Every non-rejected decision's modelled latency meets the deadline.
        for decision in decisions:
            if decision.verdict.admitted:
                assert decision.latency_us <= 300.0

    def test_server_occupancy_accumulates_in_batch_order(self, table3):
        case_base, trace = table3
        controller = AdmissionController(case_base)
        decisions = controller.assess_batch(trace[:8], trace[7].arrival_us)
        occupancy = 0.0
        for decision in decisions:
            assert decision.queue_us == occupancy
            occupancy += decision.service_us

    def test_degradation_can_be_disabled(self, table3):
        case_base, trace = table3
        controller = AdmissionController(case_base, degrade_to_software=False)
        decisions = controller.assess_batch(
            trace, trace[-1].arrival_us, default_deadline_us=300.0
        )
        assert all(
            decision.verdict is not AdmissionVerdict.DEGRADE_SOFTWARE
            for decision in decisions
        )

    def test_per_request_deadline_overrides_the_default(self, table3):
        case_base, trace = table3
        controller = AdmissionController(case_base)
        strict = TimedRequest(
            arrival_us=trace[0].arrival_us,
            request=trace[0].request,
            deadline_us=0.0,
        )
        decisions = controller.assess_batch(
            [strict, trace[1]], trace[1].arrival_us, default_deadline_us=None
        )
        assert decisions[0].verdict is AdmissionVerdict.REJECT_DEADLINE
        assert decisions[1].verdict is AdmissionVerdict.ADMIT_HARDWARE

    def test_empty_batch_yields_no_decisions(self, table3):
        case_base, _ = table3
        assert AdmissionController(case_base).assess_batch([], 0.0) == []


class TestStepwiseParity:
    def test_stepwise_and_vectorized_predictions_agree(self, table3):
        """The gate decisions are engine-independent (cycle counts are exact)."""
        case_base, trace = table3
        batch = trace[:12]
        close_us = batch[-1].arrival_us
        kwargs = dict(default_deadline_us=500.0)
        vectorized = AdmissionController(case_base, cycle_engine="vectorized")
        stepwise = AdmissionController(case_base, cycle_engine="stepwise")
        assert (
            vectorized.assess_batch(batch, close_us, **kwargs)
            == stepwise.assess_batch(batch, close_us, **kwargs)
        )


class TestValidation:
    def test_rejects_bad_clock_and_engine(self):
        with pytest.raises(ReproError, match="clock_mhz"):
            AdmissionController(paper_case_base(), clock_mhz=0.0)
        with pytest.raises(ReproError, match="cycle engine"):
            AdmissionController(paper_case_base(), cycle_engine="warp")

    def test_hardware_config_clock_drives_both_servers(self):
        """An explicit hardware_config keeps the software model at its clock."""
        from repro.hardware import HardwareConfig

        controller = AdmissionController(
            paper_case_base(),
            clock_mhz=66.0,
            hardware_config=HardwareConfig(clock_mhz=33.0),
        )
        assert controller.clock_mhz == 33.0
        assert controller._software_cost_model.clock_mhz == 33.0
        request = synthetic_trace(paper_case_base(), 1, seed=0)[0].request
        (hw_cycles, hw_us), = controller.hardware_times_us([request])
        (sw_cycles, sw_us), = controller.software_times_us([request])
        assert hw_us == hw_cycles / 33.0
        assert sw_us == sw_cycles / 33.0


class TestOutOfCoreAdmission:
    """Case bases past 16-bit CB-MEM addressing: no modelled server exists.

    The host engine serves them *unpriced* -- admission reports why, checks
    only the observable wait against the deadline, and never crashes the
    serving stack (ISSUE 10 regression: ``serve-trace --workload
    huge-casebase`` used to die in the hardware unit's image encoder).
    """

    @pytest.fixture(scope="class")
    def huge(self):
        from repro.tools import GeneratorSpec

        spec = GeneratorSpec(
            type_count=4,
            implementations_per_type=800,
            attributes_per_implementation=10,
            attribute_type_count=10,
        )
        case_base = CaseBaseGenerator(spec, seed=6).case_base()
        return case_base, synthetic_trace(
            case_base, 12, mean_interarrival_us=5.0, seed=2
        )

    def test_hardware_unit_reports_unavailable(self, huge):
        case_base, trace = huge
        controller = AdmissionController(case_base)
        assert controller.hardware_unit is None
        assert "does not fit" in controller.hardware_unavailable_reason
        with pytest.raises(ReproError, match="does not fit"):
            controller.hardware_times_us([trace[0].request])

    def test_unpriced_serving_admits_within_the_wait_budget(self, huge):
        case_base, trace = huge
        controller = AdmissionController(case_base)
        decisions = controller.assess_batch(
            trace, close_us=trace[-1].arrival_us, default_deadline_us=1e9
        )
        assert len(decisions) == len(trace)
        for decision in decisions:
            assert decision.verdict is AdmissionVerdict.DEGRADE_SOFTWARE
            assert decision.cycles == 0 and decision.service_us == 0.0
            assert "does not fit" in decision.reason
        # the software model was probed exactly once and remembered why
        assert "does not fit" in controller.software_unavailable_reason

    def test_blown_wait_still_rejects(self, huge):
        case_base, trace = huge
        controller = AdmissionController(case_base)
        close_us = trace[-1].arrival_us + 100.0  # every entry has waited
        decisions = controller.assess_batch(
            trace, close_us=close_us, default_deadline_us=50.0
        )
        assert all(
            decision.verdict is AdmissionVerdict.REJECT_DEADLINE
            for decision in decisions
        )
