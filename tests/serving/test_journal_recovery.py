"""Crash recovery through the durable delta journal (``repro serve --journal``).

The PR 7 acceptance property: kill a journaled daemon mid-run (no drain, no
final commit -- the in-process stand-in for ``kill -9``), restart it on the
same directory, and the recovered daemon must (a) still hold every reply a
client observed, bit-for-bit, (b) continue the killed incarnation's absolute
index frame, and (c) produce a capture whose offline replay is bit-identical
-- rankings, similarity doubles, admission decisions.
"""

import asyncio
import http.client
import json

import pytest

from repro.core.journal import JournalError
from repro.serving import DaemonThread, ServingSpec, replay_capture
from repro.serving.daemon import ServingDaemon

PAPER_WIRE = {"type_id": 1, "constraints": {"1": 16, "3": 1, "4": 40}}

LEARN_EVENT = {
    "op": "add_implementation",
    "type_id": 1,
    "implementation": {
        "implementation_id": 9001,
        "target": "gpp",
        "name": "learned",
        "attributes": {"1": 16, "3": 1, "4": 40},
    },
}

ENVELOPE_KEYS = {"kind", "schema_version"}


def _spec() -> ServingSpec:
    return ServingSpec(random=1, max_batch=4, max_wait_us=20_000.0, n_best=3)


def _strip(body):
    return {k: v for k, v in body.items() if k not in ENVELOPE_KEYS}


class Client:
    def __init__(self, host, port):
        self.connection = http.client.HTTPConnection(host, port, timeout=30)

    def call(self, method, path, payload=None):
        body = json.dumps(payload) if payload is not None else None
        self.connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = self.connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))

    def close(self):
        self.connection.close()


class TestFreshJournal:
    def test_journal_files_readiness_and_metrics(self, tmp_path):
        with DaemonThread(_spec(), journal_dir=str(tmp_path)) as handle:
            client = Client(handle.host, handle.port)
            status, body = client.call("GET", "/readyz")
            assert status == 200 and body["status"] == "ready"
            status, body = client.call("GET", "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, _ = client.call("POST", "/retrieve", PAPER_WIRE)
            assert status == 200
            status, metrics = client.call("GET", "/metrics?format=json")
            journal = metrics["daemon"]["journal"]
            assert journal["generation"] == 0
            assert journal["records_since_snapshot"] >= 1
            assert journal["base_index"] == 0
            client.close()
        names = {path.name for path in tmp_path.iterdir()}
        assert "snapshot-0.json" in names
        assert "journal-0.jsonl" in names


class TestCrashRecovery:
    def test_kill_recover_and_serve_bit_identically(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        responses_a = []
        with DaemonThread(
            _spec(), journal_dir=journal_dir, hard_stop=True
        ) as handle:
            client = Client(handle.host, handle.port)
            status, body = client.call("POST", "/learn", {"events": [LEARN_EVENT]})
            assert status == 200 and body["applied"] == 1
            for _ in range(3):
                status, body = client.call("POST", "/retrieve", PAPER_WIRE)
                assert status == 200
                responses_a.append(_strip(body))
            status, body = client.call(
                "POST", "/retrieve", {"requests": [PAPER_WIRE, PAPER_WIRE]}
            )
            assert status == 200
            responses_a.extend(body["results"])
            implementations = handle.daemon.case_base.count_implementations()
            client.close()
        # hard_stop dropped the socket without draining or committing --
        # but every reply above was journaled *before* it was sent.

        with DaemonThread(_spec(), journal_dir=journal_dir) as handle:
            client = Client(handle.host, handle.port)
            # The /learn mutation survived the crash.
            assert handle.daemon.case_base.count_implementations() == implementations
            status, body = client.call("POST", "/retrieve", PAPER_WIRE)
            assert status == 200
            new_record = _strip(body)
            status, capture = client.call("GET", "/capture")
            assert status == 200
            status, metrics = client.call("GET", "/metrics?format=json")
            assert metrics["daemon"]["journal"]["generation"] == 1
            client.close()

        # (a) Every pre-kill reply is in the recovered capture, bit-for-bit.
        by_index = {record["index"]: record for record in capture["responses"]}
        for record in responses_a:
            assert by_index[record["index"]] == record
        # (b) New arrivals continue the killed incarnation's numbering.
        assert new_record["index"] == len(responses_a)
        assert by_index[new_record["index"]] == new_record
        # (c) Offline replay of the recovered capture is bit-identical:
        # rankings, similarity doubles, admission decisions.
        report = replay_capture(capture)
        replayed = [
            json.loads(json.dumps(record.to_dict())) for record in report.served
        ]
        assert replayed == capture["responses"]

    def test_double_crash_recovers_twice(self, tmp_path):
        """Crash, recover, crash again: the second recovery still reconciles."""
        journal_dir = str(tmp_path / "journal")
        total = 0
        for _ in range(2):
            with DaemonThread(
                _spec(), journal_dir=journal_dir, hard_stop=True
            ) as handle:
                client = Client(handle.host, handle.port)
                for _ in range(2):
                    status, body = client.call("POST", "/retrieve", PAPER_WIRE)
                    assert status == 200
                    assert body["index"] == total
                    total += 1
                client.close()
        with DaemonThread(_spec(), journal_dir=journal_dir) as handle:
            client = Client(handle.host, handle.port)
            status, body = client.call("POST", "/retrieve", PAPER_WIRE)
            assert status == 200 and body["index"] == total
            client.close()


class TestCompaction:
    def test_snapshot_interval_rotates_generations(self, tmp_path):
        with DaemonThread(
            _spec(), journal_dir=str(tmp_path), snapshot_interval=1
        ) as handle:
            client = Client(handle.host, handle.port)
            for _ in range(4):
                status, _ = client.call("POST", "/retrieve", PAPER_WIRE)
                assert status == 200
            status, metrics = client.call("GET", "/metrics?format=json")
            generation = metrics["daemon"]["journal"]["generation"]
            assert generation >= 1
            client.close()
        # Exactly one generation survives on disk.
        names = sorted(path.name for path in tmp_path.iterdir())
        snapshots = [n for n in names if n.startswith("snapshot-")]
        journals = [n for n in names if n.startswith("journal-")]
        assert len(snapshots) == 1 and len(journals) <= 1

        # A compacted journal (empty tail) still recovers and serves.
        with DaemonThread(_spec(), journal_dir=str(tmp_path)) as handle:
            client = Client(handle.host, handle.port)
            status, body = client.call("POST", "/retrieve", PAPER_WIRE)
            assert status == 200
            assert body["index"] == 4  # the absolute frame came from the snapshot
            client.close()


class TestRecoveryFailures:
    def test_spec_mismatch_is_an_explicit_error(self, tmp_path):
        with DaemonThread(_spec(), journal_dir=str(tmp_path)) as handle:
            client = Client(handle.host, handle.port)
            client.call("POST", "/retrieve", PAPER_WIRE)
            client.close()
        different = ServingSpec(
            random=1, max_batch=4, max_wait_us=20_000.0, n_best=2
        )
        with pytest.raises(JournalError, match="different serving spec"):
            with DaemonThread(different, journal_dir=str(tmp_path)):
                pass  # pragma: no cover - __enter__ raises


class TestReadinessGating:
    def test_unready_daemon_gates_everything_but_health(self, tmp_path):
        # Constructed but not started: exactly the pre-recovery state.
        daemon = ServingDaemon(_spec(), journal_dir=str(tmp_path))
        assert not daemon.ready
        status, body = daemon._handle_healthz()
        assert status == 200 and body["status"] == "starting"  # liveness
        status, body = daemon._handle_readyz()
        assert status == 503 and body["status"] == "starting"  # readiness
        status, body = asyncio.run(daemon._dispatch("POST", "/retrieve", b"{}"))
        assert status == 503 and body["error"] == "starting"
        status, body = asyncio.run(daemon._dispatch("GET", "/healthz", b""))
        assert status == 200

    def test_recovery_failure_surfaces_on_readyz(self, tmp_path):
        daemon = ServingDaemon(_spec(), journal_dir=str(tmp_path))
        daemon.recovery_error = JournalError("boom")
        status, body = daemon._handle_readyz()
        assert status == 500 and body["error"] == "recovery-failed"
        status, body = asyncio.run(daemon._dispatch("POST", "/retrieve", b"{}"))
        assert status == 503 and body["error"] == "recovery-failed"

    def test_unjournaled_daemon_is_ready_immediately(self):
        daemon = ServingDaemon(_spec())
        assert daemon.ready
        assert daemon._handle_readyz()[0] == 200
