"""Graceful degradation: worker health, quarantine, requeue, stream retries.

The resilience contract for the cluster router: injected faults may change
*capacity* (what gets served, when) but never *answers* -- every request a
faulty fleet serves must carry rankings bit-identical to a healthy
single-device replay, and every request it cannot serve must end in an
explicit terminal status, never a silent wrong answer.
"""

import pytest

from repro.core import ReproError
from repro.platform import DeviceFleet
from repro.resilience import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.serving import (
    ClusterServingEngine,
    ServingConfig,
    ServingEngine,
    ServingStatus,
    WorkerHealth,
    synthetic_trace,
)
from repro.serving.cluster import HEALTHY, QUARANTINED, SUSPECT
from repro.tools import CaseBaseGenerator, GeneratorSpec


@pytest.fixture
def case_base():
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=6,
            implementations_per_type=8,
            attributes_per_implementation=8,
            attribute_type_count=10,
        ),
        seed=7,
    ).case_base()


def _trace(case_base, count=60, interarrival=150.0, seed=3):
    return synthetic_trace(
        case_base, count, mean_interarrival_us=interarrival, seed=seed
    )


def _injector(*faults, seed=2004):
    return FaultInjector(FaultPlan(seed=seed, faults=tuple(faults)))


class TestWorkerHealthUnit:
    def test_lifecycle_healthy_suspect_quarantined(self):
        health = WorkerHealth(["a", "b"], quarantine_after=2,
                              probe_interval_us=1000.0)
        assert health.states == {"a": HEALTHY, "b": HEALTHY}
        health.observe_failure("a", 100.0)
        assert health.states["a"] == SUSPECT
        assert health.routable("a", 100.0)
        health.observe_failure("a", 200.0)
        assert health.states["a"] == QUARANTINED
        assert not health.routable("a", 200.0)
        assert health.states["b"] == HEALTHY

    def test_probe_readmission(self):
        health = WorkerHealth(["a"], quarantine_after=1, probe_interval_us=1000.0)
        health.observe_failure("a", 100.0)
        assert not health.routable("a", 500.0)
        # Probe window opens at quarantine + interval; routable again then.
        assert health.routable("a", 1100.0)
        # Early recovery observations inside the quarantine are ignored...
        health.observe_recovery("a", 500.0)
        assert health.states["a"] == QUARANTINED
        # ...but a recovery observed at probe time re-admits for good.
        health.observe_recovery("a", 1100.0)
        assert health.states["a"] == HEALTHY
        assert health.failures["a"] == 0

    def test_counts(self):
        health = WorkerHealth(["a", "b", "c"], quarantine_after=1)
        health.observe_failure("b", 0.0)
        assert health.counts() == {HEALTHY: 2, SUSPECT: 0, QUARANTINED: 1}

    def test_validation(self):
        with pytest.raises(ReproError):
            WorkerHealth(["a"], quarantine_after=0)
        with pytest.raises(ReproError):
            WorkerHealth(["a"], probe_interval_us=-1.0)


class TestQuarantineAndRequeue:
    def _faulty_report(self, case_base, trace, config, *faults):
        fleet = DeviceFleet.build(
            case_base, hardware_devices=2, software_devices=0
        )
        engine = ClusterServingEngine(
            case_base, fleet, config=config, fault_injector=_injector(*faults)
        )
        return engine.serve(trace), engine

    def test_crash_window_quarantines_requeues_and_recovers(self, case_base):
        trace = _trace(case_base, count=90)
        config = ServingConfig(max_batch=4)
        report, engine = self._faulty_report(
            case_base, trace, config,
            FaultSpec(kind="worker_crash", target="*", at_us=2000.0,
                      duration_us=1500.0),
        )
        resilience = report.metrics["cluster"]["resilience"]
        assert resilience["requeues"] > 0
        assert sum(resilience["health"].values()) == 2
        # The outage ended inside the trace: the probe re-admitted everyone.
        assert resilience["worker_states"] == {
            worker.name: HEALTHY for worker in engine.fleet.workers
        }
        # No silent outcomes: every record has a terminal enum status, and
        # everything unserved says why.
        assert len(report.served) == len(trace)
        for record in report.served:
            assert isinstance(record.status, ServingStatus)
            if not record.status.served:
                assert record.reason
        statuses = {record.status for record in report.served}
        assert ServingStatus.SERVED_HARDWARE in statuses
        assert ServingStatus.REJECTED_DEADLINE in statuses  # requeue budget

    def test_served_common_set_is_bit_identical_with_healthy_replay(
        self, case_base
    ):
        """Faults shift capacity, never answers (the PR 5 compare idiom)."""
        trace = _trace(case_base)
        config = ServingConfig(max_batch=4)
        faulty, _ = self._faulty_report(
            case_base, trace, config,
            FaultSpec(kind="worker_crash", target="fpga0", at_us=1000.0,
                      duration_us=3000.0),
            FaultSpec(kind="slow_device", target="fpga1", at_us=0.0,
                      duration_us=5000.0, factor=3.0),
        )
        healthy = ServingEngine(case_base, config=config).serve(trace)
        faulty_rankings = faulty.rankings()
        healthy_rankings = healthy.rankings()
        common = 0
        for mine, theirs in zip(faulty_rankings, healthy_rankings):
            if mine is not None:
                assert mine == theirs  # exact doubles, no tolerance
                common += 1
        assert common > 0
        # Capacity differences are reported separately, not hidden in the
        # ranking surface.
        assert len(faulty_rankings) == len(healthy_rankings) == len(trace)

    def test_permanent_hang_ends_in_explicit_errors_not_limbo(self, case_base):
        trace = _trace(case_base, count=30)
        config = ServingConfig(max_batch=4, deadline_us=5000.0)
        report, engine = self._faulty_report(
            case_base, trace, config,
            FaultSpec(kind="worker_hang", target="*", at_us=1000.0),
        )
        assert len(report.served) == len(trace)
        for record in report.served:
            assert isinstance(record.status, ServingStatus)
            if not record.status.served:
                assert record.reason
        # The hang never lifts: once quarantined, later requests exhaust the
        # requeue budget and fail explicitly.
        exhausted = [
            record for record in report.served
            if record.status is ServingStatus.REJECTED_DEADLINE
            and "requeue" in record.reason
        ]
        assert exhausted
        states = report.metrics["cluster"]["resilience"]["worker_states"]
        assert QUARANTINED in states.values()

    def test_degrade_to_software_false_survives_hardware_quarantine(
        self, case_base
    ):
        """Quarantine must not un-gate the software tier."""
        trace = _trace(case_base, count=30)
        fleet = DeviceFleet.build(
            case_base, hardware_devices=1, software_devices=1
        )
        engine = ClusterServingEngine(
            case_base, fleet,
            config=ServingConfig(max_batch=4, degrade_to_software=False),
            fault_injector=_injector(
                FaultSpec(kind="worker_hang", target="fpga0", at_us=0.0),
            ),
        )
        report = engine.serve(trace)
        statuses = {record.status for record in report.served}
        assert ServingStatus.SERVED_SOFTWARE not in statuses
        assert all(
            status in (ServingStatus.SERVED_HARDWARE,
                       ServingStatus.REJECTED_DEADLINE)
            for status in statuses
        )

    def test_without_an_injector_nothing_changes(self, case_base):
        """The health machinery is absent from un-faulted fleets: the PR 5
        cluster path stays bit-for-bit what it was."""
        trace = _trace(case_base)
        config = ServingConfig(max_batch=8)
        fleet = DeviceFleet.build(
            case_base, hardware_devices=2, software_devices=1
        )
        engine = ClusterServingEngine(case_base, fleet, config=config)
        assert engine.router.health is None
        report = engine.serve(trace)
        assert "resilience" not in report.metrics["cluster"]


class TestStreamFaultRetries:
    def _mutate(self, case_base):
        type_id = case_base.type_ids()[0]
        case_base.replace_implementation(
            type_id, case_base.implementations(type_id)[0]
        )

    def _fleet(self, case_base, *faults, policy=None):
        fleet = DeviceFleet.build(
            case_base, hardware_devices=1, software_devices=0,
            reconfig_us=100.0,
        )
        fleet.apply_faults(
            _injector(*faults),
            policy or RetryPolicy(base_delay_us=200.0, jitter=0.0),
        )
        return fleet

    def _reference_fleet(self, case_base):
        """An un-faulted twin measuring the clean transfer size."""
        return DeviceFleet.build(
            case_base, hardware_devices=1, software_devices=0,
            reconfig_us=100.0,
        )

    def test_corrupted_stream_retries_to_success(self, case_base):
        fleet = self._fleet(
            case_base,
            FaultSpec(kind="stream_corrupt", target="fpga0", at_us=0.0,
                      duration_us=150.0),
        )
        reference = self._reference_fleet(case_base)
        self._mutate(case_base)
        clean_bytes = reference.sync(0.0)[0].bytes_streamed
        # Attempt 0 starts at t=0 inside the window and fails after the
        # full 100 us transfer; the 200 us backoff lands the retry at
        # t=300, outside the window.
        events = fleet.sync(0.0)
        assert len(events) == 1
        event = events[0]
        assert event.status == "applied"
        assert event.attempts == 2
        # Traffic counts both transfers; the event spans first to last.
        assert event.bytes_streamed == 2 * clean_bytes
        assert event.duration_us == 400.0
        assert fleet.workers[0].image_revision == case_base.revision

    def test_truncated_stream_exhausts_and_leaves_the_image_stale(
        self, case_base
    ):
        fleet = self._fleet(
            case_base,
            FaultSpec(kind="stream_truncate", target="fpga0", at_us=0.0,
                      duration_us=1e9, factor=0.5),
        )
        reference = self._reference_fleet(case_base)
        self._mutate(case_base)
        clean_bytes = reference.sync(0.0)[0].bytes_streamed
        events = fleet.sync(0.0)
        assert len(events) == 1
        event = events[0]
        assert event.status == "failed"
        assert event.attempts == 3  # the full retry budget
        # Half-transfers only: three truncated attempts streamed 1.5 windows.
        assert event.bytes_streamed == 3 * (clean_bytes // 2)
        assert fleet.workers[0].image_revision != case_base.revision
        # Past the fault window the next sync probe succeeds.
        recovered = fleet.sync(2e9)
        assert len(recovered) == 1
        assert recovered[0].status == "applied"
        assert fleet.workers[0].image_revision == case_base.revision

    def test_port_occupancy_reflects_failed_attempts(self, case_base):
        fleet = self._fleet(
            case_base,
            FaultSpec(kind="stream_corrupt", target="fpga0", at_us=0.0,
                      duration_us=150.0),
        )
        self._mutate(case_base)
        fleet.sync(0.0)
        port = fleet.workers[0].controller.reconfiguration
        statuses = [event.status for event in port.events]
        assert statuses == ["failed-corrupted", "applied"]
