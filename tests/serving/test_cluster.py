"""Tests for cluster-scale serving: fleet routing, degradation, learning.

The load-bearing property is the N-server generalisation: a fleet of one
hardware and one software worker at equal clock must reproduce the PR 3
two-server admission decisions *exactly*, and any fleet must return rankings
bit-identical to single-device serving (routing redistributes where modelled
service happens, never what is retrieved).
"""

import pytest

from repro.platform import DeviceFleet
from repro.serving import (
    ClusterServingEngine,
    ServingConfig,
    ServingEngine,
    ServingStatus,
    synthetic_trace,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


@pytest.fixture
def cluster_case_base():
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=6,
            implementations_per_type=8,
            attributes_per_implementation=8,
            attribute_type_count=10,
        ),
        seed=7,
    ).case_base()


def _trace(case_base, count=60, interarrival=150.0, seed=3):
    return synthetic_trace(
        case_base, count, mean_interarrival_us=interarrival, seed=seed
    )


def _decision_surface(report):
    """The per-request fields the two-server differential compares."""
    return [
        (
            record.status,
            round(record.wait_us, 9),
            round(record.queue_us, 9),
            round(record.service_us, 9),
            record.cycles,
            round(record.latency_us, 9) if record.latency_us is not None else None,
        )
        for record in report.served
    ]


class TestTwoServerEquivalence:
    @pytest.mark.parametrize("deadline_us", [None, 900.0, 0.0])
    def test_one_hw_one_sw_fleet_reproduces_the_two_server_gate(
        self, cluster_case_base, deadline_us
    ):
        """The N-server router degenerates exactly to PR 3's admission model."""
        config = ServingConfig(max_batch=16, deadline_us=deadline_us)
        trace = _trace(cluster_case_base, count=80, interarrival=30.0)
        single = ServingEngine(cluster_case_base, config=config).serve(trace)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=1, software_devices=1
        )
        cluster = ClusterServingEngine(
            cluster_case_base, fleet, config=config
        ).serve(trace)
        assert _decision_surface(cluster) == _decision_surface(single)
        assert cluster.rankings() == single.rankings()

    def test_explicit_hardware_config_clock_drives_both_tiers(
        self, cluster_case_base
    ):
        """An explicit hardware clock governs the software workers too.

        The admission controller's convention: an explicit
        ``hardware_config``'s clock takes precedence over ``clock_mhz`` and
        the software cost model follows it (equal-clock comparison).  The
        fleet must mirror that, or the 1hw+1sw differential breaks whenever
        the clocks differ.
        """
        from repro.hardware import HardwareConfig

        hardware_config = HardwareConfig(clock_mhz=120.0)
        config = ServingConfig(
            max_batch=16, deadline_us=600.0, hardware_config=hardware_config
        )
        trace = _trace(cluster_case_base, count=80, interarrival=30.0)
        single = ServingEngine(cluster_case_base, config=config).serve(trace)
        fleet = DeviceFleet.build(
            cluster_case_base,
            hardware_devices=1,
            software_devices=1,
            hardware_config=hardware_config,  # clock_mhz left at its 66 default
        )
        assert fleet.worker("cpu0").clock_mhz == 120.0
        cluster = ClusterServingEngine(
            cluster_case_base, fleet, config=config
        ).serve(trace)
        assert _decision_surface(cluster) == _decision_surface(single)

    def test_degrade_to_software_disabled_matches_too(self, cluster_case_base):
        config = ServingConfig(
            max_batch=16, deadline_us=900.0, degrade_to_software=False
        )
        trace = _trace(cluster_case_base, count=80, interarrival=30.0)
        single = ServingEngine(cluster_case_base, config=config).serve(trace)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=1, software_devices=1
        )
        cluster = ClusterServingEngine(
            cluster_case_base, fleet, config=config
        ).serve(trace)
        assert _decision_surface(cluster) == _decision_surface(single)


class TestFleetRouting:
    def test_rankings_bit_identical_to_single_device(self, cluster_case_base):
        trace = _trace(cluster_case_base)
        config = ServingConfig(max_batch=32, n_best=5, shard_count=3)
        single = ServingEngine(cluster_case_base, config=config).serve(trace)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=4, software_devices=1
        )
        cluster = ClusterServingEngine(
            cluster_case_base, fleet, config=config
        ).serve(trace)
        assert cluster.rankings() == single.rankings()

    def test_more_devices_raise_modelled_throughput(self, cluster_case_base):
        trace = _trace(cluster_case_base, count=96, interarrival=10.0)
        config = ServingConfig(max_batch=96, max_wait_us=1e9, n_best=1)

        def throughput(devices):
            fleet = DeviceFleet.build(
                cluster_case_base, hardware_devices=devices, software_devices=0
            )
            report = ClusterServingEngine(
                cluster_case_base, fleet, config=config
            ).serve(trace)
            return report.metrics["cluster"]["modelled_throughput_rps"]

        assert throughput(4) >= 3.0 * throughput(1)

    def test_requests_balance_across_hardware_workers(self, cluster_case_base):
        trace = _trace(cluster_case_base, count=64, interarrival=5.0)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=3, software_devices=1
        )
        report = ClusterServingEngine(
            cluster_case_base, fleet,
            config=ServingConfig(max_batch=64, max_wait_us=1e9),
        ).serve(trace)
        workers = report.metrics["cluster"]["workers"]
        for name in ("fpga0", "fpga1", "fpga2"):
            assert workers[name]["assigned"] > 0
        # Without a deadline nothing degrades: software stays idle, exactly
        # like the two-server model admits everything to hardware.
        assert workers["cpu0"]["assigned"] == 0
        assert all(record.worker.startswith("fpga") for record in report.served)

    def test_outage_degrades_to_software_under_deadline(self, cluster_case_base):
        trace = _trace(cluster_case_base, count=40, interarrival=100.0)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=1, software_devices=1
        )
        # The lone hardware device is down for the whole trace.
        fleet.worker("fpga0").add_outage(0.0, 1e9)
        report = ClusterServingEngine(
            cluster_case_base, fleet,
            config=ServingConfig(max_batch=8, deadline_us=5_000.0),
        ).serve(trace)
        statuses = report.metrics["statuses"]
        assert statuses.get("served_hardware", 0) == 0
        assert statuses.get("served_software", 0) > 0
        assert all(
            record.worker == "cpu0"
            for record in report.served
            if record.status is ServingStatus.SERVED_SOFTWARE
        )

    def test_outage_queues_without_deadline(self, cluster_case_base):
        trace = _trace(cluster_case_base, count=10, interarrival=100.0)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=1, software_devices=1
        )
        outage_end = 50_000.0
        fleet.worker("fpga0").add_outage(0.0, outage_end)
        report = ClusterServingEngine(
            cluster_case_base, fleet, config=ServingConfig(max_batch=8)
        ).serve(trace)
        # Unconstrained traffic queues behind the outage instead of degrading.
        assert all(
            record.status is ServingStatus.SERVED_HARDWARE
            for record in report.served
        )
        assert all(
            record.latency_us >= outage_end - record.arrival_us - record.wait_us
            for record in report.served
        )

    def test_software_only_fleet_serves_as_primary_tier(self, cluster_case_base):
        trace = _trace(cluster_case_base, count=20)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=0, software_devices=2
        )
        report = ClusterServingEngine(
            cluster_case_base, fleet,
            config=ServingConfig(max_batch=8, degrade_to_software=False),
        ).serve(trace)
        assert all(
            record.status is ServingStatus.SERVED_SOFTWARE
            for record in report.served
        )

    def test_fleet_must_share_the_served_case_base(self, cluster_case_base):
        from repro.core.exceptions import ReproError

        fleet = DeviceFleet.build(cluster_case_base.copy(), hardware_devices=1)
        with pytest.raises(ReproError):
            ClusterServingEngine(cluster_case_base, fleet)

    def test_replays_are_deterministic(self, cluster_case_base):
        trace = _trace(cluster_case_base, count=40)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=2, software_devices=1
        )
        engine = ClusterServingEngine(
            cluster_case_base, fleet, config=ServingConfig(max_batch=16)
        )
        first = engine.serve(trace)
        second = engine.serve(trace)
        assert _decision_surface(first) == _decision_surface(second)
        assert first.rankings() == second.rankings()
        assert (
            first.metrics["cluster"]["modelled_makespan_us"]
            == second.metrics["cluster"]["modelled_makespan_us"]
        )


class TestFleetWideLearning:
    def test_delta_windows_propagate_to_every_device(self, cluster_case_base):
        trace = _trace(cluster_case_base, count=40, interarrival=500.0)
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=2, software_devices=1
        )
        engine = ClusterServingEngine(
            cluster_case_base, fleet,
            config=ServingConfig(max_batch=8, learn=True),
        )
        report = engine.serve(trace)
        learning = report.metrics["learning"]
        assert learning["revisions"] > 0
        sync = report.metrics["cluster"]["sync"]
        # Every hardware device streamed every window incrementally.
        assert sync["incremental"] > 0
        assert sync["full"] == 0
        assert sync["reconfiguration_us"] > 0
        assert all(
            worker.image_revision == cluster_case_base.revision
            for worker in fleet.workers
        )

    def test_learning_cluster_matches_learning_single_device(self):
        generator = CaseBaseGenerator(
            GeneratorSpec(
                type_count=5,
                implementations_per_type=6,
                attributes_per_implementation=6,
                attribute_type_count=8,
            ),
            seed=11,
        )
        source = generator.case_base()
        trace = _trace(source, count=50, interarrival=400.0, seed=9)
        config = ServingConfig(max_batch=8, learn=True, novelty_threshold=0.97)
        single_case_base = source.copy()
        single = ServingEngine(single_case_base, config=config).serve(trace)
        cluster_case_base = source.copy()
        fleet = DeviceFleet.build(
            cluster_case_base, hardware_devices=3, software_devices=1
        )
        cluster = ClusterServingEngine(
            cluster_case_base, fleet, config=config
        ).serve(trace)
        # No deadline: both replays serve the same requests, feed the same
        # outcomes back, and the evolved rankings stay bit-identical.
        assert cluster.rankings() == single.rankings()
        assert cluster.metrics["learning"] == single.metrics["learning"]
        assert cluster_case_base.revision == single_case_base.revision
