"""Fault-injection and retry/backoff units (PR 7 resilience layer).

Everything here is deterministic by construction: fault predicates are
pure functions of virtual time and explicit counters, and retry jitter is
derived from a string-seeded RNG, so a chaos run replays bit-identically.
"""

import pytest

from repro.core import ReproError
from repro.platform import DeviceFleet
from repro.resilience import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HANG_END_US,
    RetryPolicy,
    derive_rng,
)
from repro.tools import CaseBaseGenerator, GeneratorSpec


@pytest.fixture
def case_base():
    return CaseBaseGenerator(
        GeneratorSpec(
            type_count=4,
            implementations_per_type=5,
            attributes_per_implementation=6,
            attribute_type_count=8,
        ),
        seed=17,
    ).case_base()


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_us=100.0, multiplier=2.0,
                             max_delay_us=350.0, jitter=0.0)
        assert policy.delay_us(0) == 100.0
        assert policy.delay_us(1) == 200.0
        assert policy.delay_us(2) == 350.0  # capped
        assert policy.delay_us(9) == 350.0

    def test_jitter_is_bounded_and_reproducible(self):
        policy = RetryPolicy(base_delay_us=1000.0, jitter=0.25)
        delays = [
            policy.delay_us(0, rng=derive_rng(7, "sync", "fpga0", attempt))
            for attempt in range(32)
        ]
        assert all(750.0 <= delay <= 1250.0 for delay in delays)
        replayed = [
            policy.delay_us(0, rng=derive_rng(7, "sync", "fpga0", attempt))
            for attempt in range(32)
        ]
        assert delays == replayed
        assert len(set(delays)) > 1  # the jitter actually jitters

    def test_derive_rng_is_a_pure_function_of_its_key(self):
        assert derive_rng(3, "a", 1).random() == derive_rng(3, "a", 1).random()
        assert derive_rng(3, "a", 1).random() != derive_rng(3, "a", 2).random()
        assert derive_rng(3, "a").random() != derive_rng(4, "a").random()

    def test_next_attempt_respects_budget_and_deadline(self):
        policy = RetryPolicy(max_attempts=3, base_delay_us=100.0, jitter=0.0)
        assert policy.next_attempt_us(0, 1000.0) == 1100.0
        assert policy.next_attempt_us(1, 1100.0) == 1300.0
        assert policy.next_attempt_us(2, 1300.0) is None  # attempts exhausted
        assert policy.next_attempt_us(0, 1000.0, deadline_us=1050.0) is None

    def test_validation(self):
        with pytest.raises(ReproError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ReproError, match="max_delay_us"):
            RetryPolicy(base_delay_us=500.0, max_delay_us=100.0)


class TestFaultSpec:
    def test_windows(self):
        crash = FaultSpec(kind="worker_crash", target="fpga0",
                          at_us=100.0, duration_us=50.0)
        assert not crash.active(99.9)
        assert crash.active(100.0)
        assert crash.active(149.9)
        assert not crash.active(150.0)
        assert crash.matches("fpga0") and not crash.matches("fpga1")
        assert FaultSpec(kind="slow_device", target="*").matches("anything")

    def test_hangs_and_open_windows_never_end(self):
        assert FaultSpec(kind="worker_hang", at_us=5.0).end_us == HANG_END_US
        assert FaultSpec(kind="worker_crash", at_us=5.0).end_us == HANG_END_US
        assert FaultSpec(
            kind="worker_hang", at_us=5.0, duration_us=10.0
        ).end_us == HANG_END_US  # a hang ignores duration

    def test_validation(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultSpec(kind="gremlins")
        with pytest.raises(ReproError, match="non-negative"):
            FaultSpec(kind="worker_crash", at_us=-1.0)
        with pytest.raises(ReproError, match="factor"):
            FaultSpec(kind="slow_device", factor=0.0)
        with pytest.raises(ReproError, match="every >= 1"):
            FaultSpec(kind="conn_drop")

    def test_payload_round_trip(self):
        spec = FaultSpec(kind="stream_corrupt", target="fpga1",
                         at_us=10.0, duration_us=20.0, factor=0.5)
        assert FaultSpec.from_payload(spec.to_payload()) == spec
        with pytest.raises(ReproError, match="kind"):
            FaultSpec.from_payload({"target": "fpga0"})


class TestFaultPlan:
    def test_payload_round_trip_and_len(self):
        plan = FaultPlan(seed=5, faults=(
            FaultSpec(kind="worker_crash", target="fpga0", at_us=1.0,
                      duration_us=2.0),
            FaultSpec(kind="conn_stall", every=3, duration_us=100.0),
        ))
        assert len(plan) == 2
        assert FaultPlan.from_payload(plan.to_payload()) == plan
        assert len(FaultPlan()) == 0

    def test_plan_coerces_payload_faults(self):
        plan = FaultPlan(seed=1, faults=(
            {"kind": "learn_transient", "every": 2},
        ))
        assert isinstance(plan.faults[0], FaultSpec)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(seed=9, faults=(FaultSpec(kind="worker_hang", at_us=3.0),))
        path.write_text(__import__("json").dumps(plan.to_payload()), encoding="utf-8")
        assert FaultPlan.load(str(path)) == plan
        with pytest.raises(ReproError, match="cannot read"):
            FaultPlan.load(str(tmp_path / "missing.json"))

    def test_every_kind_is_constructible(self):
        for kind in FAULT_KINDS:
            every = 1 if kind in ("conn_drop", "conn_stall") else 0
            FaultSpec(kind=kind, every=every)


class TestFaultInjector:
    def _injector(self, *faults):
        return FaultInjector(FaultPlan(seed=3, faults=tuple(faults)))

    def test_worker_down_is_a_pure_time_predicate(self):
        injector = self._injector(
            FaultSpec(kind="worker_crash", target="fpga0", at_us=100.0,
                      duration_us=50.0),
            FaultSpec(kind="worker_hang", target="fpga1", at_us=200.0),
        )
        assert not injector.worker_down("fpga0", 99.0)
        assert injector.worker_down("fpga0", 120.0)
        assert not injector.worker_down("fpga0", 150.0)
        assert injector.worker_down("fpga1", 1e9)  # hangs never recover
        assert not injector.worker_down("soft0", 120.0)
        assert injector.worker_outages("fpga0") == [(100.0, 150.0)]

    def test_service_factor_compounds_in_window(self):
        injector = self._injector(
            FaultSpec(kind="slow_device", target="fpga0", at_us=0.0,
                      duration_us=100.0, factor=2.0),
            FaultSpec(kind="slow_device", target="*", at_us=0.0,
                      duration_us=100.0, factor=1.5),
        )
        assert injector.service_factor("fpga0", 50.0) == 3.0
        assert injector.service_factor("fpga1", 50.0) == 1.5
        assert injector.service_factor("fpga0", 150.0) == 1.0

    def test_stream_fault_selection(self):
        truncate = FaultSpec(kind="stream_truncate", target="fpga0",
                             at_us=0.0, duration_us=10.0, factor=0.5)
        injector = self._injector(truncate)
        assert injector.stream_fault("fpga0", 5.0) is truncate
        assert injector.stream_fault("fpga0", 15.0) is None
        assert injector.stream_fault("fpga1", 5.0) is None

    def test_connection_cadence(self):
        injector = self._injector(FaultSpec(kind="conn_drop", every=3))
        hits = [injector.connection_fault() is not None for _ in range(9)]
        assert hits == [False, False, True] * 3

    def test_learn_failures(self):
        assert self._injector().learn_failures() == 0
        assert self._injector(
            FaultSpec(kind="learn_transient", every=2),
            FaultSpec(kind="learn_transient", every=1),
        ).learn_failures() == 2

    def test_apply_to_fleet_installs_outages(self, case_base):
        fleet = DeviceFleet.build(case_base, hardware_devices=2,
                                  software_devices=0)
        injector = self._injector(
            FaultSpec(kind="worker_crash", target=fleet.workers[0].name,
                      at_us=50.0, duration_us=25.0),
        )
        injector.apply_to_fleet(fleet)
        assert (50.0, 75.0) in fleet.workers[0].outages()
        assert (50.0, 75.0) not in fleet.workers[1].outages()

    def test_injector_requires_a_plan(self):
        with pytest.raises(ReproError, match="FaultPlan"):
            FaultInjector({"seed": 0})
