"""End-to-end serving engine tests, including the issue's edge cases."""

import json

import pytest

from repro.allocation import FeasibilityChecker
from repro.apps import build_case_base, build_platform, build_scenario
from repro.core import FunctionRequest, ReproError, paper_case_base
from repro.serving import (
    ServingConfig,
    ServingEngine,
    ServingSpec,
    ServingStatus,
    synthetic_trace,
    trace_from_requests,
    trace_from_workloads,
)
from repro.tools import CaseBaseGenerator, table3_spec


@pytest.fixture(scope="module")
def table3():
    generator = CaseBaseGenerator(table3_spec(), seed=2004)
    case_base = generator.case_base()
    return case_base, synthetic_trace(case_base, 40, mean_interarrival_us=20.0, seed=2)


class TestReplayBasics:
    def test_empty_trace_produces_an_empty_report(self):
        report = ServingEngine(paper_case_base()).serve([])
        assert report.served == []
        assert report.metrics["requests"] == 0
        assert report.metrics["batches"]["count"] == 0
        assert report.metrics["rejection_rate"] == 0.0

    def test_single_request_trace(self, table3):
        case_base, trace = table3
        report = ServingEngine(case_base).serve(trace[:1])
        assert len(report.served) == 1
        record = report.served[0]
        assert record.status is ServingStatus.SERVED_HARDWARE
        assert record.result is not None and record.result.best_id is not None
        assert record.cycles > 0
        assert record.latency_us == pytest.approx(
            record.wait_us + record.queue_us + record.service_us
        )

    def test_records_stay_in_trace_order_with_full_coverage(self, table3):
        case_base, trace = table3
        report = ServingEngine(
            case_base, config=ServingConfig(max_batch=8, max_wait_us=100.0)
        ).serve(trace)
        assert [record.index for record in report.served] == list(range(len(trace)))
        assert report.metrics["requests"] == len(trace)

    def test_rankings_match_the_reference_engine(self, table3):
        from repro.core import RetrievalEngine

        case_base, trace = table3
        report = ServingEngine(
            case_base, config=ServingConfig(n_best=3)
        ).serve(trace)
        expected = RetrievalEngine(case_base).retrieve_batch(
            [entry.request for entry in trace], n=3
        )
        for record, expected_result in zip(report.served, expected):
            assert record.result.ids() == expected_result.ids()

    def test_batch_of_one_serves_every_request_individually(self, table3):
        case_base, trace = table3
        report = ServingEngine(
            case_base, config=ServingConfig(max_batch=1)
        ).serve(trace[:10])
        assert report.metrics["batches"]["histogram"] == {1: 10}
        assert report.metrics["served"] == 10


class TestDeadlines:
    def test_zero_deadline_rejects_the_whole_trace(self, table3):
        case_base, trace = table3
        report = ServingEngine(
            case_base, config=ServingConfig(deadline_us=0.0)
        ).serve(trace)
        assert report.metrics["statuses"] == {"rejected_deadline": len(trace)}
        assert report.metrics["rejection_rate"] == 1.0
        assert all(record.result is None for record in report.served)
        assert all(record.reason for record in report.served)

    def test_tight_deadline_mixes_hw_sw_and_rejections(self, table3):
        case_base, _ = table3
        trace = synthetic_trace(case_base, 64, mean_interarrival_us=5.0, seed=1)
        report = ServingEngine(
            case_base,
            config=ServingConfig(max_batch=64, max_wait_us=1e6, deadline_us=400.0),
        ).serve(trace)
        statuses = report.metrics["statuses"]
        assert statuses.get("served_hardware", 0) > 0
        assert statuses.get("served_software", 0) > 0
        assert statuses.get("rejected_deadline", 0) > 0
        for record in report.served:
            if record.status.served:
                assert record.latency_us <= 400.0

    def test_degraded_requests_return_the_same_rankings(self, table3):
        case_base, _ = table3
        trace = synthetic_trace(case_base, 64, mean_interarrival_us=5.0, seed=1)
        constrained = ServingEngine(
            case_base,
            config=ServingConfig(max_batch=64, max_wait_us=1e6, deadline_us=400.0),
        ).serve(trace)
        unconstrained = ServingEngine(
            case_base, config=ServingConfig(max_batch=64, max_wait_us=1e6)
        ).serve(trace)
        for record, reference in zip(constrained.served, unconstrained.served):
            if record.status.served:
                assert record.result.ids() == reference.result.ids()


class TestSharding:
    def test_shard_count_above_case_count_still_matches_unsharded(self):
        case_base = paper_case_base()  # 1 type x 3 implementations
        trace = synthetic_trace(case_base, 12, seed=4)
        sharded = ServingEngine(
            case_base, config=ServingConfig(shard_count=16, n_best=3)
        ).serve(trace)
        unsharded = ServingEngine(
            case_base, config=ServingConfig(shard_count=1, n_best=3)
        ).serve(trace)
        assert sharded.rankings() == unsharded.rankings()


class TestRobustness:
    def test_unservable_requests_fail_without_aborting_the_replay(self, table3):
        case_base, _ = table3
        good = synthetic_trace(case_base, 4, seed=8)
        bad = FunctionRequest(9999, [(1, 10)])
        trace = trace_from_requests(
            [entry.request for entry in good[:2]] + [bad]
            + [entry.request for entry in good[2:]],
            interarrival_us=10.0,
        )
        report = ServingEngine(case_base).serve(trace)
        statuses = [record.status for record in report.served]
        assert statuses.count(ServingStatus.FAILED) == 1
        assert statuses.count(ServingStatus.SERVED_HARDWARE) == 4
        failed = report.served[2]
        assert "not in the case base" in failed.reason

    def test_unencodable_value_fails_without_aborting_the_replay(self, table3):
        """A non-integer constraint value (reachable via a requests JSON file)
        must produce a FAILED record, not abort the whole replay."""
        case_base, _ = table3
        good = synthetic_trace(case_base, 3, seed=8)
        bad = FunctionRequest(1, [(1, "fast")])
        trace = trace_from_requests(
            [good[0].request, bad, good[1].request, good[2].request],
            interarrival_us=10.0,
        )
        report = ServingEngine(case_base).serve(trace)
        statuses = [record.status for record in report.served]
        assert statuses[1] is ServingStatus.FAILED
        assert statuses.count(ServingStatus.SERVED_HARDWARE) == 3
        assert report.served[1].reason

    def test_infeasible_platform_rejects_via_allocation_verdicts(self):
        case_base = build_case_base()
        # A 1 mW budget is below every implementation's power draw, so the
        # allocation-layer verdict is INFEASIBLE_POWER for every candidate.
        system = build_platform(fpga_count=1, power_budget_mw=1.0)
        trace = trace_from_workloads(duration_us=500_000.0, seed=3)
        report = ServingEngine(
            case_base, feasibility=FeasibilityChecker(system)
        ).serve(trace)
        assert report.metrics["statuses"] == {
            "rejected_infeasible": len(trace)
        }
        assert all(record.reason for record in report.served)

    def test_report_round_trips_through_json(self, table3):
        case_base, trace = table3
        report = ServingEngine(case_base).serve(trace[:6])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["metrics"]["requests"] == 6
        assert len(payload["requests"]) == 6
        assert payload["requests"][0]["ranking"]

    def test_config_validation(self):
        with pytest.raises(ReproError, match="n_best"):
            ServingConfig(n_best=0)
        with pytest.raises(ReproError, match="deadline_us"):
            ServingConfig(deadline_us=-1.0)


class TestApplicationApiPlumbing:
    def test_serving_engine_shares_the_managers_case_base_and_feasibility(self):
        scenario = build_scenario()
        engine = scenario.application_api.serving_engine(ServingSpec(shards=2, n_best=2))
        assert engine.case_base is scenario.manager.case_base
        assert engine.admission.feasibility is scenario.manager.feasibility
        trace = trace_from_workloads(duration_us=500_000.0, seed=5)
        report = engine.serve(trace)
        assert report.metrics["served"] == len(trace)
        assert report.config.shard_count == 2

    def test_cluster_engine_shares_the_managers_stack(self):
        scenario = build_scenario()
        engine = scenario.application_api.cluster_engine(
            ServingSpec(devices=2, software_workers=1, n_best=2)
        )
        assert engine.case_base is scenario.manager.case_base
        assert engine.fleet.case_base is scenario.manager.case_base
        assert engine.admission.feasibility is scenario.manager.feasibility
        assert engine.fleet.repository is scenario.manager.repository
        assert len(engine.fleet) == 3
        trace = trace_from_workloads(duration_us=500_000.0, seed=5)
        report = engine.serve(trace)
        assert report.metrics["served"] == len(trace)
        assert report.metrics["cluster"]["devices"] == 3

    def test_with_config_builds_a_sibling_engine(self):
        engine = ServingEngine(paper_case_base())
        sibling = engine.with_config(max_batch=1, shard_count=2)
        assert sibling.case_base is engine.case_base
        assert sibling.config.max_batch == 1
        assert sibling.config.shard_count == 2
        assert engine.config.max_batch == 32


class TestCrossBatchBacklog:
    def test_sustained_overload_rejects_even_one_at_a_time(self):
        """Server occupancy carries across batches: a request stream arriving
        faster than the hardware unit serves it must eventually miss its
        deadline even when every batch holds a single request."""
        case_base = paper_case_base()
        request = synthetic_trace(case_base, 1, seed=0)[0].request
        hw_time = ServingEngine(case_base).admission.hardware_times_us([request])[0][1]
        # Arrivals 10x faster than the service rate; deadline allows a few
        # requests' worth of queueing, so the head of the stream is served
        # and the saturated tail is rejected.
        trace = trace_from_requests(
            [request] * 40,
            interarrival_us=hw_time / 10.0,
            deadline_us=5.0 * hw_time,
        )
        report = ServingEngine(
            case_base,
            config=ServingConfig(max_batch=1, degrade_to_software=False),
        ).serve(trace)
        statuses = report.metrics["statuses"]
        assert statuses.get("served_hardware", 0) > 0
        assert statuses.get("rejected_deadline", 0) > 0
        # Physical latencies: per-server completions never overlap, so each
        # served request's modelled latency is at least its service time and
        # they are non-decreasing while the backlog grows monotonically.
        served = [r for r in report.served if r.status.served]
        assert all(r.latency_us >= r.service_us for r in served)

    def test_backlog_drains_between_sparse_batches(self):
        """A trace slower than the service rate never accumulates backlog."""
        case_base = paper_case_base()
        request = synthetic_trace(case_base, 1, seed=0)[0].request
        hw_time = ServingEngine(case_base).admission.hardware_times_us([request])[0][1]
        trace = trace_from_requests(
            [request] * 10, interarrival_us=hw_time * 10.0, deadline_us=hw_time * 2.0
        )
        report = ServingEngine(
            case_base, config=ServingConfig(max_batch=1, max_wait_us=0.0)
        ).serve(trace)
        assert report.metrics["statuses"] == {"served_hardware": 10}
        assert all(record.queue_us == 0.0 for record in report.served)


class TestAdmissionModelsTheConfiguredUnit:
    def test_admission_unit_follows_the_configured_ranking_depth(self):
        """The modelled hardware unit must be the n_best the engine delivers."""
        engine = ServingEngine(paper_case_base(), config=ServingConfig(n_best=3))
        assert engine.admission.hardware_unit.config.n_best == 3

    def test_explicit_hardware_config_is_widened_not_narrowed(self):
        from repro.hardware import HardwareConfig

        widened = ServingEngine(
            paper_case_base(),
            config=ServingConfig(
                n_best=4, hardware_config=HardwareConfig(n_best=2)
            ),
        )
        assert widened.admission.hardware_unit.config.n_best == 4
        kept = ServingEngine(
            paper_case_base(),
            config=ServingConfig(
                n_best=1, hardware_config=HardwareConfig(n_best=5)
            ),
        )
        assert kept.admission.hardware_unit.config.n_best == 5
