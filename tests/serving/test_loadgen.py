"""Trace-replay load generation: workload conversion and synthetic mixes."""

import pytest

from repro.apps import HeavyTrafficWorkload, build_case_base
from repro.core import ReproError, paper_case_base
from repro.serving import (
    TimedRequest,
    WORKLOAD_FACTORIES,
    resolve_workloads,
    synthetic_trace,
    trace_from_requests,
    trace_from_workloads,
)
from repro.tools import random_requests


class TestWorkloadTraces:
    def test_default_trace_covers_the_four_applications(self):
        trace = trace_from_workloads(duration_us=2_000_000.0, seed=3)
        requesters = {entry.request.requester for entry in trace}
        assert requesters == {
            "mp3-player", "video-player", "automotive-ecu", "cruise-control"
        }

    def test_trace_is_sorted_and_types_are_servable(self):
        case_base = build_case_base()
        trace = trace_from_workloads(duration_us=2_000_000.0, seed=3)
        assert trace
        arrivals = [entry.arrival_us for entry in trace]
        assert arrivals == sorted(arrivals)
        for entry in trace:
            assert entry.request.type_id in case_base
            assert len(entry.request) > 0

    def test_trace_is_deterministic_for_a_seed(self):
        first = trace_from_workloads(duration_us=1_000_000.0, seed=9)
        second = trace_from_workloads(duration_us=1_000_000.0, seed=9)
        assert [entry.arrival_us for entry in first] == [
            entry.arrival_us for entry in second
        ]
        assert [entry.request.signature() for entry in first] == [
            entry.request.signature() for entry in second
        ]

    def test_heavy_traffic_mix_dominates_the_request_rate(self):
        base = trace_from_workloads(duration_us=1_000_000.0, seed=4)
        heavy = trace_from_workloads(
            ["heavy-traffic"], duration_us=1_000_000.0, seed=4
        )
        assert len(heavy) > 5 * len(base)
        case_base = build_case_base()
        assert all(entry.request.type_id in case_base for entry in heavy)

    def test_workload_names_resolve_and_unknown_names_fail(self):
        resolved = resolve_workloads(["mp3-player", HeavyTrafficWorkload()])
        assert resolved[0].name == "mp3-player"
        assert resolved[1].name == "heavy-traffic"
        assert set(WORKLOAD_FACTORIES) == {
            "mp3-player", "video-player", "automotive-ecu", "cruise-control",
            "heavy-traffic", "fleet-failover", "huge-casebase",
        }
        with pytest.raises(ReproError, match="unknown workload"):
            resolve_workloads(["quake-server"])

    def test_global_deadline_is_stamped_onto_every_entry(self):
        trace = trace_from_workloads(
            duration_us=500_000.0, seed=1, deadline_us=250.0
        )
        assert all(entry.deadline_us == 250.0 for entry in trace)


class TestSyntheticTraces:
    def test_poisson_trace_matches_the_shared_request_generator(self):
        case_base = paper_case_base()
        trace = synthetic_trace(case_base, 20, seed=6, requester="loadgen")
        expected = random_requests(case_base, 20, 6, requester="loadgen")
        assert [entry.request.signature() for entry in trace] == [
            request.signature() for request in expected
        ]
        arrivals = [entry.arrival_us for entry in trace]
        assert arrivals == sorted(arrivals)
        assert all(arrival > 0 for arrival in arrivals)

    def test_rejects_non_positive_interarrival(self):
        with pytest.raises(ReproError, match="mean_interarrival_us"):
            synthetic_trace(paper_case_base(), 5, mean_interarrival_us=0.0)

    def test_fixed_rate_stamping(self):
        requests = random_requests(paper_case_base(), 3, 0)
        trace = trace_from_requests(requests, interarrival_us=50.0, start_us=10.0)
        assert [entry.arrival_us for entry in trace] == [10.0, 60.0, 110.0]
        assert [entry.request for entry in trace] == requests


class TestTimedRequest:
    def test_rejects_negative_times(self):
        request = random_requests(paper_case_base(), 1, 0)[0]
        with pytest.raises(ReproError, match="arrival"):
            TimedRequest(arrival_us=-1.0, request=request)
        with pytest.raises(ReproError, match="deadline"):
            TimedRequest(arrival_us=0.0, request=request, deadline_us=-5.0)
