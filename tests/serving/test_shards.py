"""Sharded case-base workers: partition shape and bit-identical merging."""

import pytest

from repro.core import RetrievalEngine, RetrievalError, UnknownFunctionTypeError, paper_case_base
from repro.serving import ShardedRetriever, build_shards
from repro.tools import CaseBaseGenerator, GeneratorSpec, random_requests

SPEC = GeneratorSpec(
    type_count=4,
    implementations_per_type=7,
    attributes_per_implementation=6,
    attribute_type_count=8,
    missing_probability=0.15,
)


@pytest.fixture(scope="module")
def generated():
    generator = CaseBaseGenerator(SPEC, seed=13)
    case_base = generator.case_base()
    return case_base, random_requests(case_base, 30, 5)


class TestBuildShards:
    def test_partition_covers_every_implementation_exactly_once(self, generated):
        case_base, _ = generated
        shards = build_shards(case_base, 3)
        seen = set()
        for shard in shards:
            for type_id, implementation in shard.all_implementations():
                key = (type_id, implementation.implementation_id)
                assert key not in seen
                seen.add(key)
        expected = {
            (type_id, implementation.implementation_id)
            for type_id, implementation in case_base.all_implementations()
        }
        assert seen == expected

    def test_round_robin_by_sorted_implementation_order(self):
        case_base = paper_case_base()
        shards = build_shards(case_base, 2)
        original = [
            implementation.implementation_id
            for implementation in case_base.get_type(1).sorted_implementations()
        ]
        assert [i.implementation_id for i in shards[0].get_type(1)] == original[0::2]
        assert [i.implementation_id for i in shards[1].get_type(1)] == original[1::2]

    def test_shard_count_above_variant_count_leaves_shards_without_the_type(self):
        case_base = paper_case_base()  # one type, three implementations
        shards = build_shards(case_base, 5)
        holding = [shard for shard in shards if 1 in shard]
        assert len(holding) == 3
        assert all(len(shard) == 0 for shard in shards[3:])

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(RetrievalError, match="shard_count"):
            build_shards(paper_case_base(), 0)


class TestShardedRetrieval:
    @pytest.mark.parametrize("shard_count", [1, 2, 3, 5, 9])
    @pytest.mark.parametrize("backend", ["naive", "vectorized"])
    def test_merge_matches_unsharded_rankings_exactly(self, generated, shard_count, backend):
        case_base, requests = generated
        reference = RetrievalEngine(case_base, backend=backend)
        sharded = ShardedRetriever(case_base, shard_count=shard_count, backend=backend)
        expected = reference.retrieve_batch(requests, n=4)
        merged = sharded.retrieve_batch(requests, n=4)
        for expected_result, merged_result in zip(expected, merged):
            assert merged_result.ids() == expected_result.ids()
            assert [entry.similarity for entry in merged_result.ranked] == [
                entry.similarity for entry in expected_result.ranked
            ]

    def test_most_similar_mode_returns_the_global_winner(self, generated):
        case_base, requests = generated
        reference = RetrievalEngine(case_base)
        sharded = ShardedRetriever(case_base, shard_count=3)
        for request in requests[:10]:
            expected = reference.retrieve_best(request)
            merged = sharded.retrieve_batch([request])[0]
            assert merged.ids() == expected.ids()
            assert merged.best_similarity == expected.best_similarity

    def test_threshold_mode_filters_identically(self, generated):
        case_base, requests = generated
        reference = RetrievalEngine(case_base)
        sharded = ShardedRetriever(case_base, shard_count=2)
        expected = reference.retrieve_batch(requests, threshold=0.8)
        merged = sharded.retrieve_batch(requests, threshold=0.8)
        for expected_result, merged_result in zip(expected, merged):
            assert merged_result.ids() == expected_result.ids()
            assert merged_result.threshold == expected_result.threshold == 0.8

    def test_scan_counters_match_unsharded_totals(self, generated):
        """All effort counters except visit-order-dependent best_updates merge."""
        case_base, requests = generated
        reference = RetrievalEngine(case_base)
        sharded = ShardedRetriever(case_base, shard_count=3)
        expected = reference.retrieve_batch(requests[:8], n=4)
        merged = sharded.retrieve_batch(requests[:8], n=4)
        for expected_result, merged_result in zip(expected, merged):
            for counter in ("implementations_visited", "attribute_lookups",
                            "attribute_compares", "missing_attributes",
                            "multiplications"):
                assert getattr(merged_result.statistics, counter) == getattr(
                    expected_result.statistics, counter
                )

    def test_unknown_type_raises_like_the_unsharded_engine(self, generated):
        case_base, _ = generated
        sharded = ShardedRetriever(case_base, shard_count=3)
        from repro.core import FunctionRequest

        with pytest.raises(UnknownFunctionTypeError):
            sharded.retrieve_batch([FunctionRequest(999, [(1, 1)])])

    def test_empty_type_raises_like_the_unsharded_engine(self):
        from repro.core import FunctionRequest

        case_base = paper_case_base()
        case_base.add_type(7, name="empty")
        sharded = ShardedRetriever(case_base, shard_count=2)
        with pytest.raises(RetrievalError, match="no implementation variants"):
            sharded.retrieve_batch([FunctionRequest(7, [(1, 16)])])

    def test_shards_rebuild_after_case_base_mutation(self):
        from repro.core import FunctionRequest, Implementation, ExecutionTarget

        case_base = paper_case_base()
        sharded = ShardedRetriever(case_base, shard_count=2)
        request = FunctionRequest(1, [(1, 16), (3, 1), (4, 40)])
        before = sharded.retrieve_batch([request], n=10)[0]
        case_base.add_implementation(
            1,
            Implementation(9, ExecutionTarget.FPGA, name="new variant",
                           attributes={1: 16, 3: 1, 4: 40}),
        )
        after = sharded.retrieve_batch([request], n=10)[0]
        assert 9 in after.ids()
        assert 9 not in before.ids()

    def test_rejects_unknown_backend_and_bad_shard_count(self):
        with pytest.raises(RetrievalError, match="backend"):
            ShardedRetriever(paper_case_base(), backend="hardware")
        with pytest.raises(RetrievalError, match="shard_count"):
            ShardedRetriever(paper_case_base(), shard_count=0)
