"""Unit tests for the soft-core instruction cost model."""

import pytest

from repro.software import (
    CostModel,
    InstructionClass,
    InstructionCounters,
    InstructionEmitter,
    microblaze_cost_model,
    microblaze_soft_multiply_model,
)


class TestCostModel:
    def test_default_costs_follow_microblaze_pipeline(self):
        model = microblaze_cost_model()
        assert model.cost(InstructionClass.ALU) == 1
        assert model.cost(InstructionClass.LOAD) == 2
        assert model.cost(InstructionClass.MULTIPLY) == 3
        assert model.cost(InstructionClass.BRANCH_TAKEN) == 3
        assert model.cost(InstructionClass.BRANCH_NOT_TAKEN) == 1

    def test_soft_multiply_variant_is_much_slower(self):
        soft = microblaze_soft_multiply_model()
        assert soft.cost(InstructionClass.MULTIPLY) > 10
        assert soft.cost(InstructionClass.ALU) == 1

    def test_with_clock_preserves_costs(self):
        model = microblaze_cost_model().with_clock(100.0)
        assert model.clock_mhz == 100.0
        assert model.cost(InstructionClass.LOAD) == 2


class TestInstructionCounters:
    def test_emit_and_totals(self):
        counters = InstructionCounters()
        counters.emit(InstructionClass.LOAD, 3)
        counters.emit(InstructionClass.ALU, 5)
        assert counters.total_instructions() == 8
        assert counters.total_cycles(microblaze_cost_model()) == 3 * 2 + 5 * 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            InstructionCounters().emit(InstructionClass.ALU, -1)

    def test_merge(self):
        a, b = InstructionCounters(), InstructionCounters()
        a.emit(InstructionClass.ALU, 2)
        b.emit(InstructionClass.ALU, 3)
        b.emit(InstructionClass.LOAD, 1)
        a.merge(b)
        assert a.counts[InstructionClass.ALU] == 5
        assert a.counts[InstructionClass.LOAD] == 1


class TestInstructionEmitter:
    def test_branch_direction_matters(self):
        counters = InstructionCounters()
        emitter = InstructionEmitter(counters)
        emitter.branch(taken=True)
        emitter.branch(taken=False)
        assert counters.counts[InstructionClass.BRANCH_TAKEN] == 1
        assert counters.counts[InstructionClass.BRANCH_NOT_TAKEN] == 1

    def test_call_and_return_model_prologue_epilogue(self):
        counters = InstructionCounters()
        emitter = InstructionEmitter(counters)
        emitter.call(saved_registers=3)
        emitter.ret(restored_registers=3)
        assert counters.counts[InstructionClass.CALL] == 1
        assert counters.counts[InstructionClass.RETURN] == 1
        assert counters.counts[InstructionClass.STORE] == 3
        assert counters.counts[InstructionClass.LOAD] == 3

    def test_compare_and_branch_emits_two_instructions(self):
        counters = InstructionCounters()
        InstructionEmitter(counters).compare_and_branch(taken=True)
        assert counters.total_instructions() == 2
