"""Tests for the software retrieval cost model and the HW/SW comparison (E4)."""

import pytest

from repro.core import FunctionRequest, RetrievalEngine, SoftwareModelError, UnknownFunctionTypeError
from repro.hardware import HardwareRetrievalUnit
from repro.software import (
    SoftwareRetrievalUnit,
    microblaze_cost_model,
    microblaze_soft_multiply_model,
)


class TestFunctionalBehaviour:
    def test_paper_example_selects_dsp_variant(self, paper_cb, paper_req):
        result = SoftwareRetrievalUnit(paper_cb).run(paper_req)
        assert result.best_id == 2
        assert result.best_similarity == pytest.approx(0.964, abs=0.002)

    def test_identical_results_to_hardware_model(self, small_generator):
        """The paper: both versions 'produce identical retrieval and similarity results'."""
        case_base = small_generator.case_base()
        hardware = HardwareRetrievalUnit(case_base)
        software = SoftwareRetrievalUnit(case_base)
        for salt in range(10):
            request = small_generator.request(salt=salt, attribute_count=6)
            hw = hardware.run(request)
            sw = software.run(request)
            assert hw.best_id == sw.best_id
            assert hw.best_similarity_raw == sw.best_similarity_raw

    def test_agrees_with_floating_point_reference(self, paper_cb, paper_req):
        sw = SoftwareRetrievalUnit(paper_cb).run(paper_req)
        ref = RetrievalEngine(paper_cb).retrieve_best(paper_req)
        assert sw.best_id == ref.best_id

    def test_unknown_type_raises(self, paper_cb):
        with pytest.raises(UnknownFunctionTypeError):
            SoftwareRetrievalUnit(paper_cb).run(FunctionRequest(42, [(1, 16)]))

    def test_missing_bounds_entry_raises(self, paper_cb):
        with pytest.raises(SoftwareModelError):
            SoftwareRetrievalUnit(paper_cb).run(FunctionRequest(1, [(9, 1)]))


class TestCostAccounting:
    def test_cycles_reflect_instruction_mix(self, paper_cb, paper_req):
        result = SoftwareRetrievalUnit(paper_cb).run(paper_req)
        assert result.cycles == result.counters.total_cycles(result.cost_model)
        assert result.statistics.instructions == result.counters.total_instructions()
        assert result.statistics.memory_reads > 0

    def test_helper_calls_are_counted(self, paper_cb, paper_req):
        structured = SoftwareRetrievalUnit(paper_cb).run(paper_req)
        inlined = SoftwareRetrievalUnit(paper_cb, inline_helpers=True).run(paper_req)
        assert structured.statistics.helper_calls > 0
        assert inlined.statistics.helper_calls == 0
        assert inlined.cycles < structured.cycles

    def test_soft_multiply_model_is_slower(self, paper_cb, paper_req):
        hw_mul = SoftwareRetrievalUnit(paper_cb).run(paper_req)
        soft_mul = SoftwareRetrievalUnit(
            paper_cb, cost_model=microblaze_soft_multiply_model()
        ).run(paper_req)
        assert soft_mul.cycles > hw_mul.cycles
        assert soft_mul.best_id == hw_mul.best_id

    def test_time_uses_model_clock(self, paper_cb, paper_req):
        result = SoftwareRetrievalUnit(
            paper_cb, cost_model=microblaze_cost_model(clock_mhz=33.0)
        ).run(paper_req)
        assert result.time_us == pytest.approx(result.cycles / 33.0)


class TestSpeedupClaim:
    def test_hardware_is_many_times_faster_at_equal_clock(self, paper_cb, paper_req):
        """Section 4.2: hardware ~8.5x faster than the MicroBlaze software at 66 MHz."""
        hw = HardwareRetrievalUnit(paper_cb).run(paper_req)
        sw = SoftwareRetrievalUnit(paper_cb).run(paper_req)
        speedup = sw.cycles / hw.cycles
        assert 6.0 <= speedup <= 12.0

    def test_speedup_holds_for_table_sized_case_bases(self, small_generator):
        case_base = small_generator.case_base()
        hardware = HardwareRetrievalUnit(case_base)
        software = SoftwareRetrievalUnit(case_base)
        speedups = []
        for salt in range(6):
            request = small_generator.request(salt=salt, attribute_count=6)
            speedups.append(software.run(request).cycles / hardware.run(request).cycles)
        assert all(6.0 <= s <= 12.0 for s in speedups)

    def test_inlined_software_narrows_but_keeps_the_gap(self, paper_cb, paper_req):
        hw = HardwareRetrievalUnit(paper_cb).run(paper_req)
        sw = SoftwareRetrievalUnit(paper_cb, inline_helpers=True).run(paper_req)
        speedup = sw.cycles / hw.cycles
        assert 2.0 <= speedup < 8.5
