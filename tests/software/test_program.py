"""Tests for the static code/data footprint model (paper section 4.2, experiment E6)."""

from repro.software import (
    DATA_OBJECTS,
    INSTRUCTION_BYTES,
    PAPER_CODE_BYTES,
    PAPER_DATA_BYTES,
    ROUTINES,
    code_size_bytes,
    data_size_bytes,
    footprint_report,
)


class TestFootprintModel:
    def test_code_size_matches_paper(self):
        """Paper: the MicroBlaze build takes 1984 bytes of opcode."""
        assert code_size_bytes() == PAPER_CODE_BYTES

    def test_data_size_matches_paper(self):
        """Paper: 1208 bytes for variables."""
        assert data_size_bytes() == PAPER_DATA_BYTES

    def test_routine_bytes_are_instruction_multiples(self):
        for routine in ROUTINES:
            assert routine.bytes == routine.instructions * INSTRUCTION_BYTES

    def test_every_retrieval_phase_has_a_routine(self):
        names = {routine.name for routine in ROUTINES}
        assert {"retrieve_most_similar", "score_implementation",
                "fetch_supplemental", "search_attribute"} <= names

    def test_request_buffer_matches_table3_worst_case(self):
        request_buffer = next(obj for obj in DATA_OBJECTS if obj.name == "request_buffer")
        assert request_buffer.bytes == 64

    def test_report_summary(self):
        report = footprint_report()
        assert report["code_bytes"] == PAPER_CODE_BYTES
        assert report["data_bytes"] == PAPER_DATA_BYTES
        assert report["total_bytes"] == PAPER_CODE_BYTES + PAPER_DATA_BYTES
        assert report["instruction_count"] * INSTRUCTION_BYTES == report["code_bytes"]
