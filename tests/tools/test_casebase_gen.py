"""Tests for the random case-base / request generators."""

import pytest

from repro.core import ReproError, RetrievalEngine
from repro.tools import CaseBaseGenerator, GeneratorSpec, table3_spec


class TestGeneratorSpec:
    def test_defaults_match_table3_sizing(self):
        spec = table3_spec()
        assert (spec.type_count, spec.implementations_per_type,
                spec.attributes_per_implementation, spec.attribute_type_count) == (15, 10, 10, 10)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ReproError):
            GeneratorSpec(type_count=0)
        with pytest.raises(ReproError):
            GeneratorSpec(attributes_per_implementation=12, attribute_type_count=10)
        with pytest.raises(ReproError):
            GeneratorSpec(missing_probability=1.0)
        with pytest.raises(ReproError):
            GeneratorSpec(value_range=(100, 50))
        with pytest.raises(ReproError):
            GeneratorSpec(value_range=(0, 1 << 17))


class TestCaseBaseGenerator:
    def test_generated_case_base_has_requested_dimensions(self, small_generator):
        case_base = small_generator.case_base()
        spec = small_generator.spec
        assert len(case_base) == spec.type_count
        assert case_base.count_implementations() == spec.type_count * spec.implementations_per_type
        for _, implementation in case_base.all_implementations():
            assert len(implementation.attributes) == spec.attributes_per_implementation

    def test_generation_is_deterministic_per_seed(self):
        spec = GeneratorSpec(type_count=3, implementations_per_type=4,
                             attributes_per_implementation=5, attribute_type_count=6)
        a = CaseBaseGenerator(spec, seed=9).case_base()
        b = CaseBaseGenerator(spec, seed=9).case_base()
        c = CaseBaseGenerator(spec, seed=10).case_base()
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != c.to_dict()

    def test_values_respect_range_and_bounds(self, small_generator):
        case_base = small_generator.case_base()
        low, high = small_generator.spec.value_range
        for _, implementation in case_base.all_implementations():
            for value in implementation.attributes.values():
                assert low <= value <= high
        case_base.validate()

    def test_missing_probability_produces_gaps(self):
        spec = GeneratorSpec(type_count=3, implementations_per_type=5,
                             attributes_per_implementation=6, attribute_type_count=8,
                             missing_probability=0.4)
        case_base = CaseBaseGenerator(spec, seed=1).case_base()
        counts = [len(impl.attributes) for _, impl in case_base.all_implementations()]
        assert min(counts) < spec.attributes_per_implementation

    def test_targets_are_mixed(self, small_case_base):
        targets = {impl.target for _, impl in small_case_base.all_implementations()}
        assert len(targets) == 3

    def test_generated_requests_are_retrievable(self, small_generator):
        case_base = small_generator.case_base()
        engine = RetrievalEngine(case_base)
        for request in small_generator.requests(5, attribute_count=4):
            result = engine.retrieve_best(request)
            assert result.best_id is not None

    def test_request_respects_requested_dimensions(self, small_generator):
        request = small_generator.request(type_id=2, attribute_count=3)
        assert request.type_id == 2
        assert len(request) == 3
        assert request.attribute_ids() == sorted(request.attribute_ids())

    def test_requests_with_distinct_salts_differ(self, small_generator):
        a, b = small_generator.requests(2, attribute_count=4)
        assert a.signature() != b.signature()
