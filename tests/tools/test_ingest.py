"""Bulk ingestion: dump round-trips, row/column error reporting, edge specs.

The ingest path (ISSUE 10 tentpole) promises that ``synthesize_dump`` ->
``ingest_dump`` reproduces, value for value, the case base the generator
would build in memory -- across formats and batch boundaries -- and that
every malformed cell is rejected with its row *and* column named.
"""

import dataclasses

import pytest

from repro.core.case_base import ExecutionTarget
from repro.core.exceptions import ReproError
from repro.tools import CaseBaseGenerator, GeneratorSpec
from repro.tools.ingest import detect_format, ingest_dump, synthesize_dump

SPEC = GeneratorSpec(
    type_count=3,
    implementations_per_type=7,
    attributes_per_implementation=4,
    attribute_type_count=6,
    missing_probability=0.2,
)


def _snapshot(case_base):
    """Everything ingest must reproduce: structure, metadata, every cell."""
    return {
        function_type.type_id: (
            function_type.name,
            {
                implementation.implementation_id: (
                    implementation.name,
                    implementation.target,
                    dict(implementation.attributes),
                )
                for implementation in function_type.sorted_implementations()
            },
        )
        for function_type in case_base.sorted_types()
    }


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", ["csv", "jsonl"])
    def test_synthesized_dump_reproduces_the_generator(self, tmp_path, suffix):
        dump = tmp_path / f"dump.{suffix}"
        rows = synthesize_dump(dump, SPEC, seed=11)
        assert rows == SPEC.type_count * SPEC.implementations_per_type
        ingested, report = ingest_dump(dump)
        expected = CaseBaseGenerator(SPEC, seed=11).case_base()
        assert _snapshot(ingested) == _snapshot(expected)
        assert report.rows == rows
        assert report.implementations == rows
        assert report.types == SPEC.type_count
        assert report.absent_cells > 0  # missing_probability exercised

    def test_batch_boundaries_do_not_change_the_result(self, tmp_path):
        dump = tmp_path / "dump.csv"
        synthesize_dump(dump, SPEC, seed=11)
        one_batch, _ = ingest_dump(dump, batch_rows=10_000)
        tiny_batches, report = ingest_dump(dump, batch_rows=3)
        assert _snapshot(tiny_batches) == _snapshot(one_batch)
        assert report.batches == 7  # ceil(21 / 3)

    def test_streaming_generator_matches_case_base(self):
        generator = CaseBaseGenerator(SPEC, seed=5)
        streamed = {}
        for type_id, type_name, implementation in generator.iter_implementations():
            streamed.setdefault(type_id, (type_name, {}))[1][
                implementation.implementation_id
            ] = (
                implementation.name,
                implementation.target,
                dict(implementation.attributes),
            )
        assert streamed == _snapshot(generator.case_base())


class TestErrorReporting:
    def _write_csv(self, tmp_path, rows):
        dump = tmp_path / "dump.csv"
        header = "type_id,implementation_id,target,attr_1\n"
        dump.write_text(header + "".join(rows))
        return dump

    def test_empty_dump_is_rejected(self, tmp_path):
        dump = self._write_csv(tmp_path, [])
        with pytest.raises(ReproError, match="no implementation rows"):
            ingest_dump(dump)

    def test_missing_file_is_a_repro_error(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            ingest_dump(tmp_path / "nope.csv")

    def test_bad_id_names_row_and_column(self, tmp_path):
        dump = self._write_csv(
            tmp_path, ["1,1,gpp,5\n", "1,seven,gpp,5\n"]
        )
        with pytest.raises(ReproError, match=r"row 2, column 'implementation_id'"):
            ingest_dump(dump)

    def test_zero_id_is_out_of_the_16_bit_id_range(self, tmp_path):
        dump = self._write_csv(tmp_path, ["0,1,gpp,5\n"])
        with pytest.raises(ReproError, match=r"column 'type_id'.*\[1, 65535\]"):
            ingest_dump(dump)

    def test_bad_value_names_row_and_column(self, tmp_path):
        dump = self._write_csv(
            tmp_path, ["1,1,gpp,5\n", "1,2,gpp,5\n", "1,3,gpp,70000\n"]
        )
        with pytest.raises(ReproError, match=r"row 3, column 'attr_1'.*\[0, 65535\]"):
            ingest_dump(dump)

    def test_fractional_value_names_row_and_column(self, tmp_path):
        dump = self._write_csv(tmp_path, ["1,1,gpp,2.5\n"])
        with pytest.raises(ReproError, match=r"row 1, column 'attr_1'"):
            ingest_dump(dump)

    def test_duplicate_implementation_is_rejected(self, tmp_path):
        dump = self._write_csv(tmp_path, ["1,1,gpp,5\n", "1,1,gpp,6\n"])
        with pytest.raises(ReproError, match=r"row 2: duplicate implementation 1"):
            ingest_dump(dump)

    def test_unknown_target_names_row(self, tmp_path):
        dump = self._write_csv(tmp_path, ["1,1,warp-drive,5\n"])
        with pytest.raises(ReproError, match=r"row 1, column 'target'"):
            ingest_dump(dump)

    def test_batch_rows_must_be_positive(self, tmp_path):
        dump = self._write_csv(tmp_path, ["1,1,gpp,5\n"])
        with pytest.raises(ReproError, match="batch_rows"):
            ingest_dump(dump, batch_rows=0)

    def test_rows_without_targets_default_sensibly(self, tmp_path):
        dump = tmp_path / "dump.csv"
        dump.write_text("type_id,implementation_id,attr_1\n1,1,5\n")
        case_base, _ = ingest_dump(dump)
        implementation = case_base.get_implementation(1, 1)
        assert implementation.target is ExecutionTarget.GPP
        assert implementation.attributes == {1: 5}


class TestFormatDetection:
    def test_suffix_resolution(self, tmp_path):
        assert detect_format(tmp_path / "a.csv") == "csv"
        assert detect_format(tmp_path / "a.jsonl") == "jsonl"
        assert detect_format(tmp_path / "a.ndjson") == "jsonl"
        assert detect_format(tmp_path / "a.parquet") == "parquet"
        assert detect_format(tmp_path / "a.pq") == "parquet"

    def test_explicit_format_wins_over_suffix(self, tmp_path):
        assert detect_format(tmp_path / "a.csv", fmt="jsonl") == "jsonl"

    def test_unknown_suffix_suggests_the_flag(self, tmp_path):
        with pytest.raises(ReproError, match="--format"):
            detect_format(tmp_path / "dump.xlsx")

    def test_unknown_explicit_format_is_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="unknown dump format"):
            detect_format(tmp_path / "a.csv", fmt="excel")

    def test_parquet_without_pyarrow_points_at_the_extra(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            with pytest.raises(ReproError, match="'ingest' extra"):
                synthesize_dump(tmp_path / "dump.parquet", SPEC, seed=1)
        else:
            pytest.skip("pyarrow installed; the gating branch is exercised elsewhere")


class TestGeneratorSpecEdges:
    def test_dimensions_must_be_positive(self):
        with pytest.raises(ReproError, match="positive"):
            GeneratorSpec(type_count=0)

    def test_attribute_budget_cannot_exceed_attribute_types(self):
        with pytest.raises(ReproError, match="cannot exceed"):
            GeneratorSpec(attributes_per_implementation=11, attribute_type_count=10)

    def test_missing_probability_boundaries(self):
        assert GeneratorSpec(missing_probability=0.0).missing_probability == 0.0
        with pytest.raises(ReproError, match="missing probability"):
            GeneratorSpec(missing_probability=1.0)
        with pytest.raises(ReproError, match="missing probability"):
            GeneratorSpec(missing_probability=-0.01)

    def test_value_range_must_be_increasing_16_bit(self):
        for bad in ((5, 5), (7, 3), (-1, 10), (0, 0x10000)):
            with pytest.raises(ReproError, match="value range"):
                GeneratorSpec(value_range=bad)
        spec = GeneratorSpec(value_range=(0, 0xFFFF))
        assert spec.value_range == (0, 0xFFFF)

    def test_specs_are_immutable_value_objects(self):
        spec = GeneratorSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.type_count = 5
        assert dataclasses.replace(spec, type_count=5).type_count == 5
