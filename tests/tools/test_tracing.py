"""Tests for the FSM trace formatting helpers."""

from repro.hardware import HardwareConfig, HardwareRetrievalUnit
from repro.tools import format_trace, state_summary


class TestTraceFormatting:
    def _trace(self, paper_cb, paper_req):
        unit = HardwareRetrievalUnit(paper_cb, config=HardwareConfig(trace=True))
        return unit.run(paper_req)

    def test_format_trace_lists_states_and_totals(self, paper_cb, paper_req):
        result = self._trace(paper_cb, paper_req)
        text = format_trace(result.trace)
        assert "fetch_request_type" in text
        assert "total" in text
        assert str(result.cycles) in text

    def test_format_trace_limit_truncates(self, paper_cb, paper_req):
        result = self._trace(paper_cb, paper_req)
        text = format_trace(result.trace, limit=3)
        assert "further visits omitted" in text

    def test_state_summary_matches_cycle_count(self, paper_cb, paper_req):
        result = self._trace(paper_cb, paper_req)
        summary = state_summary(result.trace)
        assert summary["total_cycles"] == result.cycles
        assert sum(summary["per_state_cycles"].values()) == result.cycles
        assert summary["visits"] == len(result.trace)
