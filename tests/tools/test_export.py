"""Tests for the JSON / memh / C-header export tooling."""

import pytest

from repro.core import ReproError, RetrievalEngine, paper_bounds, paper_case_base, paper_request
from repro.hardware import HardwareRetrievalUnit
from repro.memmap import CaseBaseImage
from repro.tools import (
    bounds_from_json,
    bounds_to_json,
    case_base_from_json,
    case_base_to_json,
    export_memory_images,
    load_case_base,
    request_from_json,
    request_to_json,
    save_case_base,
    words_from_memh,
    words_to_c_header,
    words_to_memh,
)
from repro.tools.export import words_to_c_header as c_header  # alias for identifier test


class TestJsonRoundTrips:
    def test_case_base_round_trip_preserves_retrieval_results(self, paper_cb, paper_req):
        rebuilt = case_base_from_json(case_base_to_json(paper_cb))
        original = RetrievalEngine(paper_cb).retrieve_n_best(paper_req, 3)
        recovered = RetrievalEngine(rebuilt).retrieve_n_best(paper_req, 3)
        assert original.ids() == recovered.ids()
        assert [round(e.similarity, 6) for e in original] == [
            round(e.similarity, 6) for e in recovered
        ]

    def test_case_base_file_round_trip(self, tmp_path, paper_cb):
        path = save_case_base(paper_cb, tmp_path / "cb.json")
        loaded = load_case_base(path)
        assert loaded.type_ids() == paper_cb.type_ids()
        assert loaded.count_implementations() == paper_cb.count_implementations()

    def test_invalid_case_base_json_rejected(self):
        with pytest.raises(ReproError):
            case_base_from_json("{not json")

    def test_bounds_round_trip(self):
        bounds = paper_bounds()
        rebuilt = bounds_from_json(bounds_to_json(bounds))
        assert rebuilt.ids() == bounds.ids()
        for attribute_id in bounds.ids():
            assert rebuilt.dmax(attribute_id) == bounds.dmax(attribute_id)

    def test_request_round_trip(self, paper_req):
        rebuilt = request_from_json(request_to_json(paper_req))
        assert rebuilt.type_id == paper_req.type_id
        assert rebuilt.values() == paper_req.values()
        assert rebuilt.requester == paper_req.requester
        for attribute_id, weight in paper_req.weights().items():
            assert rebuilt.weights()[attribute_id] == pytest.approx(weight)

    def test_invalid_request_json_rejected(self):
        with pytest.raises(ReproError):
            request_from_json("[1, 2")


class TestMemhAndCHeader:
    def test_memh_round_trip(self, paper_cb):
        image = CaseBaseImage(paper_cb)
        ram, _ = image.build_case_base_ram()
        text = words_to_memh(ram.dump(), comment="CB-MEM")
        assert text.startswith("// CB-MEM")
        assert words_from_memh(text) == ram.dump()

    def test_memh_rejects_bad_words(self):
        with pytest.raises(ReproError):
            words_from_memh("zzzz\n")
        with pytest.raises(ReproError):
            words_from_memh("10000\n")  # 0x10000 exceeds 16 bits

    def test_c_header_structure(self):
        header = words_to_c_header([1, 2, 0xFFFF], "req_mem", comment="request image")
        assert "#include <stdint.h>" in header
        assert "REQ_MEM_WORDS 3u" in header
        assert "0xffff" in header

    def test_c_header_rejects_bad_identifier(self):
        with pytest.raises(ReproError):
            c_header([1], "not a name")


class TestExportMemoryImages:
    def test_exports_drive_identical_hardware_behaviour(self, tmp_path, paper_cb, paper_req):
        """The exported words are exactly the ones the hardware model reads."""
        outputs = export_memory_images(paper_cb, paper_req, tmp_path, formats=["memh"])
        exported_cb = words_from_memh((outputs["case_base_memh"]).read_text())
        exported_req = words_from_memh((outputs["request_memh"]).read_text())
        unit = HardwareRetrievalUnit(paper_cb)
        assert exported_cb == unit.case_base_ram.dump()
        assert tuple(exported_req) == unit.image.encode_request(paper_req).words

    def test_exports_all_requested_formats(self, tmp_path, paper_cb, paper_req):
        outputs = export_memory_images(paper_cb, paper_req, tmp_path / "out", prefix="fir")
        assert set(outputs) == {"case_base_memh", "case_base_c", "request_memh", "request_c"}
        for path in outputs.values():
            assert path.exists()
            assert path.name.startswith("fir_")

    def test_request_is_optional(self, tmp_path, paper_cb):
        outputs = export_memory_images(paper_cb, None, tmp_path, formats=["c"])
        assert set(outputs) == {"case_base_c"}

    def test_unknown_format_rejected(self, tmp_path, paper_cb):
        with pytest.raises(ReproError):
            export_memory_images(paper_cb, None, tmp_path, formats=["bin"])
