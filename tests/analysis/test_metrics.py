"""Tests for the analysis metrics and reporting helpers."""

import pytest

from repro.analysis import (
    SpeedupResult,
    decision_agreement,
    format_comparison,
    format_table,
    geometric_mean,
    max_absolute_error,
    mean_absolute_error,
    ranking_distance,
    summarize,
)


class TestSpeedupResult:
    def test_cycle_and_time_speedups(self):
        speedup = SpeedupResult(baseline_cycles=1000, improved_cycles=100,
                                baseline_clock_mhz=66.0, improved_clock_mhz=66.0)
        assert speedup.cycle_speedup == pytest.approx(10.0)
        assert speedup.time_speedup == pytest.approx(10.0)

    def test_different_clocks_affect_time_speedup_only(self):
        speedup = SpeedupResult(baseline_cycles=1000, improved_cycles=1000,
                                baseline_clock_mhz=66.0, improved_clock_mhz=132.0)
        assert speedup.cycle_speedup == pytest.approx(1.0)
        assert speedup.time_speedup == pytest.approx(2.0)

    def test_zero_improved_cycles_is_infinite(self):
        assert SpeedupResult(10, 0).cycle_speedup == float("inf")


class TestAgreementMetrics:
    def test_decision_agreement(self):
        assert decision_agreement([1, 2, 3], [1, 2, 3]) == 1.0
        assert decision_agreement([1, 2, 3], [1, 9, 3]) == pytest.approx(2 / 3)
        assert decision_agreement([], []) == 1.0
        with pytest.raises(ValueError):
            decision_agreement([1], [1, 2])

    def test_absolute_errors(self):
        assert max_absolute_error([1.0, 0.5], [0.9, 0.5]) == pytest.approx(0.1)
        assert mean_absolute_error([1.0, 0.5], [0.9, 0.4]) == pytest.approx(0.1)
        assert max_absolute_error([], []) == 0.0

    def test_ranking_distance(self):
        assert ranking_distance([1, 2, 3], [1, 2, 3]) == 0.0
        assert ranking_distance([1, 2, 3], [3, 2, 1]) == 1.0
        assert ranking_distance([1, 2, 3], [1, 3, 2]) == pytest.approx(1 / 3)
        assert ranking_distance([1], [1]) == 0.0
        # Items absent from one ranking are ignored.
        assert ranking_distance([1, 2, 3, 4], [2, 1]) == 1.0


class TestSummaries:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary == {"min": 1.0, "mean": 2.0, "max": 3.0, "count": 3.0}
        assert summarize([])["count"] == 0

    def test_geometric_mean(self):
        assert geometric_mean([4.0, 9.0]) == pytest.approx(6.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestFormatting:
    def test_format_table_aligns_columns(self):
        text = format_table(
            ["name", "value"], [["slices", 441], ["clock", 75.0]], title="Table 2"
        )
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "slices" in text and "441" in text and "75.000" in text
        # Header separator present and as wide as the header line.
        assert set(lines[2]) <= {"-", " "}

    def test_format_comparison(self):
        line = format_comparison("speedup", 8.5, 9.2)
        assert "paper=8.500" in line and "measured=9.200" in line
