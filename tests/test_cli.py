"""Tests for the repro-qos command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.tools import load_case_base


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_constraint_syntax_errors_are_reported(self, capsys):
        with pytest.raises(SystemExit):
            main(["retrieve", "--constraint", "not-a-constraint"])


class TestPaperExampleCommand:
    def test_prints_table1_and_speedup(self, capsys):
        assert main(["paper-example"]) == 0
        output = capsys.readouterr().out
        assert "Table 1 reproduction" in output
        assert "0.964" in output and "0.853" in output and "0.43" in output
        assert "speedup at equal clock" in output


class TestGenerateAndRetrieve:
    def test_generate_then_retrieve_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "cb.json"
        assert main(["generate", str(path), "--types", "3", "--implementations", "4",
                     "--attributes", "5", "--seed", "3"]) == 0
        case_base = load_case_base(path)
        assert len(case_base) == 3
        capsys.readouterr()
        assert main(["retrieve", "--case-base", str(path), "--type-id", "2",
                     "--constraint", "1=200", "--constraint", "3=500:2"]) == 0
        output = capsys.readouterr().out
        assert "retrieval result" in output

    def test_retrieve_defaults_to_paper_example(self, capsys):
        assert main(["retrieve", "--type-id", "1",
                     "--constraint", "1=16", "--constraint", "3=1", "--constraint", "4=40"]) == 0
        output = capsys.readouterr().out
        assert "0.964" in output

    def test_retrieve_hardware_backend_reports_cycles(self, capsys):
        assert main(["retrieve", "--backend", "hardware", "--type-id", "1",
                     "--constraint", "1=16", "--constraint", "3=1", "--constraint", "4=40",
                     "--compact"]) == 0
        output = capsys.readouterr().out
        assert "cycles=" in output and "MHz" in output


class TestEstimateExportScenario:
    def test_estimate_prints_table2_rows(self, capsys):
        assert main(["estimate", "--components"]) == 0
        output = capsys.readouterr().out
        assert "CLB-Slices" in output and "MULT18X18s" in output
        assert "component inventory" in output

    def test_export_writes_files(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "images"), "--with-request",
                     "--formats", "memh"]) == 0
        output = capsys.readouterr().out
        assert "case_base_memh" in output and "request_memh" in output
        assert (tmp_path / "images" / "retrieval_case_base.memh").exists()

    def test_scenario_runs_and_reports(self, capsys):
        assert main(["scenario", "--duration-ms", "800", "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "requests=" in output
        assert "mp3-player" in output
