"""Tests for the repro-qos command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.tools import load_case_base


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_constraint_syntax_errors_are_reported(self, capsys):
        with pytest.raises(SystemExit):
            main(["retrieve", "--constraint", "not-a-constraint"])


class TestPaperExampleCommand:
    def test_prints_table1_and_speedup(self, capsys):
        assert main(["paper-example"]) == 0
        output = capsys.readouterr().out
        assert "Table 1 reproduction" in output
        assert "0.964" in output and "0.853" in output and "0.43" in output
        assert "speedup at equal clock" in output


class TestGenerateAndRetrieve:
    def test_generate_then_retrieve_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "cb.json"
        assert main(["generate", str(path), "--types", "3", "--implementations", "4",
                     "--attributes", "5", "--seed", "3"]) == 0
        case_base = load_case_base(path)
        assert len(case_base) == 3
        capsys.readouterr()
        assert main(["retrieve", "--case-base", str(path), "--type-id", "2",
                     "--constraint", "1=200", "--constraint", "3=500:2"]) == 0
        output = capsys.readouterr().out
        assert "retrieval result" in output

    def test_retrieve_defaults_to_paper_example(self, capsys):
        assert main(["retrieve", "--type-id", "1",
                     "--constraint", "1=16", "--constraint", "3=1", "--constraint", "4=40"]) == 0
        output = capsys.readouterr().out
        assert "0.964" in output

    def test_retrieve_hardware_backend_reports_cycles(self, capsys):
        assert main(["retrieve", "--backend", "hardware", "--type-id", "1",
                     "--constraint", "1=16", "--constraint", "3=1", "--constraint", "4=40",
                     "--compact"]) == 0
        output = capsys.readouterr().out
        assert "cycles=" in output and "MHz" in output


class TestRetrieveBatch:
    def test_requires_a_request_source(self, capsys):
        assert main(["retrieve-batch"]) == 2
        assert "retrieve-batch needs" in capsys.readouterr().err

    def test_random_batch_compare_reports_agreement(self, capsys):
        assert main(["retrieve-batch", "--random", "25", "--seed", "9",
                     "--backend", "compare", "--show", "5"]) == 0
        output = capsys.readouterr().out
        assert "batch retrieval (25 requests)" in output
        assert "agree on 25/25 rankings" in output
        assert "speedup" in output
        assert "naive" in output and "vectorized" in output

    def test_requests_file_against_generated_case_base(self, tmp_path, capsys):
        import json

        case_base_path = tmp_path / "cb.json"
        assert main(["generate", str(case_base_path), "--types", "3",
                     "--implementations", "5", "--attributes", "4", "--seed", "2"]) == 0
        requests_path = tmp_path / "requests.json"
        requests_path.write_text(json.dumps([
            {"type_id": 1, "constraints": {"1": 120, "2": 700}},
            {"type_id": 2, "constraints": [[1, 300], [3, 500, 2.0]]},
            {"type_id": 3, "constraints": {"4": 10}},
        ]))
        capsys.readouterr()
        assert main(["retrieve-batch", "--case-base", str(case_base_path),
                     "--requests", str(requests_path), "--backend", "vectorized",
                     "--n-best", "2"]) == 0
        output = capsys.readouterr().out
        assert "batch retrieval (3 requests)" in output
        assert "us/request" in output

    def test_paper_example_batch_defaults(self, capsys):
        assert main(["retrieve-batch", "--random", "4", "--backend", "naive"]) == 0
        output = capsys.readouterr().out
        assert "batch retrieval (4 requests)" in output

    def test_canonical_serializer_format_accepted(self, tmp_path, capsys):
        from repro.core import paper_request
        from repro.tools import request_to_json
        import json

        requests_path = tmp_path / "canonical.json"
        requests_path.write_text(f"[{request_to_json(paper_request())}]")
        assert main(["retrieve-batch", "--requests", str(requests_path)]) == 0
        assert "0.964" in capsys.readouterr().out

    def test_malformed_requests_file_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["retrieve-batch", "--requests", str(bad)]) == 2
        assert "invalid requests JSON" in capsys.readouterr().err
        missing_key = tmp_path / "missing.json"
        missing_key.write_text('[{"type_id": 1}]')
        assert main(["retrieve-batch", "--requests", str(missing_key)]) == 2
        assert "malformed request entry" in capsys.readouterr().err
        bad_constraints = tmp_path / "badc.json"
        bad_constraints.write_text('[{"type_id": 1, "constraints": 5}]')
        assert main(["retrieve-batch", "--requests", str(bad_constraints)]) == 2
        assert "malformed request entry" in capsys.readouterr().err

    def test_missing_requests_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["retrieve-batch", "--requests", str(tmp_path / "typo.json")]) == 2
        assert "cannot read requests file" in capsys.readouterr().err

    def test_unknown_type_in_requests_file_is_a_clean_error(self, tmp_path, capsys):
        requests_path = tmp_path / "unknown.json"
        requests_path.write_text('[{"type_id": 99, "constraints": {"1": 120}}]')
        assert main(["retrieve-batch", "--requests", str(requests_path)]) == 2
        assert "retrieve-batch:" in capsys.readouterr().err

    def test_empty_requests_file_is_a_clean_error(self, tmp_path, capsys):
        requests_path = tmp_path / "empty.json"
        requests_path.write_text("[]")
        assert main(["retrieve-batch", "--requests", str(requests_path)]) == 2
        assert "no usable requests" in capsys.readouterr().err

    def test_attribute_less_case_base_is_a_clean_error(self, tmp_path, capsys):
        import json

        case_base_path = tmp_path / "bare.json"
        case_base_path.write_text(json.dumps({
            "types": [{"type_id": 1, "implementations": [
                {"implementation_id": 1, "target": "gpp", "attributes": {}},
            ]}],
        }))
        assert main(["retrieve-batch", "--case-base", str(case_base_path),
                     "--random", "5"]) == 2
        assert "no usable requests" in capsys.readouterr().err


class TestEstimateExportScenario:
    def test_estimate_prints_table2_rows(self, capsys):
        assert main(["estimate", "--components"]) == 0
        output = capsys.readouterr().out
        assert "CLB-Slices" in output and "MULT18X18s" in output
        assert "component inventory" in output

    def test_export_writes_files(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "images"), "--with-request",
                     "--formats", "memh"]) == 0
        output = capsys.readouterr().out
        assert "case_base_memh" in output and "request_memh" in output
        assert (tmp_path / "images" / "retrieval_case_base.memh").exists()

    def test_scenario_runs_and_reports(self, capsys):
        assert main(["scenario", "--duration-ms", "800", "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "requests=" in output
        assert "mp3-player" in output

    def test_scenario_hardware_backend_with_cycle_engine(self, capsys):
        assert main(["scenario", "--duration-ms", "300", "--seed", "4",
                     "--backend", "hardware", "--cycle-engine", "vectorized"]) == 0
        assert "requests=" in capsys.readouterr().out


class TestCosimBatch:
    def test_requires_a_request_source(self, capsys):
        assert main(["cosim-batch"]) == 2
        assert "cosim-batch needs" in capsys.readouterr().err

    def test_compare_reports_exact_agreement_and_speedup(self, capsys):
        assert main(["cosim-batch", "--random", "12", "--seed", "2",
                     "--engine", "compare"]) == 0
        output = capsys.readouterr().out
        assert "cycle co-simulation (12 requests)" in output
        assert "hardware: engines agree exactly on 12/12 results" in output
        assert "software: engines agree exactly on 12/12 results" in output
        assert "vectorized speedup" in output
        assert "hw-vs-sw speedup" in output

    def test_hardware_only_with_compact_and_nbest(self, capsys):
        assert main(["cosim-batch", "--random", "8", "--model", "hardware",
                     "--engine", "compare", "--compact", "--n-best", "3"]) == 0
        output = capsys.readouterr().out
        assert "hardware: engines agree exactly on 8/8 results" in output
        assert "software" not in output

    def test_software_ablations_run_vectorized(self, capsys):
        assert main(["cosim-batch", "--random", "6", "--model", "software",
                     "--engine", "vectorized", "--inline-helpers", "--soft-multiply"]) == 0
        output = capsys.readouterr().out
        assert "software cycles" in output
        assert "modelled cycles" in output

    def test_generated_case_base_round_trip(self, tmp_path, capsys):
        path = tmp_path / "cb.json"
        assert main(["generate", str(path), "--types", "4", "--implementations", "5",
                     "--attributes", "6", "--seed", "9"]) == 0
        capsys.readouterr()
        assert main(["cosim-batch", "--case-base", str(path), "--random", "16",
                     "--engine", "compare"]) == 0
        output = capsys.readouterr().out
        assert "16/16 results" in output

    def test_unknown_type_in_requests_file_is_a_clean_error(self, tmp_path, capsys):
        import json

        path = tmp_path / "requests.json"
        path.write_text(json.dumps([{"type_id": 99, "constraints": {"1": 16}}]))
        assert main(["cosim-batch", "--requests", str(path)]) == 2
        assert "cosim-batch:" in capsys.readouterr().err


class TestVersionFlag:
    def test_version_flag_prints_the_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro-qos {repro.__version__}" in capsys.readouterr().out


class TestServeTrace:
    def test_default_workload_trace_replay(self, capsys):
        assert main(["serve-trace", "--duration-ms", "1000", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "trace replay" in output
        assert "served=" in output
        assert "modelled latency p50/p95/p99" in output
        assert "batches:" in output

    def test_compare_mode_reports_bit_identical_shards(self, capsys):
        assert main(["serve-trace", "--shards", "4", "--engine", "compare",
                     "--duration-ms", "1000", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "sharded (4) vs unsharded rankings bit-identical" in output

    def test_random_trace_with_deadline_and_json_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        assert main(["serve-trace", "--random", "32", "--seed", "3",
                     "--mean-interarrival-us", "20", "--max-batch", "16",
                     "--deadline-us", "250", "--json", str(report_path)]) == 0
        output = capsys.readouterr().out
        assert "trace replay (32 requests" in output
        payload = json.loads(report_path.read_text())
        assert payload["metrics"]["requests"] == 32
        assert payload["config"]["deadline_us"] == 250.0
        assert len(payload["requests"]) == 32

    def test_requests_file_replay(self, tmp_path, capsys):
        import json

        requests_path = tmp_path / "requests.json"
        requests_path.write_text(json.dumps([
            {"type_id": 1, "constraints": {"1": 16, "3": 1, "4": 40}},
            {"type_id": 1, "constraints": [[1, 12], [4, 30, 2.0]]},
        ]))
        assert main(["serve-trace", "--requests", str(requests_path),
                     "--max-batch", "2"]) == 0
        output = capsys.readouterr().out
        assert "trace replay (2 requests" in output
        assert "served=2/2" in output

    def test_case_base_without_request_source_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "cb.json"
        assert main(["generate", str(path), "--types", "2", "--implementations", "3",
                     "--attributes", "4", "--seed", "1"]) == 0
        capsys.readouterr()
        assert main(["serve-trace", "--case-base", str(path)]) == 2
        assert "serve-trace" in capsys.readouterr().err

    def test_unknown_workload_is_a_clean_error(self, capsys):
        assert main(["serve-trace", "--workload", "nonexistent"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_heavy_traffic_workload_saturates_batches(self, capsys):
        assert main(["serve-trace", "--workload", "heavy-traffic",
                     "--duration-ms", "200", "--max-batch", "8",
                     "--max-wait-us", "20000", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert "trace replay" in output

    def test_invalid_serving_config_is_a_clean_error(self, capsys):
        assert main(["serve-trace", "--random", "2", "--n-best", "0"]) == 2
        assert "serve-trace: n_best" in capsys.readouterr().err


def _tampered_single_device_engine():
    """A ServingEngine subclass that corrupts the unsharded reference replay.

    The compare modes re-serve the trace through a single-device (shard
    count 1) reference engine; tampering with that replay's rankings forces
    a bit-identity failure without touching the primary replay, so the
    tests can assert the non-zero exit code and the diff summary.
    """
    from repro.serving import ServingEngine

    class TamperedServingEngine(ServingEngine):
        def serve(self, trace):
            report = ServingEngine.serve(self, trace)
            if self.config.shard_count == 1:
                for record in report.served:
                    if record.result is not None and len(record.result.ranked) > 1:
                        record.result.ranked.reverse()
                        break
            return report

    return TamperedServingEngine


class TestServeTraceCompareExitCode:
    def test_compare_mismatch_exits_nonzero_with_diff_summary(
        self, monkeypatch, capsys
    ):
        import repro.serving

        monkeypatch.setattr(
            repro.serving, "ServingEngine", _tampered_single_device_engine()
        )
        # The sharded replay (--shards 4) is untouched; the tampered
        # unsharded reference must trip the compare gate.
        assert main(["serve-trace", "--shards", "4", "--engine", "compare",
                     "--random", "24", "--seed", "3", "--n-best", "5"]) == 1
        captured = capsys.readouterr()
        assert "bit-identity FAILED" in captured.err
        assert "request" in captured.err  # the per-request diff summary
        assert "sharded=" in captured.err and "unsharded=" in captured.err


class TestServeCluster:
    def test_default_fleet_replay_reports_workers(self, capsys):
        assert main(["serve-cluster", "--duration-ms", "500", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "cluster replay" in output
        assert "fleet utilisation" in output
        assert "fpga0" in output and "cpu0" in output
        assert "image syncs:" in output
        assert "modelled fleet makespan" in output

    def test_compare_mode_proves_bit_identity(self, capsys):
        assert main(["serve-cluster", "--devices", "4", "--engine", "compare",
                     "--random", "48", "--seed", "3",
                     "--mean-interarrival-us", "50"]) == 0
        output = capsys.readouterr().out
        assert "cluster (5 devices) vs single-device rankings bit-identical" in output
        assert "48/48" in output

    def test_compare_mismatch_exits_nonzero_with_diff_summary(
        self, monkeypatch, capsys
    ):
        import repro.serving

        monkeypatch.setattr(
            repro.serving, "ServingEngine", _tampered_single_device_engine()
        )
        assert main(["serve-cluster", "--devices", "2", "--engine", "compare",
                     "--random", "24", "--seed", "3", "--n-best", "5"]) == 1
        captured = capsys.readouterr()
        assert "bit-identity FAILED" in captured.err
        assert "cluster=" in captured.err and "single-device=" in captured.err

    def test_learn_compare_replays_from_identical_snapshots(self, capsys):
        assert main(["serve-cluster", "--devices", "2", "--engine", "compare",
                     "--random", "24", "--seed", "5", "--learn",
                     "--mean-interarrival-us", "400"]) == 0
        output = capsys.readouterr().out
        assert "learning:" in output
        assert "bit-identical" in output

    def test_fleet_failover_workload_applies_outages(self, capsys):
        assert main(["serve-cluster", "--workload", "fleet-failover",
                     "--duration-ms", "400", "--devices", "1",
                     "--deadline-us", "5000", "--seed", "9"]) == 0
        output = capsys.readouterr().out
        # During the lone device's outage the router degrades to software.
        assert "sw=" in output
        served_software = int(output.split("sw=")[1].split(")")[0])
        assert served_software > 0

    def test_reconfig_us_flag_and_json_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "cluster.json"
        assert main(["serve-cluster", "--random", "16", "--seed", "2",
                     "--learn", "--reconfig-us", "75",
                     "--mean-interarrival-us", "500",
                     "--json", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        cluster = payload["metrics"]["cluster"]
        assert cluster["devices"] == 3
        assert set(cluster["workers"]) == {"fpga0", "fpga1", "cpu0"}
        served_workers = [
            entry.get("worker") for entry in payload["requests"]
            if entry["status"].startswith("served")
        ]
        assert served_workers and all(served_workers)

    def test_invalid_fleet_is_a_clean_error(self, capsys):
        assert main(["serve-cluster", "--random", "4", "--devices", "0",
                     "--software-workers", "0"]) == 2
        assert "serve-cluster" in capsys.readouterr().err


class TestServeSubcommand:
    def test_parser_wires_the_daemon_handler(self):
        from repro.cli import cmd_serve
        from repro.serving import ServingSpec

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--cluster", "--devices", "3",
             "--max-batch", "16", "--capture", "cap.json"]
        )
        assert args.handler is cmd_serve
        spec = ServingSpec.from_args(args)
        assert spec.cluster and spec.devices == 3 and spec.max_batch == 16
        assert args.capture == "cap.json"

    def test_invalid_spec_is_a_clean_error(self, capsys):
        assert main(["serve", "--n-best", "0"]) == 2
        assert "serve: n_best" in capsys.readouterr().err


class TestCaptureReplay:
    @staticmethod
    def _record_capture(tmp_path, learn_events=()):
        import json

        from repro.serving import DaemonThread, ServingSpec

        path = tmp_path / "capture.json"
        spec = ServingSpec(random=1, max_batch=4, max_wait_us=10_000.0)
        with DaemonThread(spec, capture_path=str(path)) as handle:
            import http.client

            connection = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            wire = {"type_id": 1, "constraints": {"1": 16, "3": 1, "4": 40}}
            for payload in [wire, {"requests": [wire, wire]}, wire]:
                connection.request("POST", "/retrieve", body=json.dumps(payload))
                assert connection.getresponse().read()
            for events in learn_events:
                connection.request("POST", "/learn",
                                   body=json.dumps({"events": events}))
                assert connection.getresponse().read()
            connection.close()
        return path

    def test_capture_replay_is_bit_identical(self, tmp_path, capsys):
        path = self._record_capture(tmp_path)
        assert main(["serve-trace", "--capture", str(path)]) == 0
        assert "capture replay bit-identical for 4/4 responses" in (
            capsys.readouterr().out
        )

    def test_capture_replay_with_learn_events(self, tmp_path, capsys):
        event = {"op": "add_implementation", "type_id": 1,
                 "implementation": {"implementation_id": 9100, "target": "gpp",
                                    "attributes": {"1": 16, "3": 1, "4": 40}}}
        path = self._record_capture(tmp_path, learn_events=[[event]])
        assert main(["serve-trace", "--capture", str(path)]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_tampered_capture_fails_the_gate(self, tmp_path, capsys):
        import json

        path = self._record_capture(tmp_path)
        document = json.loads(path.read_text())
        document["responses"][0]["ranking"][0]["similarity"] += 1e-9
        path.write_text(json.dumps(document))
        assert main(["serve-trace", "--capture", str(path)]) == 1
        captured = capsys.readouterr()
        assert "bit-identity FAILED" in captured.err
        assert "recorded=" in captured.err and "replayed=" in captured.err

    def test_missing_capture_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["serve-trace", "--capture", str(tmp_path / "nope.json")]) == 2
        assert "cannot read capture file" in capsys.readouterr().err


class TestJsonReportEnvelope:
    def test_report_documents_are_versioned(self, tmp_path):
        import json

        report_path = tmp_path / "report.json"
        assert main(["serve-trace", "--random", "8", "--seed", "2",
                     "--json", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["kind"] == "serving-report"
        assert payload["schema_version"] >= 1
        assert payload["metrics"]["requests"] == 8
